//! The roadlint CLI.
//!
//! ```text
//! roadlint [ROOT] [--graph]
//! ```
//!
//! Walks the workspace at ROOT (default: the current directory), runs
//! every rule and prints the findings. `--graph` additionally prints the
//! acquired-while-held lock graph. Exit status: 0 clean, 1 findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut graph = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--graph" => graph = true,
            "--help" | "-h" => {
                println!("usage: roadlint [ROOT] [--graph]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("roadlint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    let analysis = match road_analysis::analyze_workspace(&root) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("roadlint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if graph {
        println!("lock classes: {:?}", analysis.graph.classes);
        for ((from, to), site) in &analysis.graph.edges {
            println!("  {from} -> {to}   (e.g. {}:{} in {})", site.file, site.line, site.function);
        }
    }

    for f in &analysis.findings {
        println!("{f}");
    }
    println!(
        "roadlint: {} file(s), {} finding(s)",
        analysis.files_scanned,
        analysis.findings.len()
    );
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
