//! The roadlint CLI.
//!
//! ```text
//! roadlint [ROOT] [--graph] [--taint] [--order] [--dag] [--order-dag] [--json]
//! ```
//!
//! Walks the workspace at ROOT (default: the current directory), runs
//! every rule and prints the findings.
//!
//! * `--graph` additionally prints the acquired-while-held lock graph
//!   with example sites;
//! * `--taint` additionally prints the taint verdict table
//!   (source → sanitizer → sink);
//! * `--order` additionally prints the determinism verdict table: every
//!   unordered-iteration flow that reached byte output or an
//!   order-sensitive commit, with the sanitizer that fixed its order;
//! * `--dag` prints ONLY canonical `from -> to` lines to stdout (for
//!   diffing against a committed `lockgraph.expected`); findings go to
//!   stderr;
//! * `--order-dag` prints ONLY canonical `source => sanitizer => sink`
//!   lines to stdout (for diffing against a committed
//!   `determinism.expected`); findings go to stderr;
//! * `--json` prints ONLY the machine-readable report to stdout (for the
//!   CI artifact); the human summary goes to stderr.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut graph = false;
    let mut taint = false;
    let mut order = false;
    let mut dag = false;
    let mut order_dag = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--graph" => graph = true,
            "--taint" => taint = true,
            "--order" => order = true,
            "--dag" => dag = true,
            "--order-dag" => order_dag = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: roadlint [ROOT] [--graph] [--taint] [--order] [--dag] [--order-dag] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("roadlint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    let analysis = match road_analysis::analyze_workspace(&root) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("roadlint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    let status = if analysis.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };

    if json {
        // Stdout is the artifact; everything human-facing goes to stderr.
        println!("{}", road_analysis::json::render(&analysis));
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        eprintln!(
            "roadlint: {} file(s), {} finding(s)",
            analysis.files_scanned,
            analysis.findings.len()
        );
        return status;
    }

    if dag {
        // Stdout is exactly the canonical edge list, for `diff`.
        for (from, to) in analysis.graph.edges.keys() {
            println!("{from} -> {to}");
        }
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        return status;
    }

    if order_dag {
        // Stdout is exactly the canonical chain list, for `diff` against
        // the committed determinism.expected.
        for v in &analysis.order {
            println!("{} => {} => {}", v.source, v.sanitizer, v.sink);
        }
        for f in &analysis.findings {
            eprintln!("{f}");
        }
        return status;
    }

    if graph {
        println!("lock classes: {:?}", analysis.graph.classes);
        for ((from, to), site) in &analysis.graph.edges {
            println!("  {from} -> {to}   (e.g. {}:{} in {})", site.file, site.line, site.function);
        }
    }

    if taint {
        println!("taint verdicts (source -> sanitizer -> sink):");
        for v in &analysis.taint {
            println!("  {}\n    -> sanitized by {}\n    -> {}", v.source, v.sanitizer, v.sink);
        }
    }

    if order {
        println!("order verdicts (source -> sanitizer -> sink):");
        for v in &analysis.order {
            println!("  {}\n    -> ordered by {}\n    -> {}", v.source, v.sanitizer, v.sink);
        }
    }

    for f in &analysis.findings {
        println!("{f}");
    }
    println!(
        "roadlint: {} file(s), {} finding(s)",
        analysis.files_scanned,
        analysis.findings.len()
    );
    status
}
