//! Workspace call graph: the symbol table the interprocedural passes
//! (taint, lock-order v2, swallowed-error) resolve call sites against.
//!
//! Construction is purely token-shaped, like everything else in this
//! crate:
//!
//! * **impl-block spans** give every method a "type-ish" owner: the last
//!   path segment of the `impl`'d type (`impl PagePool for TalliedPool`
//!   owns its fns under `TalliedPool`), so methods are keyed by
//!   `(type, name)` instead of bare name;
//! * a **struct field-type table** reduces each named field's declared
//!   type to its innermost non-wrapper type name
//!   (`pool: Arc<StripedBufferPool>` → `StripedBufferPool`), which lets
//!   `self.pool.with_page(…)` resolve across crates;
//! * **call sites** carry a receiver hint (`self.m(…)`, `self.f.m(…)`,
//!   `Type::m(…)`, `expr.m(…)`, `free(…)`) that picks the resolution
//!   strategy.
//!
//! Two resolution strengths exist on purpose. `resolve` falls back from
//! typed lookups to same-file-by-name and finally to the workspace-wide
//! union — the right over-approximation for lock footprints, where a
//! missed edge is worse than a spurious one. `resolve_confident` stops
//! at the typed and same-file levels: the taint and swallowed-error
//! passes must not smear one type's summary over every same-named method
//! (`get`, `insert`, …) in the workspace.

use crate::lexer::Token;
use crate::markers::Marker;
use crate::syntax::{self, FnSpan};
use crate::FileData;
use std::collections::BTreeMap;

/// Index of a function in [`CallGraph::fns`].
pub type FnId = usize;

/// Wrapper types skipped when reducing a field's declared type to the
/// name methods are resolved against.
const WRAPPERS: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "Option",
    "Result",
    "Vec",
    "VecDeque",
    "RwLock",
    "Mutex",
    "OnceLock",
    "RefCell",
    "Cell",
    "ManuallyDrop",
];

/// Identifiers that look like `name (` in the token stream but are not
/// calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "in", "as", "fn", "let", "else", "move",
    "unsafe", "break", "continue", "where", "impl", "pub", "use", "mod", "dyn", "ref", "mut",
];

/// One function of the workspace, with everything resolution and the
/// dataflow passes need.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub file_idx: usize,
    pub name: String,
    /// The `impl`'d type when the fn sits inside an impl block.
    pub self_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range `(open_brace, close_brace)` of the body.
    pub body: Option<(usize, usize)>,
    pub guard_returning: bool,
    /// `Result` appears in the return-type region of the signature.
    pub returns_result: bool,
    /// Parameter names with `self` excluded, so indices align with
    /// call-site argument positions for method calls.
    pub params: Vec<String>,
    pub in_test_mod: bool,
    /// Carries a `taint-source` marker: its return value is untrusted.
    pub taint_source: bool,
    /// Carries an `order-sink` marker: the determinism pass treats every
    /// argument of every call to it as order-sensitive.
    pub order_sink: bool,
    /// Per-parameter type-name chains (uppercase idents of the declared
    /// type, outermost first; empty for untyped/`self`-skipped slots),
    /// aligned with `params`.
    pub param_chains: Vec<Vec<String>>,
    /// Type-name chain of the return-type region, outermost first.
    pub ret_chain: Vec<String>,
}

/// The receiver hint of a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.name(…)`
    SelfMethod,
    /// `self.field.name(…)`
    SelfField(String),
    /// `Type::name(…)` (`Self` resolves to the enclosing impl type)
    Path(String),
    /// `expr.name(…)` with an unknown receiver
    Method,
    /// `name(…)`
    Free,
}

/// One syntactic call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name.
    pub name_idx: usize,
    /// Token index of the opening `(` of the arguments.
    pub args_open: usize,
    pub name: String,
    pub recv: Receiver,
    pub line: u32,
}

/// Recognizes a call site whose name sits at token `i`.
pub fn call_at(tokens: &[Token], i: usize) -> Option<CallSite> {
    let name = tokens[i].ident()?;
    if NOT_CALLS.contains(&name) || !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    if i > 0 && tokens[i - 1].ident() == Some("fn") {
        return None;
    }
    let recv = if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
        match i.checked_sub(3).and_then(|j| tokens[j].ident()) {
            Some(t) => Receiver::Path(t.to_owned()),
            // `<T as Trait>::f(…)` and friends: unknown receiver.
            None => Receiver::Method,
        }
    } else if i >= 2 && tokens[i - 1].is_punct('.') {
        if tokens[i - 2].ident() == Some("self") {
            Receiver::SelfMethod
        } else if i >= 4
            && tokens[i - 2].ident().is_some()
            && tokens[i - 3].is_punct('.')
            && tokens[i - 4].ident() == Some("self")
        {
            Receiver::SelfField(tokens[i - 2].ident().unwrap_or_default().to_owned())
        } else {
            Receiver::Method
        }
    } else {
        Receiver::Free
    };
    Some(CallSite {
        name_idx: i,
        args_open: i + 1,
        name: name.to_owned(),
        recv,
        line: tokens[i].line,
    })
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnInfo>,
    by_type_name: BTreeMap<(String, String), Vec<FnId>>,
    free_by_name: BTreeMap<String, Vec<FnId>>,
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `(owner struct, field) -> reduced type name`.
    field_types: BTreeMap<(String, String), String>,
    /// `(owner struct, field) -> uppercase idents of the declared type,
    /// outermost first` (unreduced — the determinism pass needs to see
    /// the wrappers, since `Vec<FastMap<…>>` iterates deterministically
    /// while `Arc<FastMap<…>>` does not).
    field_chains: BTreeMap<(String, String), Vec<String>>,
    file_fns: Vec<Vec<FnId>>,
}

impl CallGraph {
    pub fn build(files: &[FileData]) -> CallGraph {
        let mut cg = CallGraph { file_fns: vec![Vec::new(); files.len()], ..Default::default() };
        for (fi, fd) in files.iter().enumerate() {
            let toks = &fd.lexed.tokens;
            let impls = impl_spans(toks);
            for (owner, field, ftype, chain) in struct_fields(toks) {
                cg.field_chains.entry((owner.clone(), field.clone())).or_insert(chain);
                if let Some(ftype) = ftype {
                    cg.field_types.entry((owner, field)).or_insert(ftype);
                }
            }
            let taint_lines: Vec<u32> = fd
                .markers
                .markers
                .iter()
                .filter(|m| m.marker == Marker::TaintSource)
                .map(|m| m.line)
                .collect();
            let order_sink_lines: Vec<u32> = fd
                .markers
                .markers
                .iter()
                .filter(|m| m.marker == Marker::OrderSink)
                .map(|m| m.line)
                .collect();
            for f in &fd.fns {
                let id = cg.fns.len();
                let self_type = impls
                    .iter()
                    .filter(|(_, (a, b))| f.fn_idx > *a && f.fn_idx < *b)
                    .min_by_key(|(_, (a, b))| b - a)
                    .map(|(t, _)| t.clone());
                let sig = signature(toks, f);
                let taint_source = taint_lines.iter().any(|&l| f.line > l && f.line - l <= 5);
                let order_sink = order_sink_lines.iter().any(|&l| f.line > l && f.line - l <= 5);
                let info = FnInfo {
                    file_idx: fi,
                    name: f.name.clone(),
                    self_type,
                    line: f.line,
                    body: f.body,
                    guard_returning: f.guard_returning,
                    returns_result: sig.returns_result,
                    params: sig.params,
                    in_test_mod: syntax::in_ranges(&fd.test_ranges, f.fn_idx),
                    taint_source,
                    order_sink,
                    param_chains: sig.param_chains,
                    ret_chain: sig.ret_chain,
                };
                match &info.self_type {
                    Some(t) => {
                        cg.by_type_name.entry((t.clone(), info.name.clone())).or_default().push(id)
                    }
                    None => cg.free_by_name.entry(info.name.clone()).or_default().push(id),
                }
                cg.by_name.entry(info.name.clone()).or_default().push(id);
                cg.file_fns[fi].push(id);
                cg.fns.push(info);
            }
        }
        cg
    }

    pub fn fns_in_file(&self, fi: usize) -> &[FnId] {
        &self.file_fns[fi]
    }

    /// The innermost function whose body contains token `tok_idx` of file
    /// `fi`.
    pub fn enclosing_fn(&self, fi: usize, tok_idx: usize) -> Option<FnId> {
        self.file_fns[fi]
            .iter()
            .copied()
            .filter(|&id| self.fns[id].body.is_some_and(|(a, b)| tok_idx > a && tok_idx < b))
            .min_by_key(|&id| {
                let (a, b) = self.fns[id].body.unwrap_or((0, usize::MAX));
                b - a
            })
    }

    /// `Type::name` for methods, `name` for free fns.
    pub fn qualified(&self, id: FnId) -> String {
        let f = &self.fns[id];
        match &f.self_type {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Typed resolution with over-approximating fallbacks (same file,
    /// then workspace union) — for the lock pass, where a missed callee
    /// means a missed edge.
    pub fn resolve(&self, caller: FnId, site: &CallSite) -> Vec<FnId> {
        let (hit, confident) = self.resolve_inner(caller, site);
        if !hit.is_empty() || confident {
            return hit;
        }
        self.by_name.get(&site.name).cloned().unwrap_or_default()
    }

    /// Typed + same-file resolution only: an empty result means "treat
    /// the callee as unknown", never "use every same-named fn".
    pub fn resolve_confident(&self, caller: FnId, site: &CallSite) -> Vec<FnId> {
        self.resolve_inner(caller, site).0
    }

    /// Strictest tier: only hits the resolver is confident about (typed
    /// receiver, free fn, `self.…`). A plain `expr.m(…)` never resolves —
    /// the guard-io and swallowed-error rules must not attribute
    /// `children.insert(…)` (a `Vec` method) to a same-named workspace
    /// fn.
    pub fn resolve_exact(&self, caller: FnId, site: &CallSite) -> Vec<FnId> {
        let (hit, confident) = self.resolve_inner(caller, site);
        if confident {
            hit
        } else {
            Vec::new()
        }
    }

    /// Returns the resolved ids plus whether the lookup was confident
    /// (typed hit, or typed table consulted and the miss is meaningful).
    fn resolve_inner(&self, caller: FnId, site: &CallSite) -> (Vec<FnId>, bool) {
        let me = &self.fns[caller];
        let typed = |t: &str| self.by_type_name.get(&(t.to_owned(), site.name.clone()));
        match &site.recv {
            Receiver::SelfMethod => {
                if let Some(hit) = me.self_type.as_deref().and_then(typed) {
                    return (hit.clone(), true);
                }
                (self.same_file(me.file_idx, &site.name, false), true)
            }
            Receiver::SelfField(field) => {
                let ftype = me
                    .self_type
                    .as_ref()
                    .and_then(|t| self.field_types.get(&(t.clone(), field.clone())));
                match ftype {
                    Some(t) => (typed(t).cloned().unwrap_or_default(), true),
                    None => (self.same_file(me.file_idx, &site.name, false), false),
                }
            }
            Receiver::Path(t) => {
                let t = if t == "Self" { me.self_type.as_deref().unwrap_or("Self") } else { t };
                // A miss on a path call is a std/external type
                // (`u32::from_le_bytes`): confidently unresolved.
                (typed(t).cloned().unwrap_or_default(), true)
            }
            Receiver::Method => (self.same_file(me.file_idx, &site.name, false), false),
            Receiver::Free => {
                let hit = self.same_file(me.file_idx, &site.name, true);
                if !hit.is_empty() {
                    return (hit, true);
                }
                (self.free_by_name.get(&site.name).cloned().unwrap_or_default(), true)
            }
        }
    }

    /// The declared-type chain of a struct field (uppercase idents,
    /// outermost first) — the typed receiver table of the determinism
    /// pass.
    pub fn field_chain(&self, owner: &str, field: &str) -> Option<&[String]> {
        self.field_chains.get(&(owner.to_owned(), field.to_owned())).map(|v| v.as_slice())
    }

    fn same_file(&self, fi: usize, name: &str, free_only: bool) -> Vec<FnId> {
        self.file_fns[fi]
            .iter()
            .copied()
            .filter(|&id| {
                self.fns[id].name == name && (!free_only || self.fns[id].self_type.is_none())
            })
            .collect()
    }
}

/// Splits the argument region `(open, close)` of a call into per-argument
/// token sub-ranges (empty for `()`).
pub fn split_args(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if close <= open + 1 {
        return out;
    }
    let mut start = open + 1;
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            out.push((start, j));
            start = j + 1;
        }
    }
    out.push((start, close));
    out
}

/// `impl` blocks as `(type name, body token range)`.
fn impl_spans(tokens: &[Token]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        // Find the body `{` at angle-bracket depth 0; the header of a
        // (non-Fn-trait) impl contains no other braces.
        let mut angle = 0i64;
        let mut j = i + 1;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
                angle -= 1;
            } else if t.is_punct('{') && angle <= 0 {
                open = Some(j);
                break;
            } else if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // Type region: after the last angle-depth-0 `for`, stopping at
        // `where`; the name is the last path segment at depth 0.
        let mut region_start = i + 1;
        let mut angle = 0i64;
        for k in i + 1..open {
            match tokens[k].ident() {
                Some("for") if angle == 0 => region_start = k + 1,
                _ => {}
            }
            if tokens[k].is_punct('<') {
                angle += 1;
            } else if tokens[k].is_punct('>') && !tokens[k - 1].is_punct('-') {
                angle -= 1;
            }
        }
        let mut angle = 0i64;
        let mut name = None;
        for k in region_start..open {
            let t = &tokens[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !tokens[k - 1].is_punct('-') {
                angle -= 1;
            } else if angle == 0 {
                match t.ident() {
                    Some("where") => break,
                    Some(id) if id != "dyn" && id != "mut" && id != "const" => {
                        name = Some(id.to_owned());
                    }
                    _ => {}
                }
            }
        }
        if let Some(name) = name {
            out.push((name, (open, syntax::match_delim(tokens, open))));
        }
        i = open + 1;
    }
    out
}

/// Named struct fields as `(owner, field, reduced type name, full type
/// chain)`. The reduced name (innermost non-wrapper, for method
/// resolution) is `None` when the type reduces to no
/// workspace-resolvable name (primitives, tuples, generics); the chain
/// keeps every uppercase ident in declaration order for the determinism
/// pass.
#[allow(clippy::type_complexity)]
fn struct_fields(tokens: &[Token]) -> Vec<(String, String, Option<String>, Vec<String>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() != Some("struct") {
            i += 1;
            continue;
        }
        let Some(owner) = tokens.get(i + 1).and_then(|t| t.ident()).map(str::to_owned) else {
            i += 1;
            continue;
        };
        // Skip generics to the `{` of a named-field struct; `;`/`(`
        // means unit/tuple struct.
        let mut angle = 0i64;
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !tokens[j - 1].is_punct('-') {
                angle -= 1;
            } else if (t.is_punct(';') || t.is_punct('(')) && angle == 0 {
                break;
            } else if t.is_punct('{') && angle == 0 {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = syntax::match_delim(tokens, open);
        // Fields: `name :` at brace depth 1 (relative), not `::`.
        let mut depth = 0i64;
        for k in open..close {
            let t = &tokens[k];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('}')
                || t.is_punct(')')
                || t.is_punct(']')
                || (t.is_punct('>') && !tokens[k - 1].is_punct('-'))
            {
                depth -= 1;
            } else if depth == 1
                && t.ident().is_some()
                && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && k > 0
                && !tokens[k - 1].is_punct(':')
            {
                // Type region: to the `,` back at depth 1 or the close.
                let field = t.ident().unwrap_or_default().to_owned();
                let mut d2 = 0i64;
                let mut ftype = None;
                let mut chain = Vec::new();
                for m in k + 2..close {
                    let u = &tokens[m];
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') || u.is_punct('<') {
                        d2 += 1;
                    } else if u.is_punct(')')
                        || u.is_punct(']')
                        || u.is_punct('}')
                        || (u.is_punct('>') && !tokens[m - 1].is_punct('-'))
                    {
                        if d2 == 0 {
                            break;
                        }
                        d2 -= 1;
                    } else if u.is_punct(',') && d2 == 0 {
                        break;
                    } else if let Some(id) = u.ident() {
                        if id.starts_with(|c: char| c.is_ascii_uppercase()) {
                            chain.push(id.to_owned());
                            if ftype.is_none() && !WRAPPERS.contains(&id) {
                                ftype = Some(id.to_owned());
                            }
                        }
                    }
                }
                if !chain.is_empty() {
                    out.push((owner.clone(), field, ftype, chain));
                }
            }
        }
        i = close + 1;
    }
    out
}

/// What `signature` extracts from a fn's signature tokens.
#[derive(Default)]
struct Signature {
    params: Vec<String>,
    returns_result: bool,
    /// Uppercase idents of each param's type region, aligned with
    /// `params` (outermost first).
    param_chains: Vec<Vec<String>>,
    /// Uppercase idents of the return-type region, outermost first.
    ret_chain: Vec<String>,
}

/// Extracts the parameter binders and type-name chains from a fn's
/// signature tokens.
fn signature(tokens: &[Token], f: &FnSpan) -> Signature {
    // Params: first `(` after the name (skipping generics).
    let mut j = f.fn_idx + 2;
    while j < tokens.len() && !tokens[j].is_punct('(') {
        j += 1;
    }
    if j >= tokens.len() {
        return Signature::default();
    }
    let close = syntax::match_delim(tokens, j);
    let mut sig = Signature::default();
    for (a, b) in split_args(tokens, j, close) {
        // Binder: the first ident before the `:`, skipping `mut`/`ref`;
        // a bare `self` (with any `&`/`mut` decoration) is not a param.
        let mut binder = None;
        let mut colon = None;
        for (k, t) in tokens.iter().enumerate().take(b).skip(a) {
            if t.is_punct(':') {
                colon = Some(k);
                break;
            }
            match t.ident() {
                Some("mut") | Some("ref") => {}
                Some("self") => {
                    binder = None;
                    break;
                }
                Some(id) if binder.is_none() => binder = Some(id.to_owned()),
                Some(_) => {}
                None => {}
            }
        }
        if let Some(bnd) = binder {
            sig.params.push(bnd);
            sig.param_chains.push(type_chain(tokens, colon.map_or(b, |c| c + 1), b));
        }
    }
    // Return-type region: from the params close to the body `{` or `;`.
    let sig_end = f.body.map(|(o, _)| o).unwrap_or_else(|| {
        (close + 1..tokens.len()).find(|&k| tokens[k].is_punct(';')).unwrap_or(tokens.len())
    });
    sig.returns_result = (close + 1..sig_end).any(|k| tokens[k].ident() == Some("Result"));
    sig.ret_chain = type_chain(tokens, close + 1, sig_end);
    sig
}

/// The uppercase idents of a type region, in order.
fn type_chain(tokens: &[Token], a: usize, b: usize) -> Vec<String> {
    tokens
        .iter()
        .take(b)
        .skip(a)
        .filter_map(|t| t.ident())
        .filter(|id| id.starts_with(|c: char| c.is_ascii_uppercase()))
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(srcs: &[(&str, &str)]) -> (CallGraph, Vec<FileData>) {
        let files: Vec<FileData> = srcs.iter().map(|(p, s)| FileData::new(p, s)).collect();
        let cg = CallGraph::build(&files);
        (cg, files)
    }

    #[test]
    fn impl_spans_find_plain_trait_and_generic_impls() {
        let l = lex("impl Foo { fn a() {} }
            impl<T: Clone> Bar<T> { fn b() {} }
            impl Display for Baz<'_> { fn fmt() {} }");
        let spans = impl_spans(&l.tokens);
        let names: Vec<&str> = spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Foo", "Bar", "Baz"]);
    }

    #[test]
    fn struct_fields_reduce_wrapper_types() {
        let fields = struct_fields(
            &lex("struct Engine {
                pool: Arc<StripedBufferPool>,
                locks: Vec<Mutex<LruCache<u32, Frame>>>,
                count: usize,
                pub name: String,
            }")
            .tokens,
        );
        assert!(fields.contains(&(
            "Engine".into(),
            "pool".into(),
            Some("StripedBufferPool".into()),
            vec!["Arc".into(), "StripedBufferPool".into()]
        )));
        assert!(fields.iter().any(|(_, f, t, c)| {
            f == "locks"
                && t.as_deref() == Some("LruCache")
                && c.first().map(String::as_str) == Some("Vec")
        }));
        assert!(!fields.iter().any(|(_, f, _, _)| f == "count"), "{fields:?}");
    }

    #[test]
    fn cross_file_field_typed_resolution() {
        let (cg, _files) = graph(&[
            (
                "a.rs",
                "struct Eng { pool: Arc<Pool> }
                 impl Eng { fn run(&self) { self.pool.fault(3); } }",
            ),
            (
                "b.rs",
                "struct Pool; impl Pool { fn fault(&self, n: u32) -> Result<(), E> { Ok(()) } }",
            ),
        ]);
        let run = cg.fns.iter().position(|f| f.name == "run").expect("run");
        let toks = &lex("self . pool . fault ( 3 )").tokens;
        let site = call_at(toks, 4).expect("site");
        assert_eq!(site.recv, Receiver::SelfField("pool".into()));
        let hit = cg.resolve_confident(run, &site);
        assert_eq!(hit.len(), 1);
        assert_eq!(cg.qualified(hit[0]), "Pool::fault");
        assert!(cg.fns[hit[0]].returns_result);
        assert_eq!(cg.fns[hit[0]].params, ["n"]);
    }

    #[test]
    fn path_miss_is_confidently_unresolved() {
        let (cg, _files) =
            graph(&[("a.rs", "fn with_capacity() {} fn f() { let v = Vec::with_capacity(9); }")]);
        let f = cg.fns.iter().position(|x| x.name == "f").expect("f");
        let toks = &lex("Vec :: with_capacity ( 9 )").tokens;
        let site = call_at(toks, 3).expect("site");
        assert!(cg.resolve_confident(f, &site).is_empty());
        assert!(cg.resolve(f, &site).is_empty());
    }
}
