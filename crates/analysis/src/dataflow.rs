//! Pass A: untrusted-input taint for the decode path.
//!
//! A per-function forward dataflow over the token stream tracks the
//! provenance of let-bound locals through a three-point lattice:
//!
//! * **tainted** — produced by `from_le_bytes` (every raw byte reader in
//!   the workspace bottoms out there) or by a `taint-source`-marked
//!   function, directly or through calls and field/element reads;
//! * **sanitized** — a tainted value that flowed through a bound check:
//!   a comparison guard whose body can fail the function
//!   (`if n > limit { return Err(…) }`), a sanitizing callee (one whose
//!   own body bound-checks its parameter, like `Reader::require`),
//!   `.min(…)` / `.clamp(…)`, `% n`, or `& MASK`;
//! * **clean** — everything else.
//!
//! **Sinks**: allocation sizes (`with_capacity`, `reserve`,
//! `reserve_exact`, `resize`, `set_len`), slice index/range expressions,
//! and `for … in 0..n` loop bounds. A tainted value at a sink is a
//! finding unless the line carries `// roadlint: sanitized reason="…"`;
//! a sanitized value at a sink becomes a row of the taint verdict table
//! (`source → sanitizer → sink`, printed by `roadlint --taint`).
//!
//! **Interprocedural**: per-function summaries — return provenance,
//! parameters that reach sinks, parameters the function sanitizes — are
//! computed to a fixpoint over the workspace call graph, so a helper in
//! another crate that indexes with its parameter is a sink for every
//! caller passing tainted values, and `Reader::require` is discovered as
//! a sanitizer from its own body rather than hardcoded.
//!
//! Documented approximations: values inside containers are tracked only
//! via receiver taint (`v.push(tainted)` taints `v`, and everything read
//! out of `v` afterwards); closure parameters are untracked; `while`
//! loop bounds are not sinks; a guard sanitizes its operands from the
//! guard line onward without branch sensitivity. Taint resolution uses
//! [`CallGraph::resolve_confident`] only — an unknown callee propagates
//! its arguments' provenance instead of borrowing summaries from
//! same-named functions elsewhere.

use crate::callgraph::{self, CallGraph, FnId};
use crate::lexer::{Tok, Token};
use crate::syntax;
use crate::{FileData, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Allocation-size sinks recognized by callee name.
const SINK_FNS: &[&str] = &["with_capacity", "reserve", "reserve_exact", "resize", "set_len"];

/// Methods that write their arguments into the receiver: a tainted
/// argument taints the receiver (container-level tracking).
const MUTATORS: &[&str] =
    &["push", "insert", "extend", "extend_from_slice", "push_str", "copy_from_slice", "append"];

/// Divergence evidence inside a guard's body.
const DIVERGES: &[&str] =
    &["return", "Err", "None", "break", "continue", "panic", "unreachable", "todo", "bail"];

/// Pattern/binder tokens that are never variable binders.
const NON_BINDERS: &[&str] = &["mut", "ref", "box", "self", "_"];

/// Provenance of one value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Val {
    Clean,
    /// Derived from parameter `i` of the enclosing fn, unsanitized.
    Param(usize),
    /// Untrusted, with the origin description.
    Tainted(String),
    /// Untrusted but bounded: `(origin, sanitizer)`.
    Sanitized(String, String),
}

impl Val {
    fn rank(&self) -> u8 {
        match self {
            Val::Clean => 0,
            Val::Sanitized(..) => 1,
            Val::Param(_) => 2,
            Val::Tainted(_) => 3,
        }
    }

    /// Worst-wins merge; ties keep the first operand (scan order is
    /// deterministic, so summaries converge).
    fn merge(a: Val, b: Val) -> Val {
        if b.rank() > a.rank() {
            b
        } else {
            a
        }
    }
}

/// Return provenance of a function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Ret {
    #[default]
    Clean,
    FromParam(usize),
    Tainted(String),
    Sanitized(String, String),
}

/// The interprocedural summary of one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    pub ret: Ret,
    /// Parameters that reach a sink inside this fn (or transitively),
    /// with the sink's description.
    pub param_sinks: BTreeSet<(usize, String)>,
    /// Parameters this fn bound-checks with a failing guard.
    pub sanitizes: BTreeSet<usize>,
}

/// One row of the taint verdict table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaintVerdict {
    pub source: String,
    pub sanitizer: String,
    pub sink: String,
}

#[derive(Default)]
struct Emit {
    findings: BTreeSet<Finding>,
    verdicts: BTreeSet<TaintVerdict>,
}

/// Runs the taint pass over the workspace.
pub fn check(files: &[FileData], cg: &CallGraph) -> (Vec<Finding>, Vec<TaintVerdict>) {
    let mut sums: Vec<Summary> = vec![Summary::default(); cg.fns.len()];
    // Summaries to a fixpoint (the lattice is finite; the cap guards
    // against rank flip-flops in mutually recursive code).
    for _ in 0..12 {
        let mut changed = false;
        for id in 0..cg.fns.len() {
            if cg.fns[id].in_test_mod || cg.fns[id].body.is_none() {
                continue;
            }
            let s = FnCx::new(files, cg, id, &sums, None).run();
            if s != sums[id] {
                sums[id] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut emit = Emit::default();
    for id in 0..cg.fns.len() {
        if cg.fns[id].in_test_mod || cg.fns[id].body.is_none() {
            continue;
        }
        FnCx::new(files, cg, id, &sums, Some(&mut emit)).run();
    }
    (emit.findings.into_iter().collect(), emit.verdicts.into_iter().collect())
}

/// The per-function dataflow engine.
struct FnCx<'a> {
    cg: &'a CallGraph,
    sums: &'a [Summary],
    me: FnId,
    fd: &'a FileData,
    vars: BTreeMap<String, Val>,
    ret: Val,
    param_sinks: BTreeSet<(usize, String)>,
    sanitizes: BTreeSet<usize>,
    emit: Option<&'a mut Emit>,
}

impl<'a> FnCx<'a> {
    fn new(
        files: &'a [FileData],
        cg: &'a CallGraph,
        me: FnId,
        sums: &'a [Summary],
        emit: Option<&'a mut Emit>,
    ) -> FnCx<'a> {
        let info = &cg.fns[me];
        let mut vars = BTreeMap::new();
        for (i, p) in info.params.iter().enumerate() {
            vars.insert(p.clone(), Val::Param(i));
        }
        FnCx {
            cg,
            sums,
            me,
            fd: &files[info.file_idx],
            vars,
            ret: Val::Clean,
            param_sinks: BTreeSet::new(),
            sanitizes: BTreeSet::new(),
            emit,
        }
    }

    fn toks(&self) -> &'a [Token] {
        &self.fd.lexed.tokens
    }

    fn run(mut self) -> Summary {
        if let Some((bs, be)) = self.cg.fns[self.me].body {
            self.stmts(bs + 1, be);
        }
        let ret = match self.ret {
            Val::Clean => Ret::Clean,
            Val::Param(p) => Ret::FromParam(p),
            Val::Tainted(o) => Ret::Tainted(o),
            Val::Sanitized(o, s) => Ret::Sanitized(o, s),
        };
        Summary { ret, param_sinks: self.param_sinks, sanitizes: self.sanitizes }
    }

    /// Statement-by-statement scan of a block region.
    fn stmts(&mut self, a: usize, b: usize) {
        let mut i = a;
        while i < b {
            let t = &self.toks()[i];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
                i += 1;
                continue;
            }
            match t.ident() {
                Some("let") => i = self.handle_let(i, b),
                Some("for") => i = self.handle_for(i, b),
                Some("if") => i = self.handle_if(i, b),
                Some("while") | Some("match") => {
                    let open = self.find_block_open(i + 1, b);
                    self.eval(i + 1, open, true);
                    i = open + 1;
                }
                Some("return") => {
                    let (end, _) = self.stmt_limit(i + 1, b);
                    let v = self.eval(i + 1, end, true);
                    self.ret = Val::merge(self.ret.clone(), v);
                    i = end + 1;
                }
                Some("else") | Some("loop") | Some("unsafe") => i += 1,
                _ => {
                    let (end, closed) = self.stmt_limit(i, b);
                    let v = self.handle_expr_stmt(i, end);
                    if closed {
                        // Block-final expression: a (possible) tail value.
                        self.ret = Val::merge(self.ret.clone(), v);
                    }
                    i = end + 1;
                }
            }
        }
    }

    /// End of the statement starting at `a`: the `;` (or match-arm `,`)
    /// at relative depth 0, or the `}` closing the enclosing block.
    /// `closed` = ended without a `;` (tail-position expression).
    fn stmt_limit(&self, a: usize, b: usize) -> (usize, bool) {
        let mut depth = 0i64;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return (j, true);
                }
            } else if t.is_punct(';') && depth == 0 {
                return (j, false);
            } else if t.is_punct(',') && depth == 0 {
                return (j, true);
            }
            j += 1;
        }
        (b, true)
    }

    /// The `{` opening the body of an `if`/`for`/`while`/`match` whose
    /// header starts at `a`.
    fn find_block_open(&self, a: usize, b: usize) -> usize {
        let mut depth = 0i64;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('{') {
                if depth == 0 {
                    return j;
                }
                depth += 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            }
            j += 1;
        }
        b
    }

    /// Binder identifiers of a pattern region (lowercase-initial, not
    /// `mut`/`ref`/`_`/`self`).
    fn pattern_binders(&self, a: usize, b: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in a..b {
            if let Some(id) = self.toks()[k].ident() {
                if !NON_BINDERS.contains(&id)
                    && id.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                {
                    out.push(id.to_owned());
                }
            }
        }
        out
    }

    fn handle_let(&mut self, i: usize, b: usize) -> usize {
        // Pattern region: up to the depth-0 `=`, stopping binder
        // collection at a depth-0 `:` (type ascription).
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut pattern_end = None;
        let mut eq = None;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 {
                if t.is_punct(';') {
                    // `let x;` — uninitialized.
                    let binders = self.pattern_binders(i + 1, j);
                    for bnd in binders {
                        self.vars.insert(bnd, Val::Clean);
                    }
                    return j + 1;
                }
                if t.is_punct(':')
                    && !self.toks().get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !(j > 0 && self.toks()[j - 1].is_punct(':'))
                {
                    pattern_end.get_or_insert(j);
                }
                if t.is_punct('=')
                    && !self.toks().get(j + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                    && !(j > 0 && is_cmp_prefix(&self.toks()[j - 1]))
                {
                    eq = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(eq) = eq else {
            return j + 1;
        };
        let binders = self.pattern_binders(i + 1, pattern_end.unwrap_or(eq));
        let (end, _) = self.stmt_limit(eq + 1, b);
        let v = self.eval(eq + 1, end, true);
        for bnd in binders {
            self.vars.insert(bnd, v.clone());
        }
        end + 1
    }

    fn handle_for(&mut self, i: usize, b: usize) -> usize {
        let mut j = i + 1;
        while j < b && self.toks()[j].ident() != Some("in") && !self.toks()[j].is_punct('{') {
            j += 1;
        }
        let binders = self.pattern_binders(i + 1, j);
        let start = j + 1;
        let open = self.find_block_open(start, b);
        let v = self.eval(start, open, true);
        // `for … in 0..n` — `n` is a loop bound (a sink); iterator loops
        // are bounded by the container and stay quiet.
        let is_range = (start..open.saturating_sub(1)).any(|k| {
            self.toks()[k].is_punct('.') && self.toks().get(k + 1).is_some_and(|t| t.is_punct('.'))
        });
        if is_range {
            self.sink(v.clone(), "loop bound", self.toks()[i].line, true);
        }
        for bnd in binders {
            self.vars.insert(bnd, v.clone());
        }
        open + 1
    }

    fn handle_if(&mut self, i: usize, b: usize) -> usize {
        if self.toks().get(i + 1).is_some_and(|t| t.ident() == Some("let")) {
            // `if let PAT = expr {` / `while let`: bind and move on.
            let open = self.find_block_open(i + 2, b);
            let eq = (i + 2..open).find(|&k| {
                self.toks()[k].is_punct('=')
                    && !self.toks().get(k + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                    && !is_cmp_prefix(&self.toks()[k - 1])
            });
            if let Some(eq) = eq {
                let binders = self.pattern_binders(i + 2, eq);
                let v = self.eval(eq + 1, open, true);
                for bnd in binders {
                    self.vars.insert(bnd, v.clone());
                }
            }
            return open + 1;
        }
        let open = self.find_block_open(i + 1, b);
        self.eval(i + 1, open, true);
        let has_cmp = (i + 1..open).any(|k| self.is_cmp_at(k));
        if has_cmp && self.block_diverges(open) {
            // The guard sanitizes every tracked operand it compares.
            let line = self.toks()[i].line;
            let desc = format!("guard ({}:{line})", self.fd.path);
            self.sanitize_region(i + 1, open, &desc);
        }
        open + 1
    }

    fn block_diverges(&self, open: usize) -> bool {
        let close = syntax::match_delim(self.toks(), open);
        (open..close).any(|k| self.toks()[k].ident().is_some_and(|id| DIVERGES.contains(&id)))
    }

    fn is_cmp_at(&self, k: usize) -> bool {
        let toks = self.toks();
        let t = &toks[k];
        if t.is_punct('<') {
            return !(k > 0 && toks[k - 1].is_punct(':'));
        }
        if t.is_punct('>') {
            return !(k > 0 && (toks[k - 1].is_punct('-') || toks[k - 1].is_punct('=')));
        }
        t.is_punct('=') && k > 0 && is_cmp_prefix(&toks[k - 1])
    }

    /// Expression statement: assignment tracking, else plain eval.
    fn handle_expr_stmt(&mut self, a: usize, b: usize) -> Val {
        let toks = self.toks();
        let mut k = a;
        while k < b && toks[k].is_punct('*') {
            k += 1;
        }
        if let Some(name) = toks.get(k).and_then(|t| t.ident()) {
            let plain = toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(k + 2).is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
            let compound = toks
                .get(k + 1)
                .is_some_and(|t| matches!(t.tok, Tok::Punct(c) if "+-*/%&|^".contains(c)))
                && toks.get(k + 2).is_some_and(|t| t.is_punct('='));
            if plain || compound {
                let eq = if plain { k + 1 } else { k + 2 };
                let v = self.eval(eq + 1, b, true);
                let name = name.to_owned();
                let old = self.vars.get(&name).cloned().unwrap_or(Val::Clean);
                let nv = if compound { Val::merge(old, v) } else { v };
                self.vars.insert(name, nv);
                return Val::Clean;
            }
        }
        self.eval(a, b, true)
    }

    /// The expression walker: merges provenance contributions, resolves
    /// calls against summaries, and checks sinks.
    fn eval(&mut self, a: usize, b: usize, emit: bool) -> Val {
        let mut val = Val::Clean;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            if let Some(site) = callgraph::call_at(self.toks(), j) {
                let close = syntax::match_delim(self.toks(), site.args_open);
                if close < b {
                    let (c, skip) = self.eval_call(&site, close, emit);
                    let c = self.demote(c, close, b);
                    val = Val::merge(val, c);
                    j = if skip { close + 1 } else { site.args_open + 1 };
                    continue;
                }
            }
            if t.is_punct('[') && j > 0 {
                let prev = &self.toks()[j - 1];
                let is_macro = prev.ident().is_some() && j >= 2 && self.toks()[j - 2].is_punct('!');
                let indexes = (prev.ident().is_some() && !is_macro)
                    || prev.is_punct(')')
                    || prev.is_punct(']')
                    || prev.is_punct('?');
                if indexes {
                    let close = syntax::match_delim(self.toks(), j);
                    if close <= b {
                        let iv = self.eval(j + 1, close, false);
                        self.sink(iv, "slice index/range", t.line, emit);
                    }
                }
                j += 1;
                continue;
            }
            if let Some(name) = t.ident() {
                // A field read (`x.name`) — but not a range bound
                // (`0..name`, where the previous two tokens are `.`s).
                let is_field = j > 0
                    && self.toks()[j - 1].is_punct('.')
                    && !(j >= 2 && self.toks()[j - 2].is_punct('.'));
                if !is_field {
                    if let Some(v) = self.vars.get(name).cloned() {
                        if let Some((m, margs)) = method_after(self.toks(), j) {
                            if MUTATORS.contains(&m) {
                                // `v.push(tainted)` taints `v`.
                                let mclose = syntax::match_delim(self.toks(), margs);
                                if mclose < b {
                                    let av = self.eval(margs + 1, mclose, emit);
                                    let nv = Val::merge(v, av);
                                    self.vars.insert(name.to_owned(), nv);
                                    j = mclose + 1;
                                    continue;
                                }
                            }
                        }
                        let v = self.demote(v, j, b);
                        val = Val::merge(val, v);
                    }
                }
            }
            j += 1;
        }
        val
    }

    /// Applies a call's summaries. Returns `(contribution, skip_args)`:
    /// resolved calls skip their argument region in the caller's walk
    /// (the summary is precise), unresolved calls let it be walked
    /// (arguments' provenance propagates through unknown callees).
    fn eval_call(&mut self, site: &callgraph::CallSite, close: usize, emit: bool) -> (Val, bool) {
        let toks = self.toks();
        if site.name == "from_le_bytes" {
            let me = &self.cg.fns[self.me];
            let origin = format!("{} ({}:{})", self.cg.qualified(self.me), self.fd.path, me.line);
            return (Val::Tainted(origin), false);
        }
        // Lengths/capacities of real containers are trusted sizes, and
        // `partition_point` / `binary_search` indices are bounded by the
        // container they searched.
        if matches!(
            site.name.as_str(),
            "len" | "capacity" | "is_empty" | "partition_point" | "binary_search"
        ) {
            return (Val::Clean, true);
        }
        // `x.min(…)` / `x.clamp(…)` return a bounded value (the receiver's
        // demotion already happened); don't let the bound argument's
        // provenance leak into the result.
        if matches!(site.name.as_str(), "min" | "clamp") {
            let args = callgraph::split_args(toks, site.args_open, close);
            for &(x, y) in &args {
                self.eval(x, y, emit);
            }
            return (Val::Clean, true);
        }
        if SINK_FNS.contains(&site.name.as_str()) {
            let args = callgraph::split_args(toks, site.args_open, close);
            let mut av = Val::Clean;
            for &(x, y) in &args {
                av = Val::merge(av, self.eval(x, y, emit));
            }
            self.sink(av, &format!("{}()", site.name), site.line, emit);
            return (Val::Clean, true);
        }
        let callees = self.cg.resolve_confident(self.me, site);
        if callees.is_empty() {
            return (Val::Clean, false);
        }
        let args = callgraph::split_args(toks, site.args_open, close);
        let arg_vals: Vec<Val> = args.iter().map(|&(x, y)| self.eval(x, y, emit)).collect();
        let mut out = Val::Clean;
        for &cid in &callees {
            let info = &self.cg.fns[cid];
            if info.taint_source {
                let origin = format!("{} ({}:{})", self.cg.qualified(cid), self.fd.path, site.line);
                out = Val::merge(out, Val::Tainted(origin));
            }
            let sum = self.sums[cid].clone();
            let rv = match sum.ret {
                Ret::Clean => Val::Clean,
                Ret::Tainted(o) => Val::Tainted(o),
                Ret::Sanitized(o, s) => Val::Sanitized(o, s),
                Ret::FromParam(p) => arg_vals.get(p).cloned().unwrap_or(Val::Clean),
            };
            out = Val::merge(out, rv);
            for (p, desc) in &sum.param_sinks {
                if let Some(av) = arg_vals.get(*p) {
                    self.sink_named(av.clone(), desc.clone(), site.line, emit);
                }
            }
            for p in &sum.sanitizes {
                if let Some(&(x, y)) = args.get(*p) {
                    let cinfo = &self.cg.fns[cid];
                    let desc = format!("{} (line {})", self.cg.qualified(cid), cinfo.line);
                    self.sanitize_region(x, y, &desc);
                }
            }
        }
        (out, true)
    }

    /// A bounding operation directly after a tainted value demotes it:
    /// `% n`, `& MASK`, or a chain ending in a bounded method
    /// (`.min(…)`, `.clamp(…)`, `.partition_point(…)`,
    /// `.binary_search(…)` — the last two through any number of field
    /// reads, so `node.keys.partition_point(…)` on a tainted `node`
    /// yields a bounded index, not a tainted one).
    fn demote(&self, v: Val, after: usize, b: usize) -> Val {
        let Val::Tainted(o) = &v else { return v };
        let toks = self.toks();
        let mut k = after + 1;
        while k < b && toks[k].is_punct('?') {
            k += 1;
        }
        if k < b && toks[k].is_punct('%') {
            return Val::Sanitized(o.clone(), format!("% bound (line {})", toks[k].line));
        }
        if k + 1 < b && toks[k].is_punct('&') {
            let next = &toks[k + 1];
            let is_mask = next.tok == Tok::Lit
                || next.ident().is_some_and(|id| {
                    id.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                });
            if is_mask {
                return Val::Sanitized(o.clone(), format!("& mask (line {})", toks[k].line));
            }
        }
        while k + 1 < b && toks[k].is_punct('.') {
            let Some(m) = toks[k + 1].ident() else { break };
            if k + 2 < b && toks[k + 2].is_punct('(') {
                if matches!(m, "min" | "clamp" | "partition_point" | "binary_search") {
                    return Val::Sanitized(o.clone(), format!("{m}() (line {})", toks[k + 1].line));
                }
                break;
            }
            // A field read (`node.keys`) — keep walking the chain.
            k += 2;
        }
        v
    }

    /// Marks every tracked operand in a region sanitized (guard or
    /// sanitizing-callee argument).
    fn sanitize_region(&mut self, a: usize, b: usize, desc: &str) {
        let mut updates = Vec::new();
        for k in a..b {
            let t = &self.toks()[k];
            if k > 0 && self.toks()[k - 1].is_punct('.') {
                continue;
            }
            if let Some(name) = t.ident() {
                match self.vars.get(name) {
                    Some(Val::Tainted(o)) => {
                        updates.push((name.to_owned(), Val::Sanitized(o.clone(), desc.to_owned())));
                    }
                    Some(Val::Param(p)) => {
                        self.sanitizes.insert(*p);
                        updates.push((name.to_owned(), Val::Clean));
                    }
                    _ => {}
                }
            }
        }
        for (name, v) in updates {
            self.vars.insert(name, v);
        }
    }

    fn sink(&mut self, v: Val, what: &str, line: u32, emit: bool) {
        let me = self.cg.qualified(self.me);
        let desc = format!("{what} at {}:{line} in {me}", self.fd.path);
        self.sink_named(v, desc, line, emit);
    }

    fn sink_named(&mut self, v: Val, desc: String, line: u32, emit: bool) {
        match v {
            Val::Clean => {}
            Val::Param(p) => {
                self.param_sinks.insert((p, desc));
            }
            Val::Sanitized(o, s) => {
                if emit {
                    if let Some(e) = self.emit.as_deref_mut() {
                        e.verdicts.insert(TaintVerdict { source: o, sanitizer: s, sink: desc });
                    }
                }
            }
            Val::Tainted(o) => {
                if let Some(reason) = self.fd.markers.sanitized_reason_near(line) {
                    if emit {
                        if let Some(e) = self.emit.as_deref_mut() {
                            e.verdicts.insert(TaintVerdict {
                                source: o,
                                sanitizer: format!("marker: {reason}"),
                                sink: desc,
                            });
                        }
                    }
                } else if emit {
                    if let Some(e) = self.emit.as_deref_mut() {
                        e.findings.insert(Finding {
                            file: self.fd.path.clone(),
                            line,
                            rule: "taint",
                            message: format!(
                                "tainted value from {o} reaches {desc} without a sanitizer; \
                                 bound it first or mark `// roadlint: sanitized reason=\"…\"`"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `ident . m (` directly after token `j` → `(m, index of the "(")`.
fn method_after(toks: &[Token], j: usize) -> Option<(&str, usize)> {
    if toks.get(j + 1).is_some_and(|t| t.is_punct('.')) {
        let m = toks.get(j + 2)?.ident()?;
        if toks.get(j + 3).is_some_and(|t| t.is_punct('(')) {
            return Some((m, j + 3));
        }
    }
    None
}

/// True when `t` makes a following `=` a comparison (`==`, `!=`, `<=`,
/// `>=`) rather than an assignment.
fn is_cmp_prefix(t: &Token) -> bool {
    t.is_punct('=') || t.is_punct('!') || t.is_punct('<') || t.is_punct('>')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(srcs: &[(&str, &str)]) -> (Vec<Finding>, Vec<TaintVerdict>) {
        let files: Vec<FileData> = srcs.iter().map(|(p, s)| FileData::new(p, s)).collect();
        let cg = CallGraph::build(&files);
        check(&files, &cg)
    }

    #[test]
    fn unsanitized_count_at_alloc_index_and_loop_is_found() {
        let (f, _) = run(&[(
            "t.rs",
            "fn read_u32(b: &[u8], at: usize) -> u32 {
                 u32::from_le_bytes([b[at], b[at+1], b[at+2], b[at+3]])
             }
             fn decode(b: &[u8]) -> Vec<u32> {
                 let n = read_u32(b, 0) as usize;
                 let mut out = Vec::with_capacity(n);
                 for i in 0..n { out.push(read_u32(b, 4 + 4 * i)); }
                 out
             }",
        )]);
        let msgs: String = f.iter().map(|x| x.message.as_str()).collect();
        assert!(msgs.contains("with_capacity"), "{f:?}");
        assert!(msgs.contains("loop bound"), "{f:?}");
    }

    #[test]
    fn guard_and_callee_sanitizers_suppress_and_are_tabulated() {
        let (f, v) = run(&[(
            "t.rs",
            "fn read_u32(b: &[u8], at: usize) -> u32 {
                 u32::from_le_bytes([b[at], b[at+1], b[at+2], b[at+3]])
             }
             fn require(n: usize, limit: usize) -> Result<(), E> {
                 if n > limit { return Err(E); }
                 Ok(())
             }
             fn decode(b: &[u8]) -> Result<Vec<u32>, E> {
                 let n = read_u32(b, 0) as usize;
                 require(n, b.len() / 4)?;
                 let mut out = Vec::with_capacity(n);
                 let m = read_u32(b, 4) as usize;
                 if m > b.len() { return Err(E); }
                 for i in 0..m { out.push(i as u32); }
                 Ok(out)
             }",
        )]);
        let taint: Vec<_> = f.iter().filter(|x| x.rule == "taint").collect();
        assert!(taint.is_empty(), "{taint:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("require")), "{v:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("guard")), "{v:?}");
    }

    #[test]
    fn cross_file_param_sink_is_interprocedural() {
        let (f, _) = run(&[
            (
                "reader.rs",
                "pub fn le_u32(b: &[u8], at: usize) -> u32 {
                     u32::from_le_bytes([b[at], b[at+1], b[at+2], b[at+3]])
                 }",
            ),
            ("helper.rs", "pub fn alloc_records(n: usize) -> Vec<u64> { Vec::with_capacity(n) }"),
            (
                "decode.rs",
                "fn decode(b: &[u8]) -> Vec<u64> {
                     let n = le_u32(b, 0) as usize;
                     alloc_records(n)
                 }",
            ),
        ]);
        let taint: Vec<_> = f.iter().filter(|x| x.rule == "taint").collect();
        assert_eq!(taint.len(), 1, "{f:?}");
        assert!(taint[0].file == "decode.rs", "{taint:?}");
        assert!(
            taint[0].message.contains("alloc_records")
                || taint[0].message.contains("with_capacity"),
            "{taint:?}"
        );
    }

    #[test]
    fn min_clamp_and_marker_demote() {
        let (f, v) = run(&[(
            "t.rs",
            "fn le(b: &[u8]) -> u32 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) }
             fn decode(b: &[u8]) -> Vec<u8> {
                 let n = le(b) as usize;
                 let mut out = Vec::with_capacity(n.min(b.len()));
                 // roadlint: sanitized reason=\"n re-checked above\"
                 out.reserve(n);
                 out
             }",
        )]);
        assert!(f.iter().all(|x| x.rule != "taint"), "{f:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("min")), "{v:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("marker")), "{v:?}");
    }
}
