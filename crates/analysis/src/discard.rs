//! Rule 8: swallowed errors on the serving/decode path.
//!
//! In files that carry a `serving-path` or `decode-fn` marker, silently
//! discarding a `Result` hides exactly the failure class PR 5 kept
//! finding by hand (lazy-load errors swallowed into wrong answers).
//! Three shapes are findings:
//!
//! * `let _ = fallible(…);` — the `Result` is explicitly dropped;
//! * a bare `fallible(…);` statement — the `Result` is dropped via the
//!   `#[must_use]`-defeating semicolon (detected through the call
//!   graph's return-type table, so a helper in another crate counts);
//! * a statement-final `.ok();` — converts the error to `None` and drops
//!   it (`.ok()` exists only on `Result`, so no resolution is needed).
//!
//! `fallible(…)?;` propagates and is fine. Call resolution uses
//! [`CallGraph::resolve_exact`] only — an unresolved or merely
//! name-matched callee is treated as infallible rather than borrowing
//! `returns_result` from same-named functions elsewhere (a bare
//! `children.insert(…)` is `Vec::insert`, not `BPlusTree::insert`).
//! Escape:
//! `// roadlint: allow(discard) reason="…"`. Unit-test modules are
//! exempt.

use crate::callgraph::{self, CallGraph};
use crate::lexer::Token;
use crate::markers::Marker;
use crate::syntax;
use crate::{FileData, Finding};

/// Runs the swallowed-error pass over the workspace.
pub fn check(files: &[FileData], cg: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, fd) in files.iter().enumerate() {
        let decode_file = fd.markers.markers.iter().any(|m| m.marker == Marker::DecodeFn);
        if !fd.markers.serving_path() && !decode_file {
            continue;
        }
        let toks = &fd.lexed.tokens;
        let escaped = |line: u32| {
            fd.markers.has_on_line(&Marker::AllowDiscard, line)
                || (line > 0 && fd.markers.has_on_line(&Marker::AllowDiscard, line - 1))
        };
        let mut report = |line: u32, message: String| {
            if !escaped(line) {
                out.push(Finding { file: fd.path.clone(), line, rule: "swallowed-error", message });
            }
        };
        for i in 0..toks.len() {
            if syntax::in_ranges(&fd.test_ranges, i) {
                continue;
            }
            let t = &toks[i];
            // `let _ = …;`
            if t.ident() == Some("let")
                && toks.get(i + 1).is_some_and(|t| t.ident() == Some("_"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
            {
                let end = stmt_semi(toks, i + 3);
                // `let _ = fallible()?;` propagates before dropping `Ok`.
                let propagates = (i + 3..end).any(|k| toks[k].is_punct('?'));
                if !propagates {
                    if let Some(callee) = fallible_call_in(toks, i + 3, end, fi, cg) {
                        report(
                            t.line,
                            format!(
                                "`let _ =` discards the Result of {callee}; handle or propagate \
                                 the error, or mark `// roadlint: allow(discard) reason=\"…\"`"
                            ),
                        );
                    }
                }
                continue;
            }
            // Statement-final `.ok();`
            if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.ident() == Some("ok"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                && toks.get(i + 4).is_some_and(|t| t.is_punct(';'))
                && bare_statement(toks, i)
            {
                let line = toks[i + 1].line;
                report(
                    line,
                    "statement-final `.ok()` swallows the error; handle or propagate it, \
                     or mark `// roadlint: allow(discard) reason=\"…\"`"
                        .to_owned(),
                );
                continue;
            }
            // Bare `fallible(…);` statement.
            if t.is_punct(';') && i >= 2 && toks[i - 1].is_punct(')') {
                let open = syntax::match_delim_back(toks, i - 1);
                let Some(name_idx) = open.checked_sub(1) else { continue };
                let Some(site) = callgraph::call_at(toks, name_idx) else { continue };
                if site.name == "ok" || !bare_statement(toks, name_idx) {
                    continue;
                }
                let Some(me) = cg.enclosing_fn(fi, name_idx) else { continue };
                let callees = cg.resolve_exact(me, &site);
                if let Some(&c) = callees.iter().find(|&&c| cg.fns[c].returns_result) {
                    report(
                        site.line,
                        format!(
                            "bare `{}(…);` statement drops a Result ({} is fallible); `?` it, \
                             handle it, or mark `// roadlint: allow(discard) reason=\"…\"`",
                            site.name,
                            cg.qualified(c)
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Index of the `;` ending the statement starting at `a` (depth-aware).
fn stmt_semi(toks: &[Token], a: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(a) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
    }
    toks.len()
}

/// The first call in the region whose exact resolution says it returns
/// a `Result`, as its qualified name.
fn fallible_call_in(
    toks: &[Token],
    a: usize,
    b: usize,
    fi: usize,
    cg: &CallGraph,
) -> Option<String> {
    for k in a..b {
        let Some(site) = callgraph::call_at(toks, k) else { continue };
        let Some(me) = cg.enclosing_fn(fi, k) else { continue };
        let callees = cg.resolve_exact(me, &site);
        if let Some(&c) = callees.iter().find(|&&c| cg.fns[c].returns_result) {
            return Some(cg.qualified(c));
        }
    }
    None
}

/// True when the statement containing token `at` is a bare expression:
/// it follows a `;`/`{`/`}` boundary with no `let`, assignment, `return`
/// or other consuming context in between (walking back through a method
/// chain).
fn bare_statement(toks: &[Token], at: usize) -> bool {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return true;
        }
        if t.is_punct(')') || t.is_punct(']') {
            j = syntax::match_delim_back(toks, j);
            continue;
        }
        if t.is_punct('.') || t.is_punct('?') || t.is_punct('*') || t.ident().is_some() {
            if t.ident().is_some_and(|id| {
                matches!(id, "let" | "return" | "match" | "if" | "while" | "for" | "in")
            }) {
                return false;
            }
            continue;
        }
        // `=`, operators, `(`, `,` … — the value is consumed.
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![FileData::new("t.rs", src)];
        let cg = CallGraph::build(&files);
        check(&files, &cg)
    }

    const HELPERS: &str = "impl S {
        fn flush(&self) -> Result<(), E> { Ok(()) }
        fn tick(&self) {}
    }";

    #[test]
    fn let_underscore_on_result_is_a_finding() {
        let f = run(&format!(
            "// roadlint: serving-path\n{HELPERS}
             impl S {{ fn f(&self) {{ let _ = self.flush(); }} }}"
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("flush"));
    }

    #[test]
    fn question_mark_and_infallible_and_escape_are_quiet() {
        let f = run(&format!(
            "// roadlint: serving-path\n{HELPERS}
             impl S {{
                 fn f(&self) -> Result<(), E> {{
                     let _ = self.flush()?;
                     self.tick();
                     self.flush()?;
                     // roadlint: allow(discard) reason=\"best-effort prefetch\"
                     let _ = self.flush();
                     Ok(())
                 }}
             }}"
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_fallible_statement_is_a_finding() {
        let f = run(&format!(
            "// roadlint: serving-path\n{HELPERS}
             impl S {{ fn f(&self) {{ self.flush(); }} }}"
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("S::flush"), "{f:?}");
    }

    #[test]
    fn statement_final_ok_is_a_finding_but_bound_ok_is_not() {
        let f = run(&format!(
            "// roadlint: serving-path\n{HELPERS}
             impl S {{
                 fn f(&self) {{ self.flush().ok(); }}
                 fn g(&self) -> Option<()> {{ let v = self.flush().ok(); v }}
             }}"
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".ok()"));
    }

    #[test]
    fn unmarked_files_and_test_mods_are_exempt() {
        let f = run(&format!(
            "{HELPERS}
             impl S {{ fn f(&self) {{ let _ = self.flush(); }} }}
             #[cfg(test)]
             mod tests {{ fn t() {{ let _ = s.flush(); }} }}"
        ));
        assert!(f.is_empty(), "{f:?}");
    }
}
