//! Hand-rolled JSON rendering of an [`Analysis`] for the CI artifact
//! (`roadlint --json`). No serde: the report is five flat arrays of
//! strings and integers, not worth a dependency the container may not
//! have.

use crate::Analysis;
use std::fmt::Write;

/// Renders the full machine-readable report.
pub fn render(a: &Analysis) -> String {
    let mut s = String::with_capacity(4096);
    s.push('{');
    let _ = write!(s, "\"files_scanned\":{},", a.files_scanned);
    s.push_str("\"findings\":[");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.message)
        );
    }
    s.push_str("],\"lock_graph\":{\"classes\":[");
    for (i, c) in a.graph.classes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&esc(c));
    }
    s.push_str("],\"edges\":[");
    for (i, ((from, to), site)) in a.graph.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"from\":{},\"to\":{},\"file\":{},\"line\":{},\"function\":{}}}",
            esc(from),
            esc(to),
            esc(&site.file),
            site.line,
            esc(&site.function)
        );
    }
    s.push_str("]},\"taint\":[");
    for (i, v) in a.taint.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"source\":{},\"sanitizer\":{},\"sink\":{}}}",
            esc(&v.source),
            esc(&v.sanitizer),
            esc(&v.sink)
        );
    }
    s.push_str("],\"order\":[");
    for (i, v) in a.order.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"source\":{},\"sanitizer\":{},\"sink\":{}}}",
            esc(&v.source),
            esc(&v.sanitizer),
            esc(&v.sink)
        );
    }
    s.push_str("]}");
    s
}

/// JSON string literal with the mandatory escapes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_sources;

    #[test]
    fn report_shape_and_escaping() {
        let a =
            analyze_sources([("t.rs", "// roadlint: serving-path\nfn f(&self) { x.unwrap(); }")]);
        let j = render(&a);
        assert!(j.starts_with("{\"files_scanned\":1,"));
        assert!(j.contains("\"rule\":\"panic\""));
        assert!(j.contains("\"taint\":[]"));
        assert!(j.ends_with("\"order\":[]}"));
        assert_eq!(esc("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
