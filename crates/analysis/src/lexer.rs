//! A minimal token-level Rust lexer — just enough structure for the
//! roadlint rules: identifiers, punctuation, literals and lifetimes, with
//! comments (line, doc and block) captured separately so marker comments
//! can be matched against token positions by line number.
//!
//! This is deliberately not a parser. Every rule in this crate is written
//! against token *shapes* (`.unwrap(`, `Ordering :: Relaxed`,
//! `ident [`), which keeps the pass dependency-free and fast, at the cost
//! of the approximations documented on each rule.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident(String),
    /// A single punctuation character (`::` is two consecutive `:`).
    Punct(char),
    /// Any literal: string, raw string, byte string, char or number.
    Lit,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// A comment (line, doc or block) with its starting line. Line and doc
/// comments keep their text so marker directives can be parsed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs consume
/// to end of input rather than erroring: roadlint runs on code that
/// already compiles, so recovery precision does not matter.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Byte-level helpers keep the scanner allocation-light.
    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_';
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                let at = line;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: at,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let at = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&b[start..i]).into_owned(),
                    line: at,
                });
            }
            b'"' => {
                let at = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token { tok: Tok::Lit, line: at });
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                let at = line;
                // Skip the prefix (r, br, rb…) up to the hashes/quote.
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                'raw: while i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if b[i] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                out.tokens.push(Token { tok: Tok::Lit, line: at });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                // Byte string: reuse the plain-string scan from the quote.
                let at = line;
                i += 2;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token { tok: Tok::Lit, line: at });
            }
            b'\'' => {
                // Lifetime or char literal. `'a` / `'static` are lifetimes
                // (ident run not closed by `'`); everything else is a char.
                let at = line;
                let mut j = i + 1;
                if j < b.len() && is_ident_start(b[j]) && b[j] != b'\\' {
                    let mut k = j;
                    while k < b.len() && is_ident(b[k]) {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'\'' {
                        // 'x' — a char literal.
                        out.tokens.push(Token { tok: Tok::Lit, line: at });
                        i = k + 1;
                    } else {
                        out.tokens.push(Token { tok: Tok::Lifetime, line: at });
                        i = k;
                    }
                } else {
                    // Escaped or symbolic char literal: '\n', '\'', '('.
                    if j < b.len() && b[j] == b'\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Lit, line: at });
                    i = (j + 1).min(b.len());
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let at = line;
                i += 1;
                while i < b.len() {
                    if is_ident(b[i]) {
                        i += 1;
                    } else if b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        // Decimal point, but not the `..` of a range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { tok: Tok::Lit, line: at });
            }
            c => {
                out.tokens.push(Token { tok: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts a raw (or raw byte) string: `r"`, `r#`,
/// `br"`, `br#`, `rb…` — an `r`/`b` run followed by `#`s or a quote.
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        saw_r |= b[j] == b'r';
        j += 1;
    }
    if !saw_r {
        return false;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.ident().map(str::to_owned)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let l = lex("let x = a.unwrap();\nlet y = 2;");
        assert_eq!(idents("let x = a.unwrap();"), ["let", "x", "a", "unwrap"]);
        let unwrap = l.tokens.iter().find(|t| t.ident() == Some("unwrap")).cloned();
        assert_eq!(unwrap.map(|t| t.line), Some(1));
        let y = l.tokens.iter().find(|t| t.ident() == Some("y")).cloned();
        assert_eq!(y.map(|t| t.line), Some(2));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// roadlint: serving-path\nfn f() {}\n/* block\nspan */ fn g() {}");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("serving-path"));
        assert_eq!(l.comments[1].line, 3);
        // The `fn g` after the block comment lands on line 4.
        let g = l.tokens.iter().find(|t| t.ident() == Some("g")).cloned();
        assert_eq!(g.map(|t| t.line), Some(4));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        // `.unwrap(` inside a string must not look like a call.
        assert_eq!(idents(r#"let s = ".unwrap(";"#), ["let", "s"]);
        assert_eq!(idents(r##"let s = r#"panic!("x")"#;"##), ["let", "s"]);
        assert_eq!(idents("let c = '\\'';"), ["let", "c"]);
        assert_eq!(idents("let c = 'x'; let b = b'y';"), ["let", "c", "let", "b", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = l.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_absorb_suffixes_and_ranges_split() {
        let l = lex("let r = 0..10; let f = 1.5f64; let h = 0xffu32;");
        // `0..10` must produce two dots between two literals.
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        let lits = l.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lits, 4);
    }
}
