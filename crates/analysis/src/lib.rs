//! roadlint — project-specific static analysis for the ROAD workspace.
//!
//! A dependency-free, token-level pass proving the invariants of the
//! serving path (see ARCHITECTURE.md §"Invariants and static analysis"):
//!
//! 1. **panic** — `serving-path` files contain no `.unwrap()` /
//!    `.expect()`, no panicking macros and no slice indexing;
//! 2. **lock-order** — the acquired-while-held graph over the named lock
//!    classes is a DAG, with cross-crate footprints computed on the
//!    workspace call graph;
//! 3. **hot-alloc** — `hot-path` fences contain no fresh heap
//!    allocations;
//! 4. **atomic-ordering** — every `Ordering::Relaxed` carries a
//!    `relaxed-ok` justification and bare `Ordering::SeqCst` is flagged;
//! 5. **decode-bound** — `with_capacity` in `decode-fn` functions is
//!    dominated by a bound/error check on the decoded count;
//! 6. **taint** — integers decoded from untrusted bytes must flow
//!    through a sanitizer before sizing an allocation, indexing a slice
//!    or bounding a loop ([`dataflow`], interprocedural);
//! 7. **guard-io** — no guard other than the buffer pool's own stripe
//!    is held across `PageStore` IO ([`lockgraph`]);
//! 8. **swallowed-error** — `Result`s on the serving/decode path are
//!    not silently discarded ([`discard`]);
//! 9. **unordered-iter** — iteration over hash-ordered containers must
//!    not reach byte output or order-sensitive commits unsorted
//!    ([`order`], interprocedural);
//! 10. **float-order** — float reductions over unordered domains are
//!     flagged: reassociation breaks byte-identical builds ([`order`]);
//! 11. **sched-order** — `thread::scope` fan-outs must deposit results
//!     into index-addressed slots or join in spawn order, never consume
//!     in thread-completion order ([`order`]).
//!
//! Rules 6–11 resolve calls across files and crates via [`callgraph`].
//! The pass walks every `.rs` file of the workspace (skipping `target`,
//! `vendor`, test trees, fixtures, dot-directories and anything listed in
//! a root `roadlint.toml` `skip = […]` entry) and exits non-zero on any
//! finding, which makes it usable as a hard CI gate; `--json` emits a
//! machine-readable report for CI artifacts.

pub mod callgraph;
pub mod dataflow;
pub mod discard;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod markers;
pub mod order;
pub mod rules;
pub mod syntax;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation (or marker-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line; 0 for whole-file findings.
    pub line: u32,
    /// Stable rule identifier (`panic`, `lock-order`, `hot-alloc`,
    /// `atomic-ordering`, `decode-bound`, `taint`, `guard-io`,
    /// `swallowed-error`, `unordered-iter`, `float-order`, `sched-order`,
    /// `marker`).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// One parsed file, shared by every pass: lexed tokens, markers, function
/// spans and unit-test ranges.
#[derive(Debug)]
pub struct FileData {
    pub path: String,
    pub lexed: lexer::Lexed,
    pub markers: markers::Markers,
    pub fns: Vec<syntax::FnSpan>,
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileData {
    pub fn new(path: &str, src: &str) -> FileData {
        let lexed = lexer::lex(src);
        let markers = markers::parse(path, &lexed.comments);
        let fns = syntax::functions(&lexed.tokens);
        let test_ranges = syntax::test_mod_ranges(&lexed.tokens);
        FileData { path: path.to_owned(), lexed, markers, fns, test_ranges }
    }
}

/// The result of analysing a set of sources.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// The acquired-while-held lock graph (for `--graph` / `--dag`).
    pub graph: lockgraph::LockGraph,
    /// The taint verdict table: every sanitized flow that reached a sink
    /// (for `--taint`).
    pub taint: Vec<dataflow::TaintVerdict>,
    /// The order verdict table: every sanitized unordered flow that
    /// reached a byte-output or commit sink, plus the clean fan-out
    /// shapes (for `--order` / `--order-dag`).
    pub order: Vec<order::OrderVerdict>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Analyses in-memory `(path, source)` pairs — the composition point the
/// workspace walk and the fixture tests share.
pub fn analyze_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Analysis {
    let files: Vec<FileData> =
        sources.into_iter().map(|(path, src)| FileData::new(path, src)).collect();
    let cg = callgraph::CallGraph::build(&files);
    let mut analysis = Analysis { files_scanned: files.len(), ..Default::default() };
    let mut locks = Vec::new();
    for (fi, fd) in files.iter().enumerate() {
        analysis.findings.extend(rules::check_file(fd));
        locks.push(lockgraph::extract_file_locks(fd, fi, &cg, &mut analysis.findings));
    }
    let (graph, order_findings) = lockgraph::check(&locks, &cg);
    analysis.graph = graph;
    analysis.findings.extend(order_findings);
    let (taint_findings, verdicts) = dataflow::check(&files, &cg);
    analysis.findings.extend(taint_findings);
    analysis.taint = verdicts;
    analysis.findings.extend(discard::check(&files, &cg));
    let (order_rule_findings, order_verdicts) = order::check(&files, &cg);
    analysis.findings.extend(order_rule_findings);
    analysis.order = order_verdicts;
    analysis.findings.sort();
    analysis.findings.dedup();
    analysis
}

/// Directory names never descended into: build output, vendored
/// third-party code, test trees (unit-test modules inside live files are
/// excluded separately, by token range) and the lint's own fixtures.
/// Dot-directories (`.git`, editor caches, stray `.cargo` homes) are
/// skipped wholesale by [`workspace_files`]; a root `roadlint.toml` can
/// extend this list so a stray generated file cannot flip CI.
const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", "examples"];

/// Extra skip names from a `roadlint.toml` at the workspace root, parsed
/// by hand (the lint stays dependency-free): the `skip = ["…", …]` entry,
/// ignoring `#` comments. Anything else in the file is ignored.
fn config_skips(root: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(root.join("roadlint.toml")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        let Some(rest) = line.strip_prefix("skip") else { continue };
        let Some(list) = rest.trim_start().strip_prefix('=') else { continue };
        for piece in list.trim().trim_start_matches('[').trim_end_matches(']').split(',') {
            let name = piece.trim().trim_matches('"');
            if !name.is_empty() {
                out.push(name.to_owned());
            }
        }
    }
    out
}

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic output. Skips the built-in skip list, every dot-directory, and
/// any directory named by the root `roadlint.toml` skip list — in any
/// position of the tree, so a `crates/foo/target/` from a nested cargo
/// invocation is as invisible as the top-level one.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let extra = config_skips(root);
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                let skipped = name.starts_with('.')
                    || SKIP_DIRS.contains(&name.as_ref())
                    || extra.iter().any(|s| s == name.as_ref());
                if !skipped {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Walks the workspace at `root` and runs every rule.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
        sources.push((rel, src));
    }
    Ok(analyze_sources(sources.iter().map(|(p, s)| (p.as_str(), s.as_str()))))
}

#[cfg(test)]
mod walker_tests {
    use super::*;

    /// A throwaway directory tree; removed on drop so a failing assert
    /// cannot leak state into later runs.
    struct TempTree(PathBuf);

    impl TempTree {
        fn new(tag: &str) -> TempTree {
            let dir =
                std::env::temp_dir().join(format!("roadlint-walk-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempTree(dir)
        }

        fn write(&self, rel: &str, body: &str) {
            let p = self.0.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, body).unwrap();
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn rels(root: &Path) -> Vec<String> {
        workspace_files(root)
            .unwrap()
            .into_iter()
            .map(|p| p.strip_prefix(root).unwrap().to_string_lossy().replace('\\', "/").to_string())
            .collect()
    }

    #[test]
    fn generated_and_dot_dirs_cannot_flip_the_scan() {
        let t = TempTree::new("gen");
        t.write("src/lib.rs", "fn ok() {}");
        // Stray build output — top-level and nested — plus dot-dirs:
        // none of these may reach the analysis, at any depth.
        t.write("target/debug/build/junk.rs", "fn junk() { panic!() }");
        t.write("crates/foo/target/gen.rs", "fn gen() { panic!() }");
        t.write(".cargo/registry/dep.rs", "fn dep() { panic!() }");
        t.write(".git/hooks/hook.rs", "fn hook() {}");
        assert_eq!(rels(&t.0), vec!["src/lib.rs"]);
    }

    #[test]
    fn roadlint_toml_skip_list_is_honored() {
        let t = TempTree::new("toml");
        t.write("src/lib.rs", "fn ok() {}");
        t.write("generated/schema.rs", "fn gen() { panic!() }");
        t.write("proto/out/wire.rs", "fn wire() { panic!() }");
        assert_eq!(rels(&t.0).len(), 3, "without a config all three are scanned");
        t.write(
            "roadlint.toml",
            "# extra directories the walker must never descend into\nskip = [\"generated\", \"out\"] # per-tree\n",
        );
        assert_eq!(rels(&t.0), vec!["src/lib.rs"]);
    }
}
