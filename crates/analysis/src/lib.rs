//! roadlint — project-specific static analysis for the ROAD workspace.
//!
//! A dependency-free, token-level pass proving the invariants of the
//! serving path (see ARCHITECTURE.md §"Invariants and static analysis"):
//!
//! 1. **panic** — `serving-path` files contain no `.unwrap()` /
//!    `.expect()`, no panicking macros and no slice indexing;
//! 2. **lock-order** — the acquired-while-held graph over the named lock
//!    classes is a DAG, with cross-crate footprints computed on the
//!    workspace call graph;
//! 3. **hot-alloc** — `hot-path` fences contain no fresh heap
//!    allocations;
//! 4. **atomic-ordering** — every `Ordering::Relaxed` carries a
//!    `relaxed-ok` justification and bare `Ordering::SeqCst` is flagged;
//! 5. **decode-bound** — `with_capacity` in `decode-fn` functions is
//!    dominated by a bound/error check on the decoded count;
//! 6. **taint** — integers decoded from untrusted bytes must flow
//!    through a sanitizer before sizing an allocation, indexing a slice
//!    or bounding a loop ([`dataflow`], interprocedural);
//! 7. **guard-io** — no guard other than the buffer pool's own stripe
//!    is held across `PageStore` IO ([`lockgraph`]);
//! 8. **swallowed-error** — `Result`s on the serving/decode path are
//!    not silently discarded ([`discard`]).
//!
//! Rules 6–8 resolve calls across files and crates via [`callgraph`].
//! The pass walks every `.rs` file of the workspace (skipping `target`,
//! `vendor`, test trees and fixtures) and exits non-zero on any finding,
//! which makes it usable as a hard CI gate; `--json` emits a
//! machine-readable report for CI artifacts.

pub mod callgraph;
pub mod dataflow;
pub mod discard;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod markers;
pub mod rules;
pub mod syntax;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation (or marker-hygiene problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line; 0 for whole-file findings.
    pub line: u32,
    /// Stable rule identifier (`panic`, `lock-order`, `hot-alloc`,
    /// `atomic-ordering`, `decode-bound`, `taint`, `guard-io`,
    /// `swallowed-error`, `marker`).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// One parsed file, shared by every pass: lexed tokens, markers, function
/// spans and unit-test ranges.
#[derive(Debug)]
pub struct FileData {
    pub path: String,
    pub lexed: lexer::Lexed,
    pub markers: markers::Markers,
    pub fns: Vec<syntax::FnSpan>,
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileData {
    pub fn new(path: &str, src: &str) -> FileData {
        let lexed = lexer::lex(src);
        let markers = markers::parse(path, &lexed.comments);
        let fns = syntax::functions(&lexed.tokens);
        let test_ranges = syntax::test_mod_ranges(&lexed.tokens);
        FileData { path: path.to_owned(), lexed, markers, fns, test_ranges }
    }
}

/// The result of analysing a set of sources.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// The acquired-while-held lock graph (for `--graph` / `--dag`).
    pub graph: lockgraph::LockGraph,
    /// The taint verdict table: every sanitized flow that reached a sink
    /// (for `--taint`).
    pub taint: Vec<dataflow::TaintVerdict>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Analyses in-memory `(path, source)` pairs — the composition point the
/// workspace walk and the fixture tests share.
pub fn analyze_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Analysis {
    let files: Vec<FileData> =
        sources.into_iter().map(|(path, src)| FileData::new(path, src)).collect();
    let cg = callgraph::CallGraph::build(&files);
    let mut analysis = Analysis { files_scanned: files.len(), ..Default::default() };
    let mut locks = Vec::new();
    for (fi, fd) in files.iter().enumerate() {
        analysis.findings.extend(rules::check_file(fd));
        locks.push(lockgraph::extract_file_locks(fd, fi, &cg, &mut analysis.findings));
    }
    let (graph, order_findings) = lockgraph::check(&locks, &cg);
    analysis.graph = graph;
    analysis.findings.extend(order_findings);
    let (taint_findings, verdicts) = dataflow::check(&files, &cg);
    analysis.findings.extend(taint_findings);
    analysis.taint = verdicts;
    analysis.findings.extend(discard::check(&files, &cg));
    analysis.findings.sort();
    analysis.findings.dedup();
    analysis
}

/// Directory names never descended into: build output, vendored
/// third-party code, test trees (unit-test modules inside live files are
/// excluded separately, by token range) and the lint's own fixtures.
const SKIP_DIRS: &[&str] =
    &[".git", "target", "vendor", "tests", "benches", "fixtures", "examples"];

/// Collects every workspace `.rs` file under `root`, sorted for
/// deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Walks the workspace at `root` and runs every rule.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let files = workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().into_owned();
        sources.push((rel, src));
    }
    Ok(analyze_sources(sources.iter().map(|(p, s)| (p.as_str(), s.as_str()))))
}
