//! Rule 2: lock-order discipline across the serving path.
//!
//! The pass extracts every lock acquisition (`.lock()`, and zero-argument
//! `.read()` / `.write()` on `RwLock`-shaped receivers) from
//! `serving-path` files, classifies each site into a named lock class by
//! its receiver, and builds an **acquired-while-held** graph:
//!
//! * a guard bound by a `let` whose statement ends at the acquisition
//!   chain is considered held until the end of the function;
//! * an acquisition consumed mid-expression (`self.store.write()?.alloc()`)
//!   is *transient* — held only for the rest of its own statement;
//! * a call to a function that itself acquires locks (resolved by name
//!   across all serving-path files, to a fixpoint over the call graph)
//!   adds edges from every held class to everything the callee may
//!   acquire; a `let`-bound call to a function returning a `…Guard` type
//!   counts as acquiring those classes.
//!
//! Any cycle — including a self-edge, i.e. re-acquiring a held class —
//! fails the build. Transient guards deliberately do not propagate
//! through calls, and call-derived self-edges are dropped: both are
//! over-approximation escape valves for name-level call resolution; the
//! direct-acquisition edges that define the discipline are exact.

use crate::lexer::Token;
use crate::markers::Markers;
use crate::syntax::{self, FnSpan};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Receiver-identifier → lock-class table for this codebase. A site whose
/// receiver is not listed here can be classified manually with a
/// `lock(<class>)` marker on the same line; otherwise it is a finding.
const RECEIVER_CLASSES: &[(&str, &str)] = &[
    ("stripe", "stripe"),
    ("stripes", "stripe"),
    ("store", "store"),
    ("append", "append"),
    ("rnet_locks", "rnet-decode"),
    ("image", "image"),
    ("current", "publish"),
    ("shared", "publish"),
];

/// Method names that acquire a lock when called with zero arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Chain adapters that pass the guard through unchanged.
const GUARD_ADAPTERS: &[&str] = &["map_err", "unwrap_or_else", "expect", "unwrap", "ok_or"];

/// One body-ordered lock-relevant event inside a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// A direct acquisition. `held` means let-bound: the guard lives to
    /// the end of the brace block at `depth` that contains it.
    Acquire { class: String, held: bool, line: u32, depth: u32 },
    /// A call to (possibly) one of the scanned functions, by name.
    Call { name: String, let_bound: bool, line: u32, depth: u32 },
    /// A statement boundary (releases transient guards).
    StmtEnd,
    /// A `}` closed a block: guards let-bound deeper than `depth` (the
    /// enclosing depth) are dropped.
    BlockEnd { depth: u32 },
}

/// Lock events of one function.
#[derive(Debug, Clone)]
pub struct LockFn {
    pub name: String,
    pub guard_returning: bool,
    pub events: Vec<LockEvent>,
}

/// Lock summary of one serving-path file.
#[derive(Debug, Clone)]
pub struct FileLocks {
    pub file: String,
    pub fns: Vec<LockFn>,
}

/// Scanning context handed over from the per-file rules.
pub(crate) struct LockCtx<'a> {
    pub file: &'a str,
    pub tokens: &'a [Token],
    pub markers: &'a Markers,
    pub test_ranges: &'a [(usize, usize)],
}

/// An example acquisition site backing a graph edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub function: String,
}

/// The acquired-while-held graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub classes: BTreeSet<String>,
    /// `(held, acquired) -> example site` of the acquisition.
    pub edges: BTreeMap<(String, String), Site>,
}

/// Extracts the per-function lock events of one file (serving-path files
/// only; the caller gates on the marker). Unclassifiable acquisitions
/// are reported as findings.
pub(crate) fn extract_file_locks(
    ctx: &LockCtx,
    fns: &[FnSpan],
    findings: &mut Vec<Finding>,
) -> FileLocks {
    let toks = ctx.tokens;
    let mut out = FileLocks { file: ctx.file.to_owned(), fns: Vec::new() };
    for f in fns {
        let Some((body_start, body_end)) = f.body else { continue };
        if syntax::in_ranges(ctx.test_ranges, f.fn_idx) {
            continue;
        }
        let mut events = Vec::new();
        let mut depth = 0u32;
        let mut i = body_start + 1;
        while i < body_end {
            let t = &toks[i];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                if t.is_punct('{') {
                    depth += 1;
                }
                if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    events.push(LockEvent::BlockEnd { depth });
                }
                events.push(LockEvent::StmtEnd);
                i += 1;
                continue;
            }
            // Direct acquisition: `. lock ( )` with zero arguments.
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|m| LOCK_METHODS.contains(&m))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                let line = toks[i + 1].line;
                let class = ctx
                    .markers
                    .lock_class_on_line(line)
                    .map(str::to_owned)
                    .or_else(|| classify_receiver(toks, i));
                match class {
                    Some(class) => {
                        let held = chain_ends_statement(toks, i + 3, body_end)
                            && statement_is_let(toks, i, body_start);
                        events.push(LockEvent::Acquire { class, held, line, depth });
                    }
                    None => findings.push(Finding {
                        file: ctx.file.to_owned(),
                        line,
                        rule: "lock-order",
                        message: format!(
                            ".{}() acquisition with unrecognized receiver; name the field after its lock class or add a lock(<class>) marker",
                            toks[i + 1].ident().unwrap_or("lock")
                        ),
                    }),
                }
                i += 4;
                continue;
            }
            // Call: `name (` — resolution against scanned functions
            // happens in the graph builder.
            if let Some(name) = t.ident() {
                if toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !LOCK_METHODS.contains(&name)
                    && !(i > 0 && toks[i - 1].ident() == Some("fn"))
                {
                    let close = syntax::match_delim(toks, i + 1);
                    let let_bound = chain_ends_statement(toks, close, body_end)
                        && statement_is_let(toks, i, body_start);
                    events.push(LockEvent::Call {
                        name: name.to_owned(),
                        let_bound,
                        line: t.line,
                        depth,
                    });
                }
            }
            i += 1;
        }
        out.fns.push(LockFn { name: f.name.clone(), guard_returning: f.guard_returning, events });
    }
    out
}

/// Walks backwards from the `.` of an acquisition to classify its
/// receiver: skips `?` and balanced `(…)` / `[…]` groups, follows method
/// chains, and stops at the first identifier with a known class.
fn classify_receiver(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = &toks[j];
        if t.is_punct('?') || t.is_punct('.') {
            j = j.checked_sub(1)?;
        } else if t.is_punct(')') || t.is_punct(']') {
            let open = syntax::match_delim_back(toks, j);
            j = open.checked_sub(1)?;
        } else if let Some(name) = t.ident() {
            if let Some((_, class)) = RECEIVER_CLASSES.iter().find(|(r, _)| *r == name) {
                return Some((*class).to_owned());
            }
            // Part of a method chain (`x.get(i).lock()`)? Keep walking.
            if j >= 1 && toks[j - 1].is_punct('.') {
                j = j.checked_sub(2)?;
            } else {
                return None;
            }
        } else {
            return None;
        }
    }
}

/// From the closing delimiter of an acquisition/call at `close`, skips
/// guard-passing adapters (`.map_err(…)?` etc.) and reports whether the
/// chain ends its statement there (`;`).
fn chain_ends_statement(toks: &[Token], close: usize, body_end: usize) -> bool {
    let mut j = close + 1;
    while j < body_end {
        if toks[j].is_punct('?') {
            j += 1;
        } else if toks[j].is_punct('.')
            && toks.get(j + 1).and_then(|t| t.ident()).is_some_and(|m| GUARD_ADAPTERS.contains(&m))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            j = syntax::match_delim(toks, j + 2) + 1;
        } else {
            return toks[j].is_punct(';');
        }
    }
    false
}

/// True when the statement containing token `at` starts with `let`
/// (scanning back to the previous statement/block boundary).
fn statement_is_let(toks: &[Token], at: usize, body_start: usize) -> bool {
    let mut j = at;
    while j > body_start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.ident() == Some("let") {
            return true;
        }
    }
    false
}

/// Call-resolution table: may-acquire sets keyed by `(file, name)`, with
/// same-file-first lookup. Resolving a call by bare name across the
/// whole workspace lets hub names (`new`, `get`, `insert`) smear one
/// type's lock footprint over every other type's constructor; resolving
/// within the calling file first keeps the blast radius to genuine
/// same-name collisions inside one file, and only falls back to the
/// global union for names the file does not define.
struct MaySets {
    per_file: BTreeMap<(usize, String), BTreeSet<String>>,
    global: BTreeMap<String, BTreeSet<String>>,
}

impl MaySets {
    fn resolve(&self, fi: usize, name: &str) -> Option<&BTreeSet<String>> {
        self.per_file.get(&(fi, name.to_owned())).or_else(|| self.global.get(name))
    }
}

/// Builds the acquired-while-held graph from every serving-path file and
/// reports ordering violations (cycles, including self-edges).
pub fn check(files: &[FileLocks]) -> (LockGraph, Vec<Finding>) {
    // May-acquire sets, to a fixpoint over the name-resolved call graph.
    let mut may = MaySets { per_file: BTreeMap::new(), global: BTreeMap::new() };
    let mut guard_fns: BTreeSet<String> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.fns {
            let entry = may.per_file.entry((fi, f.name.clone())).or_default();
            for e in &f.events {
                if let LockEvent::Acquire { class, .. } = e {
                    entry.insert(class.clone());
                }
            }
            if f.guard_returning {
                guard_fns.insert(f.name.clone());
            }
        }
    }
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for f in &file.fns {
                let mut add = BTreeSet::new();
                for e in &f.events {
                    if let LockEvent::Call { name, .. } = e {
                        if let Some(s) = may.resolve(fi, name) {
                            add.extend(s.iter().cloned());
                        }
                    }
                }
                let entry = may.per_file.entry((fi, f.name.clone())).or_default();
                let before = entry.len();
                entry.extend(add);
                changed |= entry.len() != before;
            }
        }
        // Re-derive the global fallback unions from the per-file sets.
        let mut global: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for ((_, name), set) in &may.per_file {
            global.entry(name.clone()).or_default().extend(set.iter().cloned());
        }
        changed |= global != may.global;
        may.global = global;
        if !changed {
            break;
        }
    }

    // Edge emission by linear simulation of each function body.
    let mut graph = LockGraph::default();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.fns {
            let mut held: Vec<(String, u32)> = Vec::new();
            let mut transients: Vec<String> = Vec::new();
            for e in &f.events {
                match e {
                    LockEvent::StmtEnd => transients.clear(),
                    LockEvent::BlockEnd { depth } => {
                        held.retain(|(_, d)| *d <= *depth);
                    }
                    LockEvent::Acquire { class, held: h, line, depth } => {
                        graph.classes.insert(class.clone());
                        let site =
                            Site { file: file.file.clone(), line: *line, function: f.name.clone() };
                        for from in held.iter().map(|(c, _)| c).chain(transients.iter()) {
                            graph
                                .edges
                                .entry((from.clone(), class.clone()))
                                .or_insert_with(|| site.clone());
                        }
                        if *h {
                            held.push((class.clone(), *depth));
                        } else {
                            transients.push(class.clone());
                        }
                    }
                    LockEvent::Call { name, let_bound, line, depth } => {
                        let Some(acquired) = may.resolve(fi, name) else { continue };
                        if acquired.is_empty() {
                            continue;
                        }
                        graph.classes.extend(acquired.iter().cloned());
                        let site =
                            Site { file: file.file.clone(), line: *line, function: f.name.clone() };
                        for (from, _) in &held {
                            for to in acquired {
                                // Call-derived self-edges are dropped:
                                // name-level resolution is too coarse to
                                // prove a genuine re-acquisition.
                                if from != to {
                                    graph
                                        .edges
                                        .entry((from.clone(), to.clone()))
                                        .or_insert_with(|| site.clone());
                                }
                            }
                        }
                        if *let_bound && guard_fns.contains(name) {
                            held.extend(acquired.iter().map(|c| (c.clone(), *depth)));
                        }
                    }
                }
            }
        }
    }

    // Cycle detection (self-edges are cycles of length one).
    let mut findings = Vec::new();
    if let Some(cycle) = find_cycle(&graph) {
        let mut msg = String::from("lock-order cycle: ");
        for (k, (a, b)) in cycle.iter().enumerate() {
            let site = &graph.edges[&(a.clone(), b.clone())];
            if k > 0 {
                msg.push_str(", ");
            }
            msg.push_str(&format!(
                "{a} -> {b} (at {}:{} in {})",
                site.file, site.line, site.function
            ));
        }
        let (first_a, first_b) = &cycle[0];
        let site = graph.edges[&(first_a.clone(), first_b.clone())].clone();
        findings.push(Finding {
            file: site.file,
            line: site.line,
            rule: "lock-order",
            message: msg,
        });
    }
    (graph, findings)
}

/// Finds one cycle in the edge set, returned as its list of edges.
fn find_cycle(g: &LockGraph) -> Option<Vec<(String, String)>> {
    // Self-edges first: the clearest violation.
    for (a, b) in g.edges.keys() {
        if a == b {
            return Some(vec![(a.clone(), b.clone())]);
        }
    }
    let succ = |n: &String| -> Vec<String> {
        g.edges.keys().filter(|(a, _)| a == n).map(|(_, b)| b.clone()).collect()
    };
    // Iterative DFS with an explicit on-path stack.
    for start in &g.classes {
        let mut path: Vec<String> = vec![start.clone()];
        let mut iters: Vec<Vec<String>> = vec![succ(start)];
        let mut visited_from_start: BTreeSet<String> = BTreeSet::new();
        while let Some(frame) = iters.last_mut() {
            let Some(next) = frame.pop() else {
                path.pop();
                iters.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|n| n == &next) {
                // Cycle: path[pos..] + next closes it.
                let mut cycle = Vec::new();
                for w in path[pos..].windows(2) {
                    cycle.push((w[0].clone(), w[1].clone()));
                }
                cycle.push((path[path.len() - 1].clone(), next));
                return Some(cycle);
            }
            if visited_from_start.insert(next.clone()) {
                iters.push(succ(&next));
                path.push(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_file;

    fn locks(src: &str) -> FileLocks {
        check_file("t.rs", src).locks.expect("serving-path file")
    }

    #[test]
    fn held_vs_transient_classification() {
        let f = locks(
            "// roadlint: serving-path
            impl P {
                fn a(&self) {
                    let id = self.store.write().map_err(E)?.alloc();
                    let mut stripe = self.stripes[0].lock().map_err(E)?;
                    stripe.put(id);
                }
            }",
        );
        let ev = &f.fns[0].events;
        assert!(ev.contains(&LockEvent::Acquire {
            class: "store".into(),
            held: false,
            line: 4,
            depth: 0
        }));
        assert!(ev.contains(&LockEvent::Acquire {
            class: "stripe".into(),
            held: true,
            line: 5,
            depth: 0
        }));
    }

    #[test]
    fn block_scoped_guard_expires_at_block_end() {
        // Two sequential `{ let g = lock(); … }` blocks of the same class
        // must NOT look like a re-acquisition (paged.rs::append_record).
        let f = locks(
            "// roadlint: serving-path
            fn seq(&self) {
                let a = {
                    let cursor = self.append.lock();
                    cursor.page()
                };
                let b = {
                    let cursor = self.append.lock();
                    cursor.page()
                };
            }",
        );
        let (_, findings) = check(&[f]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn chained_receiver_resolves_through_adapters() {
        let f = locks(
            "// roadlint: serving-path
            fn a(&self) {
                let g = self.rnet_locks.get(idx).ok_or(Bad)?.lock().map_err(E)?;
                g.touch();
            }",
        );
        assert!(f.fns[0].events.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { class, held: true, .. } if class == "rnet-decode"
        )));
    }

    #[test]
    fn opposite_orders_cycle() {
        let f = locks(
            "// roadlint: serving-path
            impl P {
                fn ab(&self) {
                    let a = self.append.lock();
                    let b = self.store.write();
                }
                fn ba(&self) {
                    let b = self.store.write();
                    let a = self.append.lock();
                }
            }",
        );
        let (graph, findings) = check(&[f]);
        assert!(graph.edges.contains_key(&("append".into(), "store".into())));
        assert!(graph.edges.contains_key(&("store".into(), "append".into())));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn consistent_order_is_clean_and_call_edges_propagate() {
        let f = locks(
            "// roadlint: serving-path
            impl P {
                fn low(&self) {
                    let s = self.store.write();
                }
                fn high(&self) {
                    let g = self.stripes[0].lock();
                    self.low();
                }
            }",
        );
        let (graph, findings) = check(&[f]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph.edges.contains_key(&("stripe".into(), "store".into())));
    }

    #[test]
    fn reacquiring_a_held_class_is_a_self_cycle() {
        let f = locks(
            "// roadlint: serving-path
            fn double(&self) {
                let a = self.stripes[0].lock();
                let b = self.stripes[1].lock();
            }",
        );
        let (_, findings) = check(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("stripe -> stripe"));
    }

    #[test]
    fn unclassified_receiver_is_a_finding_unless_marked() {
        let bad = check_file(
            "t.rs",
            "// roadlint: serving-path
            fn f(&self) { let g = self.mystery.lock(); }",
        );
        assert!(bad.findings.iter().any(|f| f.rule == "lock-order"));
        let ok = check_file(
            "t.rs",
            "// roadlint: serving-path
            fn f(&self) {
                let g = self.mystery.lock(); // roadlint: lock(mystery)
            }",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }
}
