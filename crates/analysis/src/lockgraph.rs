//! Rules 2 and 7: lock-order discipline and guard-across-IO, on the
//! workspace call graph.
//!
//! The pass extracts every lock acquisition (`.lock()`, and zero-argument
//! `.read()` / `.write()` on `RwLock`-shaped receivers) from every
//! workspace file, classifies each site into a named lock class by its
//! receiver, and builds an **acquired-while-held** graph:
//!
//! * a guard bound by a `let` whose statement ends at the acquisition
//!   chain is considered held until the end of the brace block containing
//!   it;
//! * an acquisition consumed mid-expression (`self.store.write()?.alloc()`)
//!   is *transient* — held only for the rest of its own statement;
//! * a call site is resolved through [`CallGraph::resolve`] (typed
//!   receiver → same file → workspace union), and **may-acquire sets**
//!   are propagated over the resolved edges to a fixpoint — so the
//!   cross-crate footprint core::paged → storage::striped →
//!   storage::store is computed, not hand-tabulated. A `let`-bound call
//!   to a function returning a `…Guard` type counts as acquiring the
//!   callee's classes.
//!
//! Extraction runs on all files (callees outside `serving-path` files
//! still contribute footprints); edge emission and findings are gated to
//! `serving-path` files. Any cycle — including a self-edge, i.e.
//! re-acquiring a held class — fails the build. Transient guards
//! deliberately do not propagate through calls, and call-derived
//! self-edges are dropped: both are over-approximation escape valves;
//! the direct-acquisition edges that define the discipline are exact.
//!
//! **Guard-across-IO** (rule 7): `PageStore` IO — acquiring the `store`
//! class, or calling anything whose may-set contains it — while a guard
//! of any class other than `stripe`/`store` is held is a finding: page
//! faults can block for a disk round-trip, and only the buffer pool's
//! own stripe is designed to be held across one (the documented
//! stripe→store order). Escape:
//! `// roadlint: allow(io-under-lock) reason="…"`.

use crate::callgraph::{self, CallGraph, FnId};
use crate::lexer::Token;
use crate::markers::Marker;
use crate::syntax;
use crate::{FileData, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Receiver-identifier → lock-class table for this codebase. A site whose
/// receiver is not listed here can be classified manually with a
/// `lock(<class>)` marker on the same line; otherwise it is a finding.
const RECEIVER_CLASSES: &[(&str, &str)] = &[
    ("stripe", "stripe"),
    ("stripes", "stripe"),
    ("store", "store"),
    ("append", "append"),
    ("rnet_locks", "rnet-decode"),
    ("image", "image"),
    ("current", "publish"),
    ("shared", "publish"),
];

/// Method names that acquire a lock when called with zero arguments.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Chain adapters that pass the guard through unchanged.
const GUARD_ADAPTERS: &[&str] = &["map_err", "unwrap_or_else", "expect", "unwrap", "ok_or"];

/// The lock class whose acquisition IS PageStore IO.
const IO_CLASS: &str = "store";

/// Classes a guard may legitimately belong to while PageStore IO runs:
/// the buffer pool's own stripe (the documented stripe→store design) and
/// the store itself.
const IO_SAFE_HELD: &[&str] = &["stripe", "store"];

/// One body-ordered lock-relevant event inside a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// A direct acquisition. `held` means let-bound: the guard lives to
    /// the end of the brace block at `depth` that contains it.
    Acquire { class: String, held: bool, line: u32, depth: u32, io_escape: bool },
    /// A call, resolved against the workspace call graph. `callees` is
    /// the broad (over-approximating) resolution used for may-acquire
    /// edges; `io_callees` is the typed-only resolution the guard-io
    /// rule trusts — a `Vec::insert` must not inherit
    /// `BPlusTree::insert`'s IO footprint.
    Call {
        callees: Vec<FnId>,
        io_callees: Vec<FnId>,
        let_bound: bool,
        line: u32,
        depth: u32,
        io_escape: bool,
    },
    /// A statement boundary (releases transient guards).
    StmtEnd,
    /// A `}` closed a block: guards let-bound deeper than `depth` (the
    /// enclosing depth) are dropped.
    BlockEnd { depth: u32 },
}

/// Lock events of one function.
#[derive(Debug, Clone)]
pub struct LockFn {
    pub id: FnId,
    pub events: Vec<LockEvent>,
}

/// Lock summary of one file. `serving` gates edge emission and findings;
/// non-serving files still contribute may-acquire footprints.
#[derive(Debug, Clone)]
pub struct FileLocks {
    pub file: String,
    pub serving: bool,
    pub fns: Vec<LockFn>,
}

/// An example acquisition site backing a graph edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub function: String,
}

/// The acquired-while-held graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub classes: BTreeSet<String>,
    /// `(held, acquired) -> example site` of the acquisition.
    pub edges: BTreeMap<(String, String), Site>,
}

/// Extracts the per-function lock events of one file. Unclassifiable
/// acquisitions are findings in `serving-path` files only.
pub fn extract_file_locks(
    fd: &FileData,
    fi: usize,
    cg: &CallGraph,
    findings: &mut Vec<Finding>,
) -> FileLocks {
    let toks = &fd.lexed.tokens;
    let serving = fd.markers.serving_path();
    let escaped = |line: u32| {
        fd.markers.has_on_line(&Marker::AllowIoUnderLock, line)
            || (line > 0 && fd.markers.has_on_line(&Marker::AllowIoUnderLock, line - 1))
    };
    let mut out = FileLocks { file: fd.path.clone(), serving, fns: Vec::new() };
    for &fid in cg.fns_in_file(fi) {
        let info = &cg.fns[fid];
        if info.in_test_mod {
            continue;
        }
        let Some((body_start, body_end)) = info.body else { continue };
        let mut events = Vec::new();
        let mut depth = 0u32;
        let mut i = body_start + 1;
        while i < body_end {
            let t = &toks[i];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                if t.is_punct('{') {
                    depth += 1;
                }
                if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    events.push(LockEvent::BlockEnd { depth });
                }
                events.push(LockEvent::StmtEnd);
                i += 1;
                continue;
            }
            // Direct acquisition: `. lock ( )` with zero arguments.
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|m| LOCK_METHODS.contains(&m))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            {
                let line = toks[i + 1].line;
                let class = fd
                    .markers
                    .lock_class_on_line(line)
                    .map(str::to_owned)
                    .or_else(|| classify_receiver(toks, i));
                match class {
                    Some(class) => {
                        let held = chain_ends_statement(toks, i + 3, body_end)
                            && statement_is_let(toks, i, body_start);
                        events.push(LockEvent::Acquire {
                            class,
                            held,
                            line,
                            depth,
                            io_escape: escaped(line),
                        });
                    }
                    None if serving => findings.push(Finding {
                        file: fd.path.clone(),
                        line,
                        rule: "lock-order",
                        message: format!(
                            ".{}() acquisition with unrecognized receiver; name the field after its lock class or add a lock(<class>) marker",
                            toks[i + 1].ident().unwrap_or("lock")
                        ),
                    }),
                    None => {}
                }
                i += 4;
                continue;
            }
            // Call: resolved through the workspace call graph.
            if let Some(site) = callgraph::call_at(toks, i) {
                if !LOCK_METHODS.contains(&site.name.as_str()) {
                    let callees = cg.resolve(fid, &site);
                    if !callees.is_empty() {
                        let io_callees = cg.resolve_exact(fid, &site);
                        let close = syntax::match_delim(toks, site.args_open);
                        let let_bound = chain_ends_statement(toks, close, body_end)
                            && statement_is_let(toks, i, body_start);
                        events.push(LockEvent::Call {
                            callees,
                            io_callees,
                            let_bound,
                            line: t.line,
                            depth,
                            io_escape: escaped(t.line),
                        });
                    }
                }
            }
            i += 1;
        }
        out.fns.push(LockFn { id: fid, events });
    }
    out
}

/// Walks backwards from the `.` of an acquisition to classify its
/// receiver: skips `?` and balanced `(…)` / `[…]` groups, follows method
/// chains, and stops at the first identifier with a known class.
fn classify_receiver(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = &toks[j];
        if t.is_punct('?') || t.is_punct('.') {
            j = j.checked_sub(1)?;
        } else if t.is_punct(')') || t.is_punct(']') {
            let open = syntax::match_delim_back(toks, j);
            j = open.checked_sub(1)?;
        } else if let Some(name) = t.ident() {
            if let Some((_, class)) = RECEIVER_CLASSES.iter().find(|(r, _)| *r == name) {
                return Some((*class).to_owned());
            }
            // Part of a method chain (`x.get(i).lock()`)? Keep walking.
            if j >= 1 && toks[j - 1].is_punct('.') {
                j = j.checked_sub(2)?;
            } else {
                return None;
            }
        } else {
            return None;
        }
    }
}

/// From the closing delimiter of an acquisition/call at `close`, skips
/// guard-passing adapters (`.map_err(…)?` etc.) and reports whether the
/// chain ends its statement there (`;`).
fn chain_ends_statement(toks: &[Token], close: usize, body_end: usize) -> bool {
    let mut j = close + 1;
    while j < body_end {
        if toks[j].is_punct('?') {
            j += 1;
        } else if toks[j].is_punct('.')
            && toks.get(j + 1).and_then(|t| t.ident()).is_some_and(|m| GUARD_ADAPTERS.contains(&m))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            j = syntax::match_delim(toks, j + 2) + 1;
        } else {
            return toks[j].is_punct(';');
        }
    }
    false
}

/// True when the statement containing token `at` starts with `let`
/// (scanning back to the previous statement/block boundary).
fn statement_is_let(toks: &[Token], at: usize, body_start: usize) -> bool {
    let mut j = at;
    while j > body_start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.ident() == Some("let") {
            return true;
        }
    }
    false
}

/// Builds the acquired-while-held graph from every file's lock events and
/// reports ordering violations (cycles, including self-edges) and
/// guard-across-IO sites in serving files.
pub fn check(locks: &[FileLocks], cg: &CallGraph) -> (LockGraph, Vec<Finding>) {
    // May-acquire sets per FnId, to a fixpoint over the resolved call
    // graph.
    let mut may: Vec<BTreeSet<String>> = vec![BTreeSet::new(); cg.fns.len()];
    for file in locks {
        for f in &file.fns {
            for e in &f.events {
                if let LockEvent::Acquire { class, .. } = e {
                    may[f.id].insert(class.clone());
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for file in locks {
            for f in &file.fns {
                let mut add = BTreeSet::new();
                for e in &f.events {
                    if let LockEvent::Call { callees, .. } = e {
                        for &c in callees {
                            add.extend(may[c].iter().cloned());
                        }
                    }
                }
                let before = may[f.id].len();
                may[f.id].extend(add);
                changed |= may[f.id].len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // May-do-IO per FnId, propagated only over the *exact* (typed)
    // resolution — the guard-io rule must not attribute a `Vec::insert`
    // to a same-named workspace fn the way the broad edges above
    // deliberately do.
    let mut may_io: Vec<bool> = vec![false; cg.fns.len()];
    for file in locks {
        for f in &file.fns {
            for e in &f.events {
                if let LockEvent::Acquire { class, .. } = e {
                    if class == IO_CLASS {
                        may_io[f.id] = true;
                    }
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for file in locks {
            for f in &file.fns {
                if may_io[f.id] {
                    continue;
                }
                for e in &f.events {
                    if let LockEvent::Call { io_callees, .. } = e {
                        if io_callees.iter().any(|&c| may_io[c]) {
                            may_io[f.id] = true;
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge emission by linear simulation of each serving-file function.
    let mut graph = LockGraph::default();
    let mut findings = Vec::new();
    for file in locks {
        if !file.serving {
            continue;
        }
        for f in &file.fns {
            let fname = cg.qualified(f.id);
            let mut held: Vec<(String, u32)> = Vec::new();
            let mut transients: Vec<String> = Vec::new();
            let mut io_finding = |held: &[(String, u32)], line: u32, what: &str| {
                if let Some((from, _)) =
                    held.iter().find(|(c, _)| !IO_SAFE_HELD.contains(&c.as_str()))
                {
                    findings.push(Finding {
                        file: file.file.clone(),
                        line,
                        rule: "guard-io",
                        message: format!(
                            "`{from}` guard held across PageStore IO ({what} in {fname}); \
                             release it first or mark `// roadlint: allow(io-under-lock) reason=\"…\"`"
                        ),
                    });
                }
            };
            for e in &f.events {
                match e {
                    LockEvent::StmtEnd => transients.clear(),
                    LockEvent::BlockEnd { depth } => {
                        held.retain(|(_, d)| *d <= *depth);
                    }
                    LockEvent::Acquire { class, held: h, line, depth, io_escape } => {
                        graph.classes.insert(class.clone());
                        let site =
                            Site { file: file.file.clone(), line: *line, function: fname.clone() };
                        for from in held.iter().map(|(c, _)| c).chain(transients.iter()) {
                            graph
                                .edges
                                .entry((from.clone(), class.clone()))
                                .or_insert_with(|| site.clone());
                        }
                        if class == IO_CLASS && !io_escape {
                            io_finding(&held, *line, &format!("acquiring `{IO_CLASS}`"));
                        }
                        if *h {
                            held.push((class.clone(), *depth));
                        } else {
                            transients.push(class.clone());
                        }
                    }
                    LockEvent::Call { callees, io_callees, let_bound, line, depth, io_escape } => {
                        let mut acquired = BTreeSet::new();
                        for &c in callees {
                            acquired.extend(may[c].iter().cloned());
                        }
                        if acquired.is_empty() {
                            continue;
                        }
                        graph.classes.extend(acquired.iter().cloned());
                        let site =
                            Site { file: file.file.clone(), line: *line, function: fname.clone() };
                        for (from, _) in &held {
                            for to in &acquired {
                                // Call-derived self-edges are dropped:
                                // name-level resolution is too coarse to
                                // prove a genuine re-acquisition.
                                if from != to {
                                    graph
                                        .edges
                                        .entry((from.clone(), to.clone()))
                                        .or_insert_with(|| site.clone());
                                }
                            }
                        }
                        if io_callees.iter().any(|&c| may_io[c]) && !io_escape {
                            let callee = io_callees
                                .iter()
                                .find(|&&c| may_io[c])
                                .map(|&c| cg.qualified(c))
                                .unwrap_or_default();
                            io_finding(&held, *line, &format!("call to {callee}"));
                        }
                        if *let_bound && callees.iter().any(|&c| cg.fns[c].guard_returning) {
                            held.extend(acquired.iter().map(|c| (c.clone(), *depth)));
                        }
                    }
                }
            }
        }
    }

    // Cycle detection (self-edges are cycles of length one).
    if let Some(cycle) = find_cycle(&graph) {
        let mut msg = String::from("lock-order cycle: ");
        for (k, (a, b)) in cycle.iter().enumerate() {
            let site = &graph.edges[&(a.clone(), b.clone())];
            if k > 0 {
                msg.push_str(", ");
            }
            msg.push_str(&format!(
                "{a} -> {b} (at {}:{} in {})",
                site.file, site.line, site.function
            ));
        }
        let (first_a, first_b) = &cycle[0];
        let site = graph.edges[&(first_a.clone(), first_b.clone())].clone();
        findings.push(Finding {
            file: site.file,
            line: site.line,
            rule: "lock-order",
            message: msg,
        });
    }
    (graph, findings)
}

/// Finds one cycle in the edge set, returned as its list of edges.
fn find_cycle(g: &LockGraph) -> Option<Vec<(String, String)>> {
    // Self-edges first: the clearest violation.
    for (a, b) in g.edges.keys() {
        if a == b {
            return Some(vec![(a.clone(), b.clone())]);
        }
    }
    let succ = |n: &String| -> Vec<String> {
        g.edges.keys().filter(|(a, _)| a == n).map(|(_, b)| b.clone()).collect()
    };
    // Iterative DFS with an explicit on-path stack.
    for start in &g.classes {
        let mut path: Vec<String> = vec![start.clone()];
        let mut iters: Vec<Vec<String>> = vec![succ(start)];
        let mut visited_from_start: BTreeSet<String> = BTreeSet::new();
        while let Some(frame) = iters.last_mut() {
            let Some(next) = frame.pop() else {
                path.pop();
                iters.pop();
                continue;
            };
            if let Some(pos) = path.iter().position(|n| n == &next) {
                // Cycle: path[pos..] + next closes it.
                let mut cycle = Vec::new();
                for w in path[pos..].windows(2) {
                    cycle.push((w[0].clone(), w[1].clone()));
                }
                cycle.push((path[path.len() - 1].clone(), next));
                return Some(cycle);
            }
            if visited_from_start.insert(next.clone()) {
                iters.push(succ(&next));
                path.push(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(srcs: &[(&str, &str)]) -> (Vec<FileLocks>, CallGraph, Vec<Finding>) {
        let files: Vec<FileData> = srcs.iter().map(|(p, s)| FileData::new(p, s)).collect();
        let cg = CallGraph::build(&files);
        let mut findings = Vec::new();
        let locks = files
            .iter()
            .enumerate()
            .map(|(fi, fd)| extract_file_locks(fd, fi, &cg, &mut findings))
            .collect();
        (locks, cg, findings)
    }

    fn run(srcs: &[(&str, &str)]) -> (LockGraph, Vec<Finding>) {
        let (locks, cg, mut findings) = extract(srcs);
        let (graph, more) = check(&locks, &cg);
        findings.extend(more);
        (graph, findings)
    }

    #[test]
    fn held_vs_transient_classification() {
        let (locks, _, _) = extract(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn a(&self) {
                    let id = self.store.write().map_err(E)?.alloc();
                    let mut stripe = self.stripes[0].lock().map_err(E)?;
                    stripe.put(id);
                }
            }",
        )]);
        let ev = &locks[0].fns[0].events;
        assert!(ev.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { class, held: false, line: 4, .. } if class == "store"
        )));
        assert!(ev.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { class, held: true, line: 5, .. } if class == "stripe"
        )));
    }

    #[test]
    fn block_scoped_guard_expires_at_block_end() {
        // Two sequential `{ let g = lock(); … }` blocks of the same class
        // must NOT look like a re-acquisition (paged.rs::append_record).
        let (_, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            fn seq(&self) {
                let a = {
                    let cursor = self.append.lock();
                    cursor.page()
                };
                let b = {
                    let cursor = self.append.lock();
                    cursor.page()
                };
            }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn chained_receiver_resolves_through_adapters() {
        let (locks, _, _) = extract(&[(
            "t.rs",
            "// roadlint: serving-path
            fn a(&self) {
                let g = self.rnet_locks.get(idx).ok_or(Bad)?.lock().map_err(E)?;
                g.touch();
            }",
        )]);
        assert!(locks[0].fns[0].events.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { class, held: true, .. } if class == "rnet-decode"
        )));
    }

    #[test]
    fn opposite_orders_cycle() {
        let (graph, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn ab(&self) {
                    let a = self.append.lock();
                    let b = self.store.write();
                }
                fn ba(&self) {
                    let b = self.store.write();
                    let a = self.append.lock();
                }
            }",
        )]);
        assert!(graph.edges.contains_key(&("append".into(), "store".into())));
        assert!(graph.edges.contains_key(&("store".into(), "append".into())));
        assert!(findings.iter().any(|f| f.message.contains("lock-order cycle")));
    }

    #[test]
    fn consistent_order_is_clean_and_call_edges_propagate() {
        let (graph, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn low(&self) {
                    let s = self.stripe.lock();
                }
                fn high(&self) {
                    let g = self.image.lock();
                    // roadlint: allow(io-under-lock) reason=\"n/a: no store here\"
                    self.low();
                }
            }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(graph.edges.contains_key(&("image".into(), "stripe".into())));
    }

    #[test]
    fn cross_file_call_footprint_is_computed() {
        // The callee lives in another file (≈ another crate): the edge
        // image → store must still appear, and guard-io must fire since
        // an image guard is held across PageStore IO.
        let (graph, findings) = run(&[
            (
                "core/paged.rs",
                "// roadlint: serving-path
                struct Eng { pool: Arc<Pool> }
                impl Eng {
                    fn fault(&self) {
                        let g = self.image.lock();
                        self.pool.alloc(1);
                    }
                }",
            ),
            (
                "storage/pool.rs",
                "// roadlint: serving-path
                struct Pool { x: u32 }
                impl Pool {
                    fn alloc(&self, n: u32) {
                        let s = self.store.write();
                    }
                }",
            ),
        ]);
        assert!(graph.edges.contains_key(&("image".into(), "store".into())), "{graph:?}");
        assert!(
            findings.iter().any(|f| f.rule == "guard-io" && f.message.contains("image")),
            "{findings:?}"
        );
    }

    #[test]
    fn guard_io_escape_suppresses() {
        let (_, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn f(&self) {
                    let g = self.append.lock();
                    // roadlint: allow(io-under-lock) reason=\"append cursor serializes writers\"
                    let s = self.store.write();
                }
            }",
        )]);
        assert!(findings.iter().all(|f| f.rule != "guard-io"), "{findings:?}");
        // Without the escape the same shape is a finding.
        let (_, bad) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn f(&self) {
                    let g = self.append.lock();
                    let s = self.store.write();
                }
            }",
        )]);
        assert!(bad.iter().any(|f| f.rule == "guard-io"), "{bad:?}");
    }

    #[test]
    fn stripe_held_across_store_io_is_allowed() {
        let (_, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            impl P {
                fn f(&self) {
                    let g = self.stripe.lock();
                    let s = self.store.write();
                }
            }",
        )]);
        assert!(findings.iter().all(|f| f.rule != "guard-io"), "{findings:?}");
    }

    #[test]
    fn reacquiring_a_held_class_is_a_self_cycle() {
        let (_, findings) = run(&[(
            "t.rs",
            "// roadlint: serving-path
            fn double(&self) {
                let a = self.stripes[0].lock();
                let b = self.stripes[1].lock();
            }",
        )]);
        assert!(findings.iter().any(|f| f.message.contains("stripe -> stripe")), "{findings:?}");
    }

    #[test]
    fn unclassified_receiver_is_a_finding_unless_marked() {
        let (_, _, bad) = extract(&[(
            "t.rs",
            "// roadlint: serving-path
            fn f(&self) { let g = self.mystery.lock(); }",
        )]);
        assert!(bad.iter().any(|f| f.rule == "lock-order"));
        let (_, _, ok) = extract(&[(
            "t.rs",
            "// roadlint: serving-path
            fn f(&self) {
                let g = self.mystery.lock(); // roadlint: lock(mystery)
            }",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }
}
