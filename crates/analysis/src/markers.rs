//! Parsing of roadlint marker comments.
//!
//! A marker is a comment containing the tool name followed by a colon and
//! one directive. The directives (documented in ARCHITECTURE.md
//! §"Invariants and static analysis"):
//!
//! | directive | effect |
//! |---|---|
//! | `serving-path` | file opts into the panic-freedom and lock rules |
//! | `hot-path` / `end hot-path` | fence a region where heap allocation is banned |
//! | `decode-fn` | next function's `with_capacity` calls need a bound check |
//! | `allow(panic) reason="…"` | escape: this line and the next may panic |
//! | `allow(panic-fn) reason="…"` | escape: the next function may panic |
//! | `allow(alloc) reason="…"` | escape: this line and the next may allocate |
//! | `relaxed-ok reason="…"` | justifies an adjacent `Ordering::Relaxed` |
//! | `seqcst-ok reason="…"` | justifies an adjacent `Ordering::SeqCst` |
//! | `lock(<class>)` | classifies an unrecognized lock acquisition on this line |
//! | `taint-source` | the next function's return value is untrusted input |
//! | `sanitized reason="…"` | taint escape: a sink on this/next line is bounded |
//! | `allow(io-under-lock) reason="…"` | escape: guard intentionally held across page IO |
//! | `allow(discard) reason="…"` | escape: the `Result` discard on this line is intentional |
//! | `order-sink` | the next function is an order-sensitive commit: its arguments' order reaches serialized bytes |
//! | `ordered reason="…"` | determinism escape: the unordered flow on this/next line is order-independent |
//!
//! Every escape *requires* a non-empty reason; an escape without one is
//! itself a finding and does not suppress anything.

use crate::lexer::Comment;
use crate::Finding;

/// One parsed marker directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    ServingPath,
    HotPathStart,
    HotPathEnd,
    DecodeFn,
    AllowPanic,
    AllowPanicFn,
    AllowAlloc,
    RelaxedOk,
    SeqCstOk,
    LockClass(String),
    TaintSource,
    /// Taint escape with its reason text (shown in the verdict table).
    Sanitized(String),
    AllowIoUnderLock,
    AllowDiscard,
    /// The next function commits its arguments in an order that reaches
    /// serialized bytes (the determinism pass treats every call to it as
    /// an order-sensitive sink).
    OrderSink,
    /// Determinism escape with its reason text (shown in the order
    /// verdict table).
    Ordered(String),
}

/// A marker plus the line its comment starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerAt {
    pub marker: Marker,
    pub line: u32,
}

/// All markers of one file, plus hygiene findings (unknown directives,
/// escapes without reasons).
#[derive(Debug, Default)]
pub struct Markers {
    pub markers: Vec<MarkerAt>,
    pub hygiene: Vec<Finding>,
}

impl Markers {
    /// True if the file carries a `serving-path` marker.
    pub fn serving_path(&self) -> bool {
        self.markers.iter().any(|m| m.marker == Marker::ServingPath)
    }

    /// True if `marker` appears on line `l`.
    pub fn has_on_line(&self, marker: &Marker, l: u32) -> bool {
        self.markers.iter().any(|m| &m.marker == marker && m.line == l)
    }

    /// The manual lock class attached to line `l`, if any.
    pub fn lock_class_on_line(&self, l: u32) -> Option<&str> {
        self.markers.iter().find_map(|m| match &m.marker {
            Marker::LockClass(c) if m.line == l => Some(c.as_str()),
            _ => None,
        })
    }

    /// The reason of a `sanitized` marker on line `l` or the line above.
    pub fn sanitized_reason_near(&self, l: u32) -> Option<&str> {
        self.markers.iter().find_map(|m| match &m.marker {
            Marker::Sanitized(reason) if m.line == l || (l > 0 && m.line == l - 1) => {
                Some(reason.as_str())
            }
            _ => None,
        })
    }

    /// The reason of an `ordered` marker on line `l` or the line above.
    pub fn ordered_reason_near(&self, l: u32) -> Option<&str> {
        self.markers.iter().find_map(|m| match &m.marker {
            Marker::Ordered(reason) if m.line == l || (l > 0 && m.line == l - 1) => {
                Some(reason.as_str())
            }
            _ => None,
        })
    }

    /// Hot-path fence line ranges `(start, end)`, inclusive. Unbalanced
    /// fences are reported in `hygiene` by `parse`.
    pub fn hot_ranges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut open: Option<u32> = None;
        for m in &self.markers {
            match m.marker {
                Marker::HotPathStart => open = Some(m.line),
                Marker::HotPathEnd => {
                    if let Some(s) = open.take() {
                        out.push((s, m.line));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Parses the markers out of a file's comments.
pub fn parse(file: &str, comments: &[Comment]) -> Markers {
    let mut out = Markers::default();
    let mut open_fences = 0i32;
    for c in comments {
        let Some(pos) = c.text.find("roadlint:") else { continue };
        let rest = c.text[pos + "roadlint:".len()..].trim();
        let hygiene = |msg: String| Finding {
            file: file.to_owned(),
            line: c.line,
            rule: "marker",
            message: msg,
        };
        let reasoned = |out: &mut Markers, marker: Marker, what: &str| {
            if has_reason(rest) {
                out.markers.push(MarkerAt { marker, line: c.line });
            } else {
                out.hygiene.push(hygiene(format!(
                    "`{what}` requires a non-empty reason=\"…\" and suppresses nothing without one"
                )));
            }
        };
        if rest.starts_with("serving-path") {
            out.markers.push(MarkerAt { marker: Marker::ServingPath, line: c.line });
        } else if rest.starts_with("end hot-path") {
            open_fences -= 1;
            out.markers.push(MarkerAt { marker: Marker::HotPathEnd, line: c.line });
        } else if rest.starts_with("hot-path") {
            open_fences += 1;
            out.markers.push(MarkerAt { marker: Marker::HotPathStart, line: c.line });
        } else if rest.starts_with("decode-fn") {
            out.markers.push(MarkerAt { marker: Marker::DecodeFn, line: c.line });
        } else if rest.starts_with("taint-source") {
            out.markers.push(MarkerAt { marker: Marker::TaintSource, line: c.line });
        } else if rest.starts_with("sanitized") {
            match reason_text(rest) {
                Some(reason) => out
                    .markers
                    .push(MarkerAt { marker: Marker::Sanitized(reason.to_owned()), line: c.line }),
                None => out.hygiene.push(hygiene(
                    "`sanitized` requires a non-empty reason=\"…\" and suppresses nothing without one".to_owned(),
                )),
            }
        } else if rest.starts_with("order-sink") {
            out.markers.push(MarkerAt { marker: Marker::OrderSink, line: c.line });
        } else if rest.starts_with("ordered") {
            match reason_text(rest) {
                Some(reason) => out
                    .markers
                    .push(MarkerAt { marker: Marker::Ordered(reason.to_owned()), line: c.line }),
                None => out.hygiene.push(hygiene(
                    "`ordered` requires a non-empty reason=\"…\" and suppresses nothing without one".to_owned(),
                )),
            }
        } else if rest.starts_with("allow(io-under-lock)") {
            reasoned(&mut out, Marker::AllowIoUnderLock, "allow(io-under-lock)");
        } else if rest.starts_with("allow(discard)") {
            reasoned(&mut out, Marker::AllowDiscard, "allow(discard)");
        } else if rest.starts_with("allow(panic-fn)") {
            reasoned(&mut out, Marker::AllowPanicFn, "allow(panic-fn)");
        } else if rest.starts_with("allow(panic)") {
            reasoned(&mut out, Marker::AllowPanic, "allow(panic)");
        } else if rest.starts_with("allow(alloc)") {
            reasoned(&mut out, Marker::AllowAlloc, "allow(alloc)");
        } else if rest.starts_with("relaxed-ok") {
            reasoned(&mut out, Marker::RelaxedOk, "relaxed-ok");
        } else if rest.starts_with("seqcst-ok") {
            reasoned(&mut out, Marker::SeqCstOk, "seqcst-ok");
        } else if let Some(cls) = rest.strip_prefix("lock(").and_then(|r| r.split(')').next()) {
            if cls.is_empty() {
                out.hygiene.push(hygiene("`lock(…)` needs a class name".to_owned()));
            } else {
                out.markers
                    .push(MarkerAt { marker: Marker::LockClass(cls.to_owned()), line: c.line });
            }
        } else {
            out.hygiene.push(hygiene(format!(
                "unknown roadlint directive `{}`",
                rest.split_whitespace().next().unwrap_or("")
            )));
        }
    }
    if open_fences != 0 {
        out.hygiene.push(Finding {
            file: file.to_owned(),
            line: 0,
            rule: "marker",
            message: "unbalanced hot-path fences (every `hot-path` needs an `end hot-path`)"
                .to_owned(),
        });
    }
    out
}

/// True when the directive tail carries `reason="<non-empty>"`.
fn has_reason(rest: &str) -> bool {
    reason_text(rest).is_some()
}

/// The non-empty `reason="…"` text of a directive tail, if present.
fn reason_text(rest: &str) -> Option<&str> {
    let at = rest.find("reason=\"")?;
    let tail = &rest[at + "reason=\"".len()..];
    let r = tail.split('"').next()?.trim();
    (!r.is_empty()).then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Markers {
        parse("f.rs", &lex(src).comments)
    }

    #[test]
    fn directives_parse_with_lines() {
        let m = parse_src(
            "// roadlint: serving-path\n\
             fn a() {}\n\
             // roadlint: hot-path\n\
             // roadlint: end hot-path\n\
             // roadlint: allow(panic) reason=\"bounded above\"\n\
             // roadlint: lock(stripe)\n",
        );
        assert!(m.serving_path());
        assert_eq!(m.hot_ranges(), vec![(3, 4)]);
        assert!(m.has_on_line(&Marker::AllowPanic, 5));
        assert_eq!(m.lock_class_on_line(6), Some("stripe"));
        assert!(m.hygiene.is_empty());
    }

    #[test]
    fn escapes_without_reasons_are_findings() {
        let m = parse_src(
            "// roadlint: allow(panic)\n\
             // roadlint: relaxed-ok reason=\"  \"\n\
             // roadlint: frobnicate\n",
        );
        assert_eq!(m.hygiene.len(), 3);
        assert!(!m.has_on_line(&Marker::AllowPanic, 1));
        assert!(m.hygiene[2].message.contains("unknown"));
    }

    #[test]
    fn order_directives_parse_and_require_reasons() {
        let m = parse_src(
            "// roadlint: order-sink\n\
             fn commit() {}\n\
             // roadlint: ordered reason=\"commutative integer sum\"\n\
             // roadlint: ordered\n",
        );
        assert!(m.has_on_line(&Marker::OrderSink, 1));
        assert_eq!(m.ordered_reason_near(3), Some("commutative integer sum"));
        assert_eq!(m.ordered_reason_near(4), Some("commutative integer sum"));
        assert_eq!(m.hygiene.len(), 1, "{:?}", m.hygiene);
        assert!(m.hygiene[0].message.contains("`ordered`"));
    }

    #[test]
    fn unbalanced_fence_is_a_finding() {
        let m = parse_src("// roadlint: hot-path\nfn f() {}\n");
        assert_eq!(m.hygiene.len(), 1);
        assert!(m.hygiene[0].message.contains("unbalanced"));
    }
}
