//! Pass B: the determinism prover — unordered-iteration taint over the
//! byte-output and commit surface.
//!
//! The workspace's load-bearing invariant since the parallel-build PRs is
//! that serialized `ShortcutStore`s are **byte-identical** across thread
//! counts, contraction orders and witness budgets. One unordered
//! `FastMap::iter()` feeding a serializer would break that silently; this
//! pass proves statically that it cannot happen. Three rules:
//!
//! * **unordered-iter** (rule 9) — iterating a hash-ordered container
//!   (`FastMap`/`FastSet`/`HashMap`/`HashSet`, via `.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `into_iter()` or `for … in &map`) must not
//!   reach a byte-output sink (`extend_from_slice`, `write_all`,
//!   `serialize_into`, or any function that transitively emits) or an
//!   order-sensitive commit (a function carrying the `order-sink`
//!   marker). Sanitizers: collect-then-`sort*`, a `BTreeMap`/`BTreeSet`
//!   rebind, or a reasoned `// roadlint: ordered reason="…"` escape.
//! * **float-order** (rule 10) — float accumulation whose iteration
//!   domain is unordered (`.sum::<f64>()`, `+=` on an `f64`/`f32`/
//!   `Weight` accumulator inside the loop, `min_by`/`max_by` via
//!   `partial_cmp`) is flagged even without a byte sink: float
//!   reassociation is exactly the bug class the byte-equality pin cannot
//!   tolerate. `total_cmp` is the sanctioned deterministic tie-break.
//! * **sched-order** (rule 11) — inside a `std::thread::scope` fan-out,
//!   results must land in index-addressed slots (`chunks_mut`) or be
//!   joined in spawn order, never consumed in thread-completion order
//!   (`.recv()` loops, `Mutex<Vec>::push`).
//!
//! **Interprocedural**: per-function summaries — return-order provenance,
//! whether the function (transitively) emits bytes, and parameters whose
//! iteration order reaches a sink — are computed to a fixpoint over the
//! workspace call graph, so a helper in another crate that loops over its
//! slice parameter and emits bytes is an order sink for every caller
//! passing an unsorted hash-map collection.
//!
//! Every *sanitized* flow that reaches a sink becomes a row of the order
//! verdict table (`source → sanitizer → sink`, printed by
//! `roadlint --order` and pinned canonically in `determinism.expected`).
//!
//! Documented approximations: container typing comes from type
//! ascriptions, struct-field declarations, known constructors
//! (`FastMap::default()`, `fast_map_with_capacity`, …) and resolved
//! callee return types; closure parameters are untracked; a method chain
//! on an unresolved call result is not a source; pushing into a local
//! `Vec` inside an unordered loop marks that `Vec` unordered only within
//! the loop's token range. Resolution uses
//! [`CallGraph::resolve_confident`] for summaries (never borrowing a
//! same-named fn's summary across types) and the over-approximating
//! [`CallGraph::resolve`] for *typing only* (binding a local from a
//! cross-crate `-> FastMap<…>` callee).

use crate::callgraph::{self, CallGraph, FnId};
use crate::lexer::Token;
use crate::syntax;
use crate::{FileData, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Hash-ordered container types: iterating one yields an unordered
/// stream.
const UNORDERED: &[&str] = &["FastMap", "FastSet", "HashMap", "HashSet"];

/// Wrappers transparent for ordering purposes (deref to the inner type
/// without changing what iteration yields).
const TRANSPARENT: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "RwLock",
    "Mutex",
    "OnceLock",
    "RefCell",
    "Cell",
    "ManuallyDrop",
    "Option",
    "Result",
];

/// Ordered sequences: iterating one is deterministic, but its *elements*
/// may be unordered containers (`Vec<Arc<FastMap<…>>>`).
const SEQS: &[&str] = &["Vec", "VecDeque"];

/// Container methods that start an iteration over the receiver.
const ITER_SOURCES: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sort calls: applied to an unordered collection they fix its order.
const SORTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

/// Order-insensitive terminal reductions: the result does not depend on
/// iteration order (`sum` only for integers — the float case is caught
/// by its turbofish before this list applies).
const CLEAN_REDUCERS: &[&str] =
    &["count", "len", "any", "all", "sum", "min", "max", "contains", "is_empty"];

/// Byte-output primitives: emitting through one of these makes the
/// enclosing statement order-observable in the serialized output.
const EMIT_PRIMS: &[&str] = &["extend_from_slice", "write_all", "serialize_into"];

/// Receiver methods that write their argument's elements into the
/// receiver in iteration order.
const SEQ_MUTATORS: &[&str] = &["push", "extend", "append", "insert"];

/// Constructors of unordered containers by free-fn name.
const UNORDERED_CTORS: &[&str] = &["fast_map_with_capacity", "fast_set_with_capacity"];

/// Accumulator types whose `+=` is float addition.
const FLOAT_TYPES: &[&str] = &["f64", "f32", "Weight"];

/// Order provenance of one value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OVal {
    /// Deterministic order (or not an iteration-ordered value at all).
    Ordered,
    /// Hash-unordered origin whose order was fixed: `(origin, sanitizer)`.
    Sorted(String, String),
    /// Order inherited from parameter `i` of the enclosing fn.
    Param(usize),
    /// Hash-unordered, with the origin description.
    Unordered(String),
}

impl OVal {
    fn rank(&self) -> u8 {
        match self {
            OVal::Ordered => 0,
            OVal::Sorted(..) => 1,
            OVal::Param(_) => 2,
            OVal::Unordered(_) => 3,
        }
    }

    /// Worst-wins merge; ties keep the first operand (scan order is
    /// deterministic, so summaries converge).
    fn merge(a: OVal, b: OVal) -> OVal {
        if b.rank() > a.rank() {
            b
        } else {
            a
        }
    }
}

/// Return-order provenance of a function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum ORet {
    #[default]
    Ordered,
    FromParam(usize),
    Sorted(String, String),
    Unordered(String),
}

/// The interprocedural summary of one function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OrderSummary {
    ret: ORet,
    /// Calling this fn produces externally visible byte output or an
    /// order-sensitive commit — calls to it inside a loop make the
    /// loop's iteration order observable.
    emits: bool,
    /// Parameters whose iteration order reaches a sink inside this fn
    /// (or transitively), with the sink's description.
    param_sinks: BTreeSet<(usize, String)>,
}

/// One row of the order verdict table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderVerdict {
    pub source: String,
    pub sanitizer: String,
    pub sink: String,
}

#[derive(Default)]
struct Emit {
    findings: BTreeSet<Finding>,
    verdicts: BTreeSet<OrderVerdict>,
}

/// How a type chain iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// A hash-ordered container.
    Map,
    /// An ordered sequence whose elements are hash-ordered containers.
    SeqOfMaps,
    /// A `BTreeMap`/`BTreeSet` (iterates in key order).
    BTree,
    /// Anything else.
    Other,
}

/// Classifies a type-name chain by its outermost non-transparent
/// container.
fn classify(chain: &[String]) -> Shape {
    let mut it = chain.iter().filter(|id| !TRANSPARENT.contains(&id.as_str()));
    let Some(first) = it.next() else { return Shape::Other };
    if UNORDERED.contains(&first.as_str()) {
        return Shape::Map;
    }
    if first == "BTreeMap" || first == "BTreeSet" {
        return Shape::BTree;
    }
    if SEQS.contains(&first.as_str()) {
        // `Vec<Arc<FastMap<…>>>`: the sequence iterates deterministically
        // but each element is an unordered container.
        for id in it {
            if SEQS.contains(&id.as_str()) {
                continue;
            }
            if UNORDERED.contains(&id.as_str()) {
                return Shape::SeqOfMaps;
            }
            break;
        }
    }
    Shape::Other
}

/// Runs the determinism pass over the workspace.
pub fn check(files: &[FileData], cg: &CallGraph) -> (Vec<Finding>, Vec<OrderVerdict>) {
    let mut sums: Vec<OrderSummary> = vec![OrderSummary::default(); cg.fns.len()];
    for _ in 0..12 {
        let mut changed = false;
        for id in 0..cg.fns.len() {
            if cg.fns[id].in_test_mod || cg.fns[id].body.is_none() {
                continue;
            }
            let s = FnCx::new(files, cg, id, &sums, None).run();
            if s != sums[id] {
                sums[id] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut emit = Emit::default();
    for id in 0..cg.fns.len() {
        if cg.fns[id].in_test_mod || cg.fns[id].body.is_none() {
            continue;
        }
        FnCx::new(files, cg, id, &sums, Some(&mut emit)).run();
        sched_check(files, cg, id, &mut emit);
    }
    (emit.findings.into_iter().collect(), emit.verdicts.into_iter().collect())
}

/// The per-function order-dataflow engine.
struct FnCx<'a> {
    cg: &'a CallGraph,
    sums: &'a [OrderSummary],
    me: FnId,
    fd: &'a FileData,
    /// Locals that *are* unordered containers (iterating them is the
    /// source event; using them by key is not).
    map_vars: BTreeSet<String>,
    /// Locals that are ordered sequences of unordered containers:
    /// iterating them binds map-typed elements.
    seq_vars: BTreeSet<String>,
    /// Float accumulators (by ascription).
    float_vars: BTreeSet<String>,
    /// Order provenance of iteration-derived locals.
    vars: BTreeMap<String, OVal>,
    /// Open unordered-loop contexts as `(body_close, origin)`: pushes
    /// into a `Vec` inside such a loop order it by the loop's domain.
    loop_ctx: Vec<(usize, String)>,
    ret: OVal,
    emits: bool,
    param_sinks: BTreeSet<(usize, String)>,
    emit: Option<&'a mut Emit>,
}

impl<'a> FnCx<'a> {
    fn new(
        files: &'a [FileData],
        cg: &'a CallGraph,
        me: FnId,
        sums: &'a [OrderSummary],
        emit: Option<&'a mut Emit>,
    ) -> FnCx<'a> {
        let info = &cg.fns[me];
        let mut cx = FnCx {
            cg,
            sums,
            me,
            fd: &files[info.file_idx],
            map_vars: BTreeSet::new(),
            seq_vars: BTreeSet::new(),
            float_vars: BTreeSet::new(),
            vars: BTreeMap::new(),
            loop_ctx: Vec::new(),
            ret: OVal::Ordered,
            emits: info.order_sink,
            param_sinks: BTreeSet::new(),
            emit,
        };
        for (i, p) in info.params.iter().enumerate() {
            let chain = info.param_chains.get(i).map(Vec::as_slice).unwrap_or(&[]);
            match classify(chain) {
                Shape::Map => {
                    cx.map_vars.insert(p.clone());
                }
                Shape::SeqOfMaps => {
                    cx.seq_vars.insert(p.clone());
                }
                // Slices, vecs, iterators: order inherited from the
                // caller.
                _ => {
                    cx.vars.insert(p.clone(), OVal::Param(i));
                }
            }
            if chain.iter().any(|id| FLOAT_TYPES.contains(&id.as_str())) {
                cx.float_vars.insert(p.clone());
            }
        }
        cx
    }

    fn toks(&self) -> &'a [Token] {
        &self.fd.lexed.tokens
    }

    fn run(mut self) -> OrderSummary {
        if let Some((bs, be)) = self.cg.fns[self.me].body {
            self.stmts(bs + 1, be);
        }
        let ret = match self.ret {
            OVal::Ordered => ORet::Ordered,
            OVal::Param(p) => ORet::FromParam(p),
            OVal::Sorted(o, s) => ORet::Sorted(o, s),
            OVal::Unordered(o) => ORet::Unordered(o),
        };
        OrderSummary { ret, emits: self.emits, param_sinks: self.param_sinks }
    }

    /// Statement-by-statement scan of a block region.
    fn stmts(&mut self, a: usize, b: usize) {
        let mut i = a;
        while i < b {
            let t = &self.toks()[i];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
                i += 1;
                continue;
            }
            match t.ident() {
                Some("let") => i = self.handle_let(i, b),
                Some("for") => i = self.handle_for(i, b),
                Some("if") => i = self.handle_if(i, b),
                Some("while") | Some("match") => {
                    let open = self.find_block_open(i + 1, b);
                    self.eval(i + 1, open);
                    i = open + 1;
                }
                Some("return") => {
                    let (end, _) = self.stmt_limit(i + 1, b);
                    let v = self.eval(i + 1, end);
                    self.ret = OVal::merge(self.ret.clone(), v);
                    i = end + 1;
                }
                Some("else") | Some("loop") | Some("unsafe") => i += 1,
                _ => {
                    let (end, closed) = self.stmt_limit(i, b);
                    let v = self.handle_expr_stmt(i, end);
                    if closed {
                        // Block-final expression: a (possible) tail value.
                        self.ret = OVal::merge(self.ret.clone(), v);
                    }
                    i = end + 1;
                }
            }
        }
    }

    /// End of the statement starting at `a` (same shape as the taint
    /// pass): the depth-0 `;` or match-arm `,`, or the enclosing `}`.
    fn stmt_limit(&self, a: usize, b: usize) -> (usize, bool) {
        let mut depth = 0i64;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return (j, true);
                }
            } else if t.is_punct(';') && depth == 0 {
                return (j, false);
            } else if t.is_punct(',') && depth == 0 {
                return (j, true);
            }
            j += 1;
        }
        (b, true)
    }

    /// The `{` opening the body of an `if`/`for`/`while`/`match` whose
    /// header starts at `a`.
    fn find_block_open(&self, a: usize, b: usize) -> usize {
        let mut depth = 0i64;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('{') {
                if depth == 0 {
                    return j;
                }
                depth += 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            }
            j += 1;
        }
        b
    }

    /// Binder identifiers of a pattern region.
    fn pattern_binders(&self, a: usize, b: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in a..b {
            if let Some(id) = self.toks()[k].ident() {
                if !matches!(id, "mut" | "ref" | "box" | "self" | "_")
                    && id.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                {
                    out.push(id.to_owned());
                }
            }
        }
        out
    }

    fn handle_let(&mut self, i: usize, b: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i + 1;
        let mut pattern_end = None;
        let mut eq = None;
        while j < b {
            let t = &self.toks()[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 {
                if t.is_punct(';') {
                    // `let x;` — uninitialized.
                    for bnd in self.pattern_binders(i + 1, j) {
                        self.vars.insert(bnd, OVal::Ordered);
                    }
                    return j + 1;
                }
                if t.is_punct(':')
                    && !self.toks().get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !(j > 0 && self.toks()[j - 1].is_punct(':'))
                {
                    pattern_end.get_or_insert(j);
                }
                if t.is_punct('=')
                    && !self.toks().get(j + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                {
                    // After an ascription, a preceding `>` closes its
                    // generic (`let m: FastMap<u32, u32> = …`), not a
                    // `>=` comparison.
                    let generic_close =
                        pattern_end.is_some() && j > 0 && self.toks()[j - 1].is_punct('>');
                    if generic_close || !(j > 0 && is_cmp_prefix(&self.toks()[j - 1])) {
                        eq = Some(j);
                        break;
                    }
                }
            }
            j += 1;
        }
        let Some(eq) = eq else {
            return j + 1;
        };
        let binders = self.pattern_binders(i + 1, pattern_end.unwrap_or(eq));
        let (end, _) = self.stmt_limit(eq + 1, b);
        let v = self.eval(eq + 1, end);
        // The ascription decides the binding when it names a container.
        let chain =
            pattern_end.map(|pe| ascription_chain(self.toks(), pe + 1, eq)).unwrap_or_default();
        if chain.iter().any(|id| FLOAT_TYPES.contains(&id.as_str())) {
            for bnd in &binders {
                self.float_vars.insert(bnd.clone());
            }
        }
        match classify(&chain) {
            Shape::Map => {
                for bnd in binders {
                    self.map_vars.insert(bnd);
                }
                return end + 1;
            }
            Shape::SeqOfMaps => {
                for bnd in binders {
                    self.seq_vars.insert(bnd);
                }
                return end + 1;
            }
            Shape::BTree => {
                // A BTree rebind of an unordered stream is sorted.
                let nv = match v {
                    OVal::Unordered(o) => OVal::Sorted(o, "BTreeMap rebind".to_owned()),
                    other => other,
                };
                for bnd in binders {
                    self.vars.insert(bnd, nv.clone());
                }
                return end + 1;
            }
            Shape::Other => {}
        }
        // No deciding ascription: type the binding from the RHS — a
        // known constructor, a map-var alias, or a callee whose return
        // type is an unordered container.
        if self.rhs_is_map(eq + 1, end) {
            for bnd in binders {
                self.map_vars.insert(bnd);
            }
            return end + 1;
        }
        for bnd in binders {
            self.vars.insert(bnd, v.clone());
        }
        end + 1
    }

    /// True when the let-RHS region evidently produces an unordered
    /// container: `FastMap::default()`, `fast_map_with_capacity(…)`, a
    /// `.clone()` of a map var, or a call resolving (over-approximately,
    /// for typing only) to fns that all return an unordered container.
    fn rhs_is_map(&self, a: usize, b: usize) -> bool {
        let toks = self.toks();
        let mut j = a;
        while j < b && (toks[j].is_punct('&') || toks[j].ident() == Some("mut")) {
            j += 1;
        }
        // `m` / `m.clone()` for a known map var.
        if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
            if self.map_vars.contains(name) {
                let bare = j + 1 >= b;
                let cloned = toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && toks.get(j + 2).is_some_and(|t| t.ident() == Some("clone"));
                if bare || cloned {
                    return true;
                }
            }
        }
        for k in j..b {
            let t = &toks[k];
            if let Some(id) = t.ident() {
                if UNORDERED.contains(&id)
                    && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                {
                    return true;
                }
                if UNORDERED_CTORS.contains(&id) {
                    return true;
                }
            }
            if let Some(site) = callgraph::call_at(toks, k) {
                let callees = self.cg.resolve(self.me, &site);
                if !callees.is_empty()
                    && callees.iter().all(|&c| classify(&self.cg.fns[c].ret_chain) == Shape::Map)
                {
                    return true;
                }
            }
        }
        false
    }

    fn handle_for(&mut self, i: usize, b: usize) -> usize {
        let mut j = i + 1;
        while j < b && self.toks()[j].ident() != Some("in") && !self.toks()[j].is_punct('{') {
            j += 1;
        }
        let binders = self.pattern_binders(i + 1, j);
        let start = j + 1;
        let open = self.find_block_open(start, b);
        let close = syntax::match_delim(self.toks(), open);
        let line = self.toks()[i].line;
        let (v, elem_is_map) = self.domain(start, open);
        if elem_is_map {
            for bnd in binders {
                self.map_vars.insert(bnd);
            }
        } else {
            for bnd in binders {
                self.vars.insert(bnd, OVal::Ordered);
            }
        }
        // Scan the loop body for order-observable events before the
        // statements inside are walked individually.
        let emission = self.body_emission(open, close);
        let floats = self.body_float_events(open, close);
        if let Some(sink) = emission {
            self.order_sink_event(v.clone(), sink, line);
        }
        for (desc, fline) in floats {
            self.float_event(v.clone(), desc, fline);
        }
        if let OVal::Unordered(o) = &v {
            // Pushes into locals inside this body inherit the domain's
            // unorderedness.
            self.loop_ctx.push((close, o.clone()));
        }
        open + 1
    }

    /// Evaluates a `for`-loop domain region. Returns the domain's order
    /// provenance plus whether the loop *binder* is itself an unordered
    /// container (iterating a `Vec<FastMap<…>>`).
    fn domain(&mut self, a: usize, open: usize) -> (OVal, bool) {
        let toks = self.toks();
        let mut j = a;
        while j < open && (toks[j].is_punct('&') || toks[j].ident() == Some("mut")) {
            j += 1;
        }
        // Resolve a bare base: `var` or `self.field`.
        let (shape, base_end, origin) = self.base_at(j);
        match shape {
            Shape::Map => {
                if base_end >= open {
                    // `for (k, v) in &map` — direct unordered iteration.
                    return (OVal::Unordered(origin), false);
                }
                // `for k in map.keys().…` — source plus adapter chain.
                if let Some((m, margs)) = method_after_gap(toks, base_end - 1) {
                    if ITER_SOURCES.contains(&m) {
                        let mclose = syntax::match_delim(toks, margs);
                        let origin = origin.replacen(" in ", &format!(".{m}() in "), 1);
                        let v = self.chain(OVal::Unordered(origin), mclose + 1, open);
                        return (v, false);
                    }
                }
                return (self.eval(j, open), false);
            }
            Shape::SeqOfMaps => {
                // `for map in &self.per_rnet` (or `.iter()` on it): the
                // sequence iterates deterministically, the binder is an
                // unordered container.
                return (OVal::Ordered, true);
            }
            _ => {}
        }
        (self.eval(j, open), false)
    }

    /// The shape of the bare base expression at `j`: `(shape, tokens
    /// consumed through, origin description)`. `Shape::Other` with
    /// `base_end == j` means "no typed base here".
    fn base_at(&self, j: usize) -> (Shape, usize, String) {
        let toks = self.toks();
        let line = toks.get(j).map_or(0, |t| t.line);
        if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
            if name == "self"
                && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 2).is_some_and(|t| t.ident().is_some())
            {
                let field = toks[j + 2].ident().unwrap_or_default();
                let chain = self.cg.fns[self.me]
                    .self_type
                    .as_deref()
                    .and_then(|t| self.cg.field_chain(t, field))
                    .unwrap_or(&[]);
                let shape = classify(chain);
                let origin = format!(
                    "self.{field} ({}) in {} ({}:{line})",
                    chain.first().map(String::as_str).unwrap_or("?"),
                    self.cg.qualified(self.me),
                    self.fd.path,
                );
                return (shape, j + 3, origin);
            }
            let prev_is_dot = j > 0 && toks[j - 1].is_punct('.');
            if !prev_is_dot {
                if self.map_vars.contains(name) {
                    let origin = format!(
                        "`{name}` in {} ({}:{line})",
                        self.cg.qualified(self.me),
                        self.fd.path
                    );
                    return (Shape::Map, j + 1, origin);
                }
                if self.seq_vars.contains(name) {
                    return (Shape::SeqOfMaps, j + 1, String::new());
                }
            }
        }
        (Shape::Other, j, String::new())
    }

    fn handle_if(&mut self, i: usize, b: usize) -> usize {
        if self.toks().get(i + 1).is_some_and(|t| t.ident() == Some("let")) {
            let open = self.find_block_open(i + 2, b);
            let eq = (i + 2..open).find(|&k| {
                self.toks()[k].is_punct('=')
                    && !self.toks().get(k + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                    && !is_cmp_prefix(&self.toks()[k - 1])
            });
            if let Some(eq) = eq {
                let binders = self.pattern_binders(i + 2, eq);
                let v = self.eval(eq + 1, open);
                for bnd in binders {
                    self.vars.insert(bnd, v.clone());
                }
            }
            return open + 1;
        }
        let open = self.find_block_open(i + 1, b);
        self.eval(i + 1, open);
        open + 1
    }

    /// Expression statement: assignment tracking, else plain eval.
    fn handle_expr_stmt(&mut self, a: usize, b: usize) -> OVal {
        let toks = self.toks();
        let mut k = a;
        while k < b && toks[k].is_punct('*') {
            k += 1;
        }
        if let Some(name) = toks.get(k).and_then(|t| t.ident()) {
            let plain = toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                && !toks.get(k + 2).is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
            let compound = toks.get(k + 1).is_some_and(
                |t| matches!(&t.tok, crate::lexer::Tok::Punct(c) if "+-*/%&|^".contains(*c)),
            ) && toks.get(k + 2).is_some_and(|t| t.is_punct('='));
            if plain || compound {
                let eq = if plain { k + 1 } else { k + 2 };
                let v = self.eval(eq + 1, b);
                let name = name.to_owned();
                if self.rhs_is_map(eq + 1, b) {
                    self.map_vars.insert(name);
                    return OVal::Ordered;
                }
                let old = self.vars.get(&name).cloned().unwrap_or(OVal::Ordered);
                let nv = if compound { OVal::merge(old, v) } else { v };
                self.vars.insert(name, nv);
                return OVal::Ordered;
            }
        }
        self.eval(a, b)
    }

    /// The expression walker: merges order-provenance contributions,
    /// resolves calls against summaries, and fires sinks.
    fn eval(&mut self, a: usize, b: usize) -> OVal {
        let mut val = OVal::Ordered;
        let mut j = a;
        while j < b {
            let t = &self.toks()[j];
            // An unordered-container iteration source: `map.keys()…`,
            // `self.objects.values()…`.
            if let Some((origin, after)) = self.map_iter_at(j, b) {
                let v = self.chain(OVal::Unordered(origin), after, b);
                val = OVal::merge(val, v);
                j = after;
                continue;
            }
            if let Some(site) = callgraph::call_at(self.toks(), j) {
                let close = syntax::match_delim(self.toks(), site.args_open);
                if close < b {
                    let (c, skip) = self.eval_call(&site, close);
                    val = OVal::merge(val, c);
                    j = if skip { close + 1 } else { site.args_open + 1 };
                    continue;
                }
            }
            if let Some(name) = t.ident() {
                let is_field = j > 0
                    && self.toks()[j - 1].is_punct('.')
                    && !(j >= 2 && self.toks()[j - 2].is_punct('.'));
                if !is_field {
                    if let Some(v) = self.vars.get(name).cloned() {
                        if let Some((m, margs)) = method_after_gap(self.toks(), j) {
                            if SORTS.contains(&m) {
                                // `v.sort_unstable()` fixes the order.
                                let nv = match v {
                                    OVal::Unordered(o) => OVal::Sorted(o, format!("{m}()")),
                                    // A sorted Param domain is
                                    // deterministic regardless of the
                                    // caller's ordering.
                                    OVal::Param(_) => OVal::Ordered,
                                    other => other,
                                };
                                self.vars.insert(name.to_owned(), nv);
                                let mclose = syntax::match_delim(self.toks(), margs);
                                j = mclose + 1;
                                continue;
                            }
                            if SEQ_MUTATORS.contains(&m) {
                                // Inside an unordered loop, `out.push(x)`
                                // orders `out` by the loop's domain.
                                if let Some(origin) = self.loop_origin(j) {
                                    let nv =
                                        OVal::merge(v.clone(), OVal::Unordered(origin.clone()));
                                    self.vars.insert(name.to_owned(), nv);
                                }
                                // And pushing an unordered stream into a
                                // sequence makes the sequence unordered.
                                let mclose = syntax::match_delim(self.toks(), margs);
                                if mclose < b {
                                    let av = self.eval(margs + 1, mclose);
                                    let cur = self.vars.get(name).cloned().unwrap_or(OVal::Ordered);
                                    self.vars.insert(name.to_owned(), OVal::merge(cur, av));
                                    j = mclose + 1;
                                    continue;
                                }
                            }
                        }
                        val = OVal::merge(val, v);
                    }
                }
            }
            j += 1;
        }
        val
    }

    /// Recognizes an iteration source rooted at a typed unordered
    /// container at token `j`: `map.keys(`, `self.field.iter(`,
    /// `map.drain(`. Returns `(origin, index after the source call's
    /// close paren)`.
    fn map_iter_at(&self, j: usize, b: usize) -> Option<(String, usize)> {
        let toks = self.toks();
        if j > 0 && toks[j - 1].is_punct('.') {
            return None;
        }
        let (shape, base_end, origin_base) = self.base_at(j);
        if shape != Shape::Map || base_end >= b {
            return None;
        }
        let (m, margs) = method_after_gap(toks, base_end - 1)?;
        if !ITER_SOURCES.contains(&m) {
            return None;
        }
        let mclose = syntax::match_delim(toks, margs);
        if mclose >= b {
            return None;
        }
        let origin = origin_base.replacen(" in ", &format!(".{m}() in "), 1);
        Some((origin, mclose + 1))
    }

    /// Walks a method chain after an iteration source, tracking how the
    /// stream's order evolves: adapters preserve it, sorts and BTree
    /// collects fix it, clean reducers terminate it, float reductions
    /// fire rule 10.
    fn chain(&mut self, mut cur: OVal, mut k: usize, b: usize) -> OVal {
        let toks = self.toks();
        while k + 1 < b && toks[k].is_punct('.') {
            let Some(m) = toks[k + 1].ident() else { break };
            let line = toks[k + 1].line;
            // Optional turbofish: `collect::<BTreeMap<…>>(`,
            // `sum::<f64>(`.
            let mut p = k + 2;
            let mut turbofish: Vec<String> = Vec::new();
            if toks.get(p).is_some_and(|t| t.is_punct(':'))
                && toks.get(p + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(p + 2).is_some_and(|t| t.is_punct('<'))
            {
                let mut angle = 1i64;
                let mut q = p + 3;
                while q < b && angle > 0 {
                    if toks[q].is_punct('<') {
                        angle += 1;
                    } else if toks[q].is_punct('>') && !toks[q - 1].is_punct('-') {
                        angle -= 1;
                    } else if let Some(id) = toks[q].ident() {
                        turbofish.push(id.to_owned());
                    }
                    q += 1;
                }
                p = q;
            }
            if !toks.get(p).is_some_and(|t| t.is_punct('(')) {
                // A field read in the chain — keep walking.
                k += 2;
                continue;
            }
            let argclose = syntax::match_delim(toks, p);
            if argclose >= b {
                break;
            }
            let args_have = |needle: &str| (p..argclose).any(|q| toks[q].ident() == Some(needle));
            if SORTS.contains(&m) {
                if let OVal::Unordered(o) = cur {
                    cur = OVal::Sorted(o, format!("{m}()"));
                }
            } else if m == "collect"
                && turbofish.iter().any(|id| id == "BTreeMap" || id == "BTreeSet")
            {
                if let OVal::Unordered(o) = cur {
                    cur = OVal::Sorted(o, "BTreeMap rebind".to_owned());
                }
            } else if m == "sum" && turbofish.iter().any(|id| FLOAT_TYPES.contains(&id.as_str())) {
                self.float_event(
                    cur.clone(),
                    format!(
                        "float `.sum()` at {}:{line} in {}",
                        self.fd.path,
                        self.cg.qualified(self.me)
                    ),
                    line,
                );
                cur = OVal::Ordered;
            } else if matches!(m, "min_by" | "max_by" | "min_by_key" | "max_by_key") {
                if args_have("total_cmp") {
                    // The sanctioned deterministic tie-break.
                    if let OVal::Unordered(o) = cur {
                        cur = OVal::Sorted(o, "total_cmp tie-break".to_owned());
                    }
                } else if args_have("partial_cmp") {
                    self.float_event(
                        cur.clone(),
                        format!(
                            "float `.{m}(partial_cmp)` at {}:{line} in {}",
                            self.fd.path,
                            self.cg.qualified(self.me)
                        ),
                        line,
                    );
                    cur = OVal::Ordered;
                }
            } else if CLEAN_REDUCERS.contains(&m) {
                // Order-insensitive terminal reduction.
                cur = OVal::Ordered;
            }
            // Everything else (map/filter/collect/copied/enumerate/…)
            // preserves the stream's order provenance.
            k = argclose + 1;
        }
        cur
    }

    /// Applies a call's summaries: order-sink args, emitted-bytes
    /// propagation, return-order mapping, parameter sinks.
    fn eval_call(&mut self, site: &callgraph::CallSite, close: usize) -> (OVal, bool) {
        let toks = self.toks();
        if EMIT_PRIMS.contains(&site.name.as_str()) {
            self.emits = true;
            // Let the argument region be walked normally.
            return (OVal::Ordered, false);
        }
        let callees = self.cg.resolve_confident(self.me, site);
        if callees.is_empty() {
            return (OVal::Ordered, false);
        }
        let args = callgraph::split_args(toks, site.args_open, close);
        if callees.iter().any(|&c| self.cg.fns[c].order_sink) {
            self.emits = true;
            let cid = callees.iter().copied().find(|&c| self.cg.fns[c].order_sink).unwrap_or(0);
            for (i, &(x, y)) in args.iter().enumerate() {
                let av = self.eval(x, y);
                let desc = format!(
                    "order-sensitive commit {} (arg {}) at {}:{}",
                    self.cg.qualified(cid),
                    i + 1,
                    self.fd.path,
                    site.line
                );
                self.order_sink_event(av, desc, site.line);
            }
            return (OVal::Ordered, true);
        }
        let arg_vals: Vec<OVal> = args.iter().map(|&(x, y)| self.eval(x, y)).collect();
        let mut out = OVal::Ordered;
        for &cid in &callees {
            let sum = self.sums[cid].clone();
            if sum.emits {
                self.emits = true;
            }
            let rv = match sum.ret {
                ORet::Ordered => OVal::Ordered,
                ORet::Sorted(o, s) => OVal::Sorted(o, s),
                ORet::Unordered(o) => OVal::Unordered(o),
                ORet::FromParam(p) => arg_vals.get(p).cloned().unwrap_or(OVal::Ordered),
            };
            out = OVal::merge(out, rv);
            for (p, desc) in &sum.param_sinks {
                if let Some(av) = arg_vals.get(*p) {
                    self.order_sink_event(av.clone(), desc.clone(), site.line);
                }
            }
        }
        (out, true)
    }

    /// The innermost open unordered-loop origin covering token `j`.
    fn loop_origin(&mut self, j: usize) -> Option<String> {
        self.loop_ctx.retain(|&(close, _)| j < close);
        self.loop_ctx.last().map(|(_, o)| o.clone())
    }

    /// The first byte-output event in a loop body, as a sink description.
    fn body_emission(&mut self, open: usize, close: usize) -> Option<String> {
        let toks = self.toks();
        for k in open..close {
            let Some(site) = callgraph::call_at(toks, k) else { continue };
            if EMIT_PRIMS.contains(&site.name.as_str()) {
                return Some(format!(
                    "byte output (`{}`) at {}:{} in {}",
                    site.name,
                    self.fd.path,
                    site.line,
                    self.cg.qualified(self.me)
                ));
            }
            let callees = self.cg.resolve_confident(self.me, &site);
            if let Some(&c) =
                callees.iter().find(|&&c| self.cg.fns[c].order_sink || self.sums[c].emits)
            {
                return Some(format!(
                    "order-observable call to {} at {}:{} in {}",
                    self.cg.qualified(c),
                    self.fd.path,
                    site.line,
                    self.cg.qualified(self.me)
                ));
            }
        }
        None
    }

    /// Float-accumulation events in a loop body: `acc += …` on a float
    /// accumulator, plus the chain-level reductions (which `chain`
    /// catches when the stream is inline, and this scan catches when the
    /// accumulation is written as loop statements).
    fn body_float_events(&self, open: usize, close: usize) -> Vec<(String, u32)> {
        let toks = self.toks();
        let mut out = Vec::new();
        for k in open..close {
            let Some(name) = toks[k].ident() else { continue };
            if self.float_vars.contains(name)
                && toks.get(k + 1).is_some_and(|t| t.is_punct('+') || t.is_punct('*'))
                && toks.get(k + 2).is_some_and(|t| t.is_punct('='))
            {
                out.push((
                    format!(
                        "float accumulation `{name} {}=` at {}:{} in {}",
                        if toks[k + 1].is_punct('+') { "+" } else { "*" },
                        self.fd.path,
                        toks[k].line,
                        self.cg.qualified(self.me)
                    ),
                    toks[k].line,
                ));
            }
        }
        out
    }

    /// An order-sensitive sink saw provenance `v`.
    fn order_sink_event(&mut self, v: OVal, desc: String, line: u32) {
        match v {
            OVal::Ordered => {}
            OVal::Param(p) => {
                self.param_sinks.insert((p, desc));
            }
            OVal::Sorted(o, s) => {
                if let Some(e) = self.emit.as_deref_mut() {
                    e.verdicts.insert(OrderVerdict { source: o, sanitizer: s, sink: desc });
                }
            }
            OVal::Unordered(o) => {
                if let Some(reason) = self.fd.markers.ordered_reason_near(line) {
                    let reason = reason.to_owned();
                    if let Some(e) = self.emit.as_deref_mut() {
                        e.verdicts.insert(OrderVerdict {
                            source: o,
                            sanitizer: format!("marker: {reason}"),
                            sink: desc,
                        });
                    }
                } else if let Some(e) = self.emit.as_deref_mut() {
                    e.findings.insert(Finding {
                        file: self.fd.path.clone(),
                        line,
                        rule: "unordered-iter",
                        message: format!(
                            "hash-ordered iteration from {o} reaches {desc}; sort the domain \
                             first, rebind through a BTreeMap, or mark \
                             `// roadlint: ordered reason=\"…\"`"
                        ),
                    });
                }
            }
        }
    }

    /// A float accumulation saw domain provenance `v` (rule 10).
    fn float_event(&mut self, v: OVal, desc: String, line: u32) {
        match v {
            OVal::Ordered => {}
            OVal::Param(p) => {
                self.param_sinks.insert((p, format!("{desc} (float reduction)")));
            }
            OVal::Sorted(o, s) => {
                if let Some(e) = self.emit.as_deref_mut() {
                    e.verdicts.insert(OrderVerdict { source: o, sanitizer: s, sink: desc });
                }
            }
            OVal::Unordered(o) => {
                if let Some(reason) = self.fd.markers.ordered_reason_near(line) {
                    let reason = reason.to_owned();
                    if let Some(e) = self.emit.as_deref_mut() {
                        e.verdicts.insert(OrderVerdict {
                            source: o,
                            sanitizer: format!("marker: {reason}"),
                            sink: desc,
                        });
                    }
                } else if let Some(e) = self.emit.as_deref_mut() {
                    e.findings.insert(Finding {
                        file: self.fd.path.clone(),
                        line,
                        rule: "float-order",
                        message: format!(
                            "float reduction over the hash-ordered domain {o}: {desc}; \
                             reassociation breaks byte-identical builds — sort the domain, \
                             use integer/total_cmp reductions, or mark \
                             `// roadlint: ordered reason=\"…\"`"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 11: scheduling-dependence inside `std::thread::scope` fan-outs.
/// Results must land in index-addressed slots or be joined in spawn
/// order — never consumed in thread-completion order.
fn sched_check(files: &[FileData], cg: &CallGraph, id: FnId, emit: &mut Emit) {
    let info = &cg.fns[id];
    let Some((open, close)) = info.body else { return };
    let fd = &files[info.file_idx];
    let toks = &fd.lexed.tokens;
    let scope_at = (open..close).find(|&k| {
        toks[k].ident() == Some("scope") && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
    });
    let Some(scope_at) = scope_at else { return };
    let mut dirty = false;
    for k in open..close {
        let Some(site) = callgraph::call_at(toks, k) else { continue };
        if site.name == "recv" || site.name == "try_recv" {
            if let Some(reason) = fd.markers.ordered_reason_near(site.line) {
                emit.verdicts.insert(OrderVerdict {
                    source: format!(
                        "thread::scope fan-out in {} ({}:{})",
                        cg.qualified(id),
                        fd.path,
                        toks[scope_at].line
                    ),
                    sanitizer: format!("marker: {reason}"),
                    sink: format!("channel receive at {}:{}", fd.path, site.line),
                });
            } else {
                dirty = true;
                emit.findings.insert(Finding {
                    file: fd.path.clone(),
                    line: site.line,
                    rule: "sched-order",
                    message: format!(
                        "`{}()` near a thread::scope fan-out consumes results in \
                         thread-completion order; deposit into index-addressed slots \
                         (the chunks_mut pattern) and commit in deterministic order, or \
                         mark `// roadlint: ordered reason=\"…\"`",
                        site.name
                    ),
                });
            }
        }
        if site.name == "lock" {
            // `….lock()…push(…)` within the same statement: a shared
            // Vec accumulates in completion order.
            let end = stmt_semi(toks, k);
            let pushes = (k..end).any(|q| {
                toks[q].ident() == Some("push") && toks.get(q + 1).is_some_and(|t| t.is_punct('('))
            });
            if pushes && fd.markers.ordered_reason_near(site.line).is_none() {
                dirty = true;
                emit.findings.insert(Finding {
                    file: fd.path.clone(),
                    line: site.line,
                    rule: "sched-order",
                    message: "`lock().…push(…)` inside a thread::scope fan-out accumulates \
                              in thread-completion order; deposit into index-addressed \
                              slots instead, or mark `// roadlint: ordered reason=\"…\"`"
                        .to_owned(),
                });
            }
        }
    }
    if dirty {
        return;
    }
    // The fan-out is clean: record which sanctioned shape it uses.
    let sanitizer = if (open..close).any(|k| toks[k].ident() == Some("chunks_mut")) {
        Some("indexed per-slot deposit (chunks_mut)")
    } else if (open..close).any(|k| {
        toks[k].ident() == Some("join") && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
    }) {
        Some("worker handles joined in spawn order")
    } else {
        None
    };
    if let Some(sanitizer) = sanitizer {
        emit.verdicts.insert(OrderVerdict {
            source: format!(
                "thread::scope fan-out in {} ({}:{})",
                cg.qualified(id),
                fd.path,
                toks[scope_at].line
            ),
            sanitizer: sanitizer.to_owned(),
            sink: format!("deterministic commit order in {}", cg.qualified(id)),
        });
    }
}

/// `ident . m (` (or `… . m (`) directly after token `j` → `(m, index of
/// the "(")` — the gap variant also accepts `j` pointing at the last
/// token of a longer base like `self.field`.
fn method_after_gap(toks: &[Token], j: usize) -> Option<(&str, usize)> {
    if toks.get(j + 1).is_some_and(|t| t.is_punct('.')) {
        let m = toks.get(j + 2)?.ident()?;
        if toks.get(j + 3).is_some_and(|t| t.is_punct('(')) {
            return Some((m, j + 3));
        }
    }
    None
}

/// The uppercase idents of a let-ascription region, in order.
fn ascription_chain(toks: &[Token], a: usize, b: usize) -> Vec<String> {
    toks.iter()
        .take(b)
        .skip(a)
        .filter_map(|t| t.ident())
        .filter(|id| {
            id.starts_with(|c: char| c.is_ascii_uppercase()) || id == &"f64" || id == &"f32"
        })
        .map(str::to_owned)
        .collect()
}

/// Index of the `;` ending the statement starting at `a` (depth-aware).
fn stmt_semi(toks: &[Token], a: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(a) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth <= 0 {
            return j;
        }
    }
    toks.len()
}

/// True when `t` makes a following `=` a comparison rather than an
/// assignment.
fn is_cmp_prefix(t: &Token) -> bool {
    t.is_punct('=') || t.is_punct('!') || t.is_punct('<') || t.is_punct('>')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(srcs: &[(&str, &str)]) -> (Vec<Finding>, Vec<OrderVerdict>) {
        let files: Vec<FileData> = srcs.iter().map(|(p, s)| FileData::new(p, s)).collect();
        let cg = CallGraph::build(&files);
        check(&files, &cg)
    }

    #[test]
    fn unordered_loop_emitting_bytes_is_found() {
        let (f, _) = run(&[(
            "t.rs",
            "fn dump(out: &mut Vec<u8>) {
                 let map: FastMap<u32, u32> = FastMap::default();
                 for k in map.keys() { out.extend_from_slice(&k.to_le_bytes()); }
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unordered-iter");
    }

    #[test]
    fn collect_sort_then_emit_is_a_verdict() {
        let (f, v) = run(&[(
            "t.rs",
            "fn dump(map: &FastMap<u32, u32>, out: &mut Vec<u8>) {
                 let mut keys: Vec<u32> = map.keys().copied().collect();
                 keys.sort_unstable();
                 for k in keys { out.extend_from_slice(&k.to_le_bytes()); }
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].sanitizer.contains("sort_unstable"), "{v:?}");
        assert!(v[0].source.contains("keys()"), "{v:?}");
    }

    #[test]
    fn btree_rebind_and_marker_escape_are_verdicts() {
        let (f, v) = run(&[(
            "t.rs",
            "fn dump(map: &FastMap<u32, u32>, out: &mut Vec<u8>) {
                 let sorted: BTreeMap<u32, u32> =
                     map.iter().map(|(k, v)| (*k, *v)).collect();
                 for (k, _) in &sorted { out.extend_from_slice(&k.to_le_bytes()); }
                 // roadlint: ordered reason=\"xor fold is commutative\"
                 for k in map.keys() { out.extend_from_slice(&k.to_le_bytes()); }
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("BTreeMap rebind")), "{v:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("marker")), "{v:?}");
    }

    #[test]
    fn float_accumulation_over_unordered_domain_is_found() {
        let (f, _) = run(&[(
            "t.rs",
            "fn total(map: &FastMap<u32, f64>) -> f64 {
                 let mut sum: f64 = 0.0;
                 for v in map.values() { sum += v; }
                 sum
             }
             fn total2(map: &FastMap<u32, f64>) -> f64 {
                 map.values().copied().sum::<f64>()
             }",
        )]);
        assert_eq!(f.iter().filter(|x| x.rule == "float-order").count(), 2, "{f:?}");
    }

    #[test]
    fn integer_reductions_and_sorted_floats_are_quiet() {
        let (f, _) = run(&[(
            "t.rs",
            "fn count(map: &FastMap<u32, u32>) -> usize {
                 let mut n = 0usize;
                 for list in map.values() { n += list.count_ones() as usize; }
                 n + map.keys().count()
             }
             fn total(map: &FastMap<u32, f64>) -> f64 {
                 let mut vals: Vec<f64> = map.values().copied().collect();
                 vals.sort_by(|a, b| a.total_cmp(b));
                 let mut sum: f64 = 0.0;
                 for v in vals { sum += v; }
                 sum
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn order_sink_marker_makes_args_sinks() {
        let (f, v) = run(&[(
            "t.rs",
            "struct Store;
             impl Store {
                 // roadlint: order-sink
                 fn commit(&mut self, ids: &[u32]) {}
             }
             fn bad(store: &mut Store, map: &FastMap<u32, u32>) {
                 let ids: Vec<u32> = map.keys().copied().collect();
                 store.commit(&ids);
             }
             fn good(store: &mut Store, map: &FastMap<u32, u32>) {
                 let mut ids: Vec<u32> = map.keys().copied().collect();
                 ids.sort_unstable();
                 store.commit(&ids);
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unordered-iter");
        assert!(f[0].message.contains("Store::commit"), "{f:?}");
        assert!(v.iter().any(|r| r.sink.contains("Store::commit")), "{v:?}");
    }

    #[test]
    fn cross_file_unordered_chain_needs_both_files() {
        let emitter = "pub fn emit_all(keys: &[u32], out: &mut Vec<u8>) {
                           for k in keys { out.extend_from_slice(&k.to_le_bytes()); }
                       }";
        let caller = "pub fn dump(map: &FastMap<u32, u64>, out: &mut Vec<u8>) {
                          let keys: Vec<u32> = map.keys().copied().collect();
                          emit_all(&keys, out);
                      }";
        let (f, _) = run(&[("emitter.rs", emitter), ("caller.rs", caller)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "caller.rs");
        assert!(f[0].message.contains("emit_all"), "{f:?}");
        // Each file alone is clean: the chain only exists across both.
        let (fa, _) = run(&[("emitter.rs", emitter)]);
        let (fb, _) = run(&[("caller.rs", caller)]);
        assert!(fa.is_empty() && fb.is_empty(), "{fa:?} {fb:?}");
    }

    #[test]
    fn seq_of_maps_iterates_deterministically_but_elements_do_not() {
        let (f, v) = run(&[(
            "t.rs",
            "struct Store { per: Vec<Arc<FastMap<u32, u32>>> }
             impl Store {
                 fn dump(&self, out: &mut Vec<u8>) {
                     for map in &self.per {
                         let mut ks: Vec<u32> = map.keys().copied().collect();
                         ks.sort_unstable();
                         for k in ks { out.extend_from_slice(&k.to_le_bytes()); }
                     }
                 }
                 fn bad(&self, out: &mut Vec<u8>) {
                     for map in &self.per {
                         for k in map.keys() { out.extend_from_slice(&k.to_le_bytes()); }
                     }
                 }
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("keys()"), "{f:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("sort_unstable")), "{v:?}");
    }

    #[test]
    fn scope_fanout_shapes() {
        let (f, v) = run(&[(
            "t.rs",
            "fn good(queries: &[u32]) -> Vec<u32> {
                 let mut out = Vec::new();
                 std::thread::scope(|scope| {
                     let workers: Vec<_> =
                         queries.chunks(4).map(|c| scope.spawn(move || c.len() as u32)).collect();
                     for w in workers { out.push(w.join().unwrap()); }
                 });
                 out
             }
             fn bad(queries: &[u32]) -> Vec<u32> {
                 let (tx, rx) = std::sync::mpsc::channel();
                 std::thread::scope(|scope| {
                     for q in queries {
                         let tx = tx.clone();
                         scope.spawn(move || tx.send(*q));
                     }
                 });
                 let mut out = Vec::new();
                 while let Ok(x) = rx.recv() { out.push(x); }
                 out
             }",
        )]);
        let sched: Vec<_> = f.iter().filter(|x| x.rule == "sched-order").collect();
        assert_eq!(sched.len(), 1, "{f:?}");
        assert!(sched[0].message.contains("recv"), "{sched:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("joined in spawn order")), "{v:?}");
    }

    #[test]
    fn push_inside_unordered_loop_then_sort_is_clean() {
        let (f, v) = run(&[(
            "t.rs",
            "fn dump(map: &FastMap<u32, u32>, out: &mut Vec<u8>) {
                 let mut all = Vec::new();
                 for k in map.keys() { all.push(*k); }
                 all.sort_unstable();
                 for k in all { out.extend_from_slice(&k.to_le_bytes()); }
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
        assert!(v.iter().any(|r| r.sanitizer.contains("sort_unstable")), "{v:?}");
    }
}
