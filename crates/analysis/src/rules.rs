//! The per-file roadlint rules.
//!
//! * **panic** — in `serving-path` files, no `.unwrap()` / `.expect()`,
//!   no panicking macros, no slice indexing. Escapes: `allow(panic)`
//!   (line) and `allow(panic-fn)` (whole function), reasons mandatory.
//! * **hot-alloc** — inside `hot-path` fences, no fresh heap
//!   allocations (`Vec::new`, `vec![]`, `Box::new`, `format!`,
//!   `.to_vec()`, `.clone()`, `.collect()`, …). Escape: `allow(alloc)`.
//! * **atomic-ordering** — every `Ordering::Relaxed` needs an adjacent
//!   `relaxed-ok reason="…"`; `Ordering::SeqCst` is flagged outright
//!   (pick the weakest sufficient ordering, or justify via `seqcst-ok`).
//! * **decode-bound** — in `decode-fn` functions, `with_capacity`
//!   must be dominated by a bound/error check (heuristic: an `Err`,
//!   `min`, `clamp`, `assert*` token or `?` earlier in the function, up
//!   to the end of the allocating statement).
//!
//! Unit-test modules (`#[cfg(test)] mod`) are exempt from all of these.

use crate::lexer::Token;
use crate::markers::{Marker, Markers};
use crate::syntax::{self, FnSpan};
use crate::{FileData, Finding};

/// Macros that abort the current thread when reached / failing.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Types whose constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Rc",
];

/// Constructor names that allocate on the types above.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Method calls that allocate a fresh container.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "clone", "collect"];

/// Tokens accepted as evidence of a bound/error check before a
/// `with_capacity` in a decode function.
const BOUND_EVIDENCE: &[&str] =
    &["Err", "min", "clamp", "assert", "assert_eq", "debug_assert", "take"];

/// Runs every per-file rule over one parsed file.
pub fn check_file(fd: &FileData) -> Vec<Finding> {
    let file = fd.path.as_str();
    let markers = &fd.markers;
    let fns = &fd.fns;

    let mut findings = markers.hygiene.clone();
    let panic_fn_ranges = marked_fn_bodies(file, markers, Marker::AllowPanicFn, fns, &mut findings);
    let decode_fns = marked_fns(file, markers, Marker::DecodeFn, fns, &mut findings);
    // `taint-source` markers have their fn association resolved by the
    // call graph; here we only check they are not dangling.
    let _ = marked_fns(file, markers, Marker::TaintSource, fns, &mut findings);

    let ctx = Ctx { file, tokens: &fd.lexed.tokens, markers, test_ranges: &fd.test_ranges };

    if markers.serving_path() {
        panic_rule(&ctx, &panic_fn_ranges, &mut findings);
    }
    hot_alloc_rule(&ctx, &mut findings);
    atomic_ordering_rule(&ctx, &mut findings);
    decode_bound_rule(&ctx, &decode_fns, &mut findings);
    findings
}

/// Shared per-file scanning context.
pub(crate) struct Ctx<'a> {
    pub file: &'a str,
    pub tokens: &'a [Token],
    pub markers: &'a Markers,
    pub test_ranges: &'a [(usize, usize)],
}

impl<'a> Ctx<'a> {
    fn excluded(&self, i: usize) -> bool {
        syntax::in_ranges(self.test_ranges, i)
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding { file: self.file.to_owned(), line, rule, message }
    }

    /// True when an escape marker (with a reason) sits on the finding's
    /// line or the line directly above it.
    fn line_escaped(&self, marker: &Marker, line: u32) -> bool {
        self.markers.has_on_line(marker, line)
            || (line > 0 && self.markers.has_on_line(marker, line - 1))
    }
}

/// Resolves `marker` occurrences to the body ranges of the functions they
/// precede; a marker with no function within 5 lines is a hygiene finding.
fn marked_fn_bodies(
    file: &str,
    markers: &Markers,
    marker: Marker,
    fns: &[FnSpan],
    findings: &mut Vec<Finding>,
) -> Vec<(usize, usize)> {
    marked_fns(file, markers, marker, fns, findings).iter().filter_map(|f| f.body).collect()
}

/// The functions directly following each occurrence of `marker`.
fn marked_fns<'f>(
    file: &str,
    markers: &Markers,
    marker: Marker,
    fns: &'f [FnSpan],
    findings: &mut Vec<Finding>,
) -> Vec<&'f FnSpan> {
    let mut out = Vec::new();
    for m in markers.markers.iter().filter(|m| m.marker == marker) {
        let next = fns.iter().filter(|f| f.line > m.line).min_by_key(|f| f.line);
        match next {
            Some(f) if f.line - m.line <= 5 => out.push(f),
            _ => findings.push(Finding {
                file: file.to_owned(),
                line: m.line,
                rule: "marker",
                message: format!(
                    "{:?} marker is not directly above a function (nearest `fn` is too far)",
                    marker
                ),
            }),
        }
    }
    out
}

/// Rule 1: panic-freedom of `serving-path` files.
fn panic_rule(ctx: &Ctx, allow_fn_ranges: &[(usize, usize)], findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let mut report = |i: usize, line: u32, msg: String| {
        if ctx.excluded(i)
            || syntax::in_ranges(allow_fn_ranges, i)
            || ctx.line_escaped(&Marker::AllowPanic, line)
        {
            return;
        }
        findings.push(ctx.finding("panic", line, msg));
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.is_punct('.') {
            if let (Some(m), true) = (
                toks.get(i + 1).and_then(|t| t.ident()),
                toks.get(i + 2).is_some_and(|t| t.is_punct('(')),
            ) {
                if m == "unwrap" || m == "expect" {
                    report(
                        i + 1,
                        toks[i + 1].line,
                        format!(
                            ".{m}() can panic on the serving path; propagate the error instead"
                        ),
                    );
                }
            }
        }
        // panicking macros
        if let Some(name) = t.ident() {
            if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                report(i, t.line, format!("{name}! can panic on the serving path"));
            }
        }
        // slice indexing: `[` directly after an expression tail
        if t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let indexes = prev.ident().is_some() || prev.is_punct(')') || prev.is_punct(']');
            // `ident![…]` is a macro invocation, not an index.
            let is_macro = prev.ident().is_some() && i >= 2 && toks[i - 2].is_punct('!');
            // Exempt attribute-shaped `ident [` after `#` (not expressible
            // here, `#[…]` already has `#` as prev) — nothing to do.
            if indexes && !is_macro {
                report(
                    i,
                    t.line,
                    "slice/array indexing can panic on the serving path; use .get()".to_owned(),
                );
            }
        }
    }
}

/// Rule 3: no fresh heap allocations inside hot-path fences.
fn hot_alloc_rule(ctx: &Ctx, findings: &mut Vec<Finding>) {
    let ranges = ctx.markers.hot_ranges();
    if ranges.is_empty() {
        return;
    }
    let in_fence = |line: u32| ranges.iter().any(|&(a, b)| line > a && line < b);
    let toks = ctx.tokens;
    let mut report = |i: usize, line: u32, msg: String| {
        if ctx.excluded(i) || ctx.line_escaped(&Marker::AllowAlloc, line) {
            return;
        }
        findings.push(ctx.finding("hot-alloc", line, msg));
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if !in_fence(t.line) {
            continue;
        }
        if let Some(name) = t.ident() {
            // `Vec::new(…)`-shaped constructor paths.
            if ALLOC_TYPES.contains(&name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(ctor) = toks.get(i + 3).and_then(|t| t.ident()) {
                    if ALLOC_CTORS.contains(&ctor) {
                        report(
                            i,
                            t.line,
                            format!("{name}::{ctor} allocates inside a hot-path fence; reuse workspace buffers"),
                        );
                    }
                }
            }
            // Allocating macros.
            if (name == "vec" || name == "format")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                report(i, t.line, format!("{name}! allocates inside a hot-path fence"));
            }
        }
        // Allocating method calls (`Arc::clone(&x)` is path-form and
        // intentionally not matched — it only bumps a refcount).
        if t.is_punct('.') {
            if let (Some(m), true) = (
                toks.get(i + 1).and_then(|t| t.ident()),
                toks.get(i + 2).is_some_and(|t| t.is_punct('(')),
            ) {
                if ALLOC_METHODS.contains(&m) {
                    report(
                        i + 1,
                        toks[i + 1].line,
                        format!(".{m}() allocates inside a hot-path fence"),
                    );
                }
            }
        }
    }
}

/// Rule 4: atomic-ordering hygiene, workspace-wide.
fn atomic_ordering_rule(ctx: &Ctx, findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if toks[i].ident() != Some("Ordering")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        let Some(ord) = toks.get(i + 3).and_then(|t| t.ident()) else { continue };
        if ctx.excluded(i) {
            continue;
        }
        let line = toks[i + 3].line;
        match ord {
            "Relaxed" => {
                let ok = ctx.markers.has_on_line(&Marker::RelaxedOk, line)
                    || (1..=2)
                        .any(|d| line > d && ctx.markers.has_on_line(&Marker::RelaxedOk, line - d));
                if !ok {
                    findings.push(
                        ctx.finding(
                            "atomic-ordering",
                            line,
                            "Ordering::Relaxed needs an adjacent relaxed-ok reason=\"…\" marker"
                                .to_owned(),
                        ),
                    );
                }
            }
            "SeqCst" => {
                let ok = ctx.markers.has_on_line(&Marker::SeqCstOk, line)
                    || (1..=2)
                        .any(|d| line > d && ctx.markers.has_on_line(&Marker::SeqCstOk, line - d));
                if !ok {
                    findings.push(ctx.finding(
                        "atomic-ordering",
                        line,
                        "bare Ordering::SeqCst: pick the weakest sufficient ordering or justify with seqcst-ok reason=\"…\"".to_owned(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Rule 5: `with_capacity` in decode functions must follow a bound check.
fn decode_bound_rule(ctx: &Ctx, decode_fns: &[&FnSpan], findings: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for f in decode_fns {
        let Some((body_start, body_end)) = f.body else { continue };
        for i in body_start..body_end {
            if toks[i].ident() != Some("with_capacity")
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            // Evidence window: function body start up to the end of the
            // allocating statement (so `n.min(cap)` inside the call
            // counts).
            let stmt_end = (i..body_end).find(|&k| toks[k].is_punct(';')).unwrap_or(body_end);
            let evidence = (body_start..stmt_end).any(|k| {
                toks[k].ident().is_some_and(|id| BOUND_EVIDENCE.contains(&id))
                    || toks[k].is_punct('?')
            });
            if !evidence {
                findings.push(ctx.finding(
                    "decode-bound",
                    toks[i].line,
                    format!(
                        "with_capacity in decode function `{}` is not preceded by a bound/error check on the decoded count",
                        f.name
                    ),
                ));
            }
        }
    }
}
