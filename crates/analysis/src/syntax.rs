//! Shared token-shape helpers: brace matching, function extents and
//! `#[cfg(test)] mod` exclusion ranges.

use crate::lexer::Token;

/// Returns the index of the delimiter matching the opener at `open`
/// (`(`/`)`, `[`/`]` or `{`/`}`), or `tokens.len()` when unterminated.
pub fn match_delim(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match &tokens[open].tok {
        crate::lexer::Tok::Punct('(') => ('(', ')'),
        crate::lexer::Tok::Punct('[') => ('[', ']'),
        crate::lexer::Tok::Punct('{') => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Scanning backwards from `close`, the index of the matching opener.
pub fn match_delim_back(tokens: &[Token], close: usize) -> usize {
    let (o, c) = match &tokens[close].tok {
        crate::lexer::Tok::Punct(')') => ('(', ')'),
        crate::lexer::Tok::Punct(']') => ('[', ']'),
        crate::lexer::Tok::Punct('}') => ('{', '}'),
        _ => return close,
    };
    let mut depth = 0i64;
    for i in (0..=close).rev() {
        if tokens[i].is_punct(c) {
            depth += 1;
        } else if tokens[i].is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    0
}

/// One function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range `(open_brace, close_brace)` of the body; `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the signature's return type mentions a `…Guard` type —
    /// the lock-order rule treats a call to such a function like a lock
    /// acquisition held by the caller.
    pub guard_returning: bool,
}

impl FnSpan {
    /// True when token index `i` falls inside this function's body.
    pub fn contains(&self, i: usize) -> bool {
        self.body.is_some_and(|(a, b)| i > a && i < b)
    }
}

/// Extracts every `fn` item (including nested ones) with its body extent.
pub fn functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() == Some("fn") {
            let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
                i += 1;
                continue;
            };
            // Parameter list: first `(` after the name (skipping generics).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('(') {
                j += 1;
            }
            if j >= tokens.len() {
                break;
            }
            let params_end = match_delim(tokens, j);
            // Between the params and the body: return type / where clause.
            // A `;` first means a bodiless declaration.
            let mut k = params_end + 1;
            let mut guard_returning = false;
            let mut body = None;
            while k < tokens.len() {
                if tokens[k].is_punct(';') {
                    break;
                }
                if tokens[k].is_punct('{') {
                    body = Some((k, match_delim(tokens, k)));
                    break;
                }
                if tokens[k].ident().is_some_and(|id| id.contains("Guard")) {
                    guard_returning = true;
                }
                k += 1;
            }
            out.push(FnSpan {
                name: name.to_owned(),
                line: tokens[i].line,
                fn_idx: i,
                body,
                guard_returning,
            });
            // Continue scanning *inside* the body too (nested fns, and the
            // linear rules below want every token anyway).
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Token ranges covered by `#[cfg(test)] mod … { … }` items: unit-test
/// modules are exempt from every serving-path rule.
pub fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].ident() == Some("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].ident() == Some("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip further attributes, visibility and the `mod name` tokens up
        // to the opening brace; bail if something else follows.
        let mut j = i + 7;
        let mut saw_mod = false;
        while j < tokens.len() {
            match tokens[j].ident() {
                Some("mod") => {
                    saw_mod = true;
                    j += 1;
                }
                Some(_) => j += 1,
                None if tokens[j].is_punct('#')
                    && j + 1 < tokens.len()
                    && tokens[j + 1].is_punct('[') =>
                {
                    j = match_delim(tokens, j + 1) + 1;
                }
                None if tokens[j].is_punct('{') => break,
                None => break,
            }
        }
        if saw_mod && j < tokens.len() && tokens[j].is_punct('{') {
            let end = match_delim(tokens, j);
            out.push((j, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// True when token index `i` is inside any of `ranges` (exclusive of the
/// braces themselves is fine for every rule's purposes).
pub fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn function_extents_and_guard_detection() {
        let src = "
            impl X {
                fn plain(&self) -> u32 { 1 }
                fn guarded(&self) -> Result<MutexGuard<'_, T>, E> { self.m.lock() }
                fn decl(&self);
            }";
        let l = lex(src);
        let fns = functions(&l.tokens);
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].guard_returning);
        assert!(fns[1].guard_returning);
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn test_mods_are_found() {
        let src = "
            fn live() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }";
        let l = lex(src);
        let ranges = test_mod_ranges(&l.tokens);
        assert_eq!(ranges.len(), 1);
        let unwrap_idx =
            l.tokens.iter().position(|t| t.ident() == Some("unwrap")).expect("unwrap token");
        assert!(in_ranges(&ranges, unwrap_idx));
        let live_idx = l.tokens.iter().position(|t| t.ident() == Some("live")).expect("live");
        assert!(!in_ranges(&ranges, live_idx));
    }
}
