// roadlint: serving-path
pub struct E;

// roadlint: decode-fn
pub fn decode_unbounded(buf: &[u8], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(buf);
    out
}

// roadlint: decode-fn
pub fn decode_bounded(buf: &[u8], n: usize) -> Result<Vec<u8>, E> {
    if n > buf.len() {
        return Err(E);
    }
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(buf);
    Ok(out)
}
