// roadlint: serving-path
// All three swallowed-Result shapes on the serving path: each must be a
// finding.
pub struct S {
    dirty: bool,
}

impl S {
    fn flush(&self) -> Result<(), u32> {
        if self.dirty {
            return Err(1);
        }
        Ok(())
    }

    pub fn serve(&self) {
        let _ = self.flush();
        self.flush();
        self.flush().ok();
    }
}
