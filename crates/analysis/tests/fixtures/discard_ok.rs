// roadlint: serving-path
// Propagated or explicitly-escaped Results are not swallows.
pub struct S {
    dirty: bool,
}

impl S {
    fn flush(&self) -> Result<(), u32> {
        if self.dirty {
            return Err(1);
        }
        Ok(())
    }

    pub fn serve(&self) -> Result<(), u32> {
        self.flush()?;
        let _ = self.flush()?;
        // roadlint: allow(discard) reason="best-effort cache warm on the side"
        let _ = self.flush();
        Ok(())
    }
}
