//! Float-reduction-order fixture: f64 accumulation over hash-ordered
//! domains — float addition does not reassociate, so each of these can
//! produce different bytes on different runs.

pub fn total_weight(weights: &FastMap<u32, f64>) -> f64 {
    let mut total: f64 = 0.0;
    for w in weights.values() {
        total += w;
    }
    total
}

pub fn total_inline(weights: &FastMap<u32, f64>) -> f64 {
    weights.values().copied().sum::<f64>()
}

pub fn heaviest(weights: &FastMap<u32, f64>) -> Option<u32> {
    weights.iter().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(k, _)| *k)
}
