//! Sanctioned counterparts of `float_order_bad.rs`: every float
//! reduction's domain order is fixed first (or a deterministic
//! `total_cmp` tie-break is used), and integer reductions stay exempt.

pub fn total_weight(weights: &FastMap<u32, f64>) -> f64 {
    let mut vals: Vec<f64> = weights.values().copied().collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    let mut total: f64 = 0.0;
    for w in vals {
        total += w;
    }
    total
}

pub fn heaviest(weights: &FastMap<u32, f64>) -> Option<u32> {
    weights.iter().max_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0))).map(|(k, _)| *k)
}

/// Integer folds are order-independent; the rule must stay quiet here.
pub fn edge_count(lists: &FastMap<u32, Vec<u32>>) -> usize {
    let mut n = 0usize;
    for list in lists.values() {
        n += list.len();
    }
    n + lists.keys().count()
}
