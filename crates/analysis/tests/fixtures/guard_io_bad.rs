// roadlint: serving-path
// An `image` guard held across a call whose typed resolution reaches
// PageStore IO (Pool::alloc acquires `store`): rule 7, found through the
// call graph, not at the acquisition site.
use std::sync::Mutex;

pub struct Pool {
    store: Mutex<u32>,
}

impl Pool {
    pub fn alloc(&self) -> u32 {
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        *s
    }
}

pub struct Eng {
    image: Mutex<u32>,
    pool: Pool,
}

impl Eng {
    pub fn fault(&self) -> u32 {
        let g = self.image.lock().unwrap_or_else(|p| p.into_inner());
        *g + self.pool.alloc()
    }
}
