// roadlint: serving-path
// The two sanctioned ways to run PageStore IO with a guard held: under
// the pool's own stripe (the documented stripe -> store order), or with
// a reasoned escape.
use std::sync::Mutex;

pub struct Pool {
    store: Mutex<u32>,
    stripe: Mutex<u32>,
}

impl Pool {
    pub fn alloc(&self) -> u32 {
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        *s
    }

    pub fn fault_under_stripe(&self) -> u32 {
        let g = self.stripe.lock().unwrap_or_else(|p| p.into_inner());
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        *g + *s
    }
}

pub struct Eng {
    image: Mutex<u32>,
    pool: Pool,
}

impl Eng {
    pub fn fault_escaped(&self) -> u32 {
        let g = self.image.lock().unwrap_or_else(|p| p.into_inner());
        // roadlint: allow(io-under-lock) reason="fixture: one-time load serialized by this guard"
        *g + self.pool.alloc()
    }
}
