// roadlint: serving-path
pub fn expand(work: &mut Vec<u32>, out: &mut String) {
    // roadlint: hot-path
    while let Some(x) = work.pop() {
        let fresh = Vec::new();
        let boxed = Box::new(x);
        let v = vec![x];
        let s = format!("{x}");
        let c = v.clone();
        // roadlint: allow(alloc) reason="cold error-path formatting, once per failure"
        let excused = x.to_string();
        out.push_str(&excused);
        drop((fresh, boxed, s, c));
    }
    // roadlint: end hot-path
    let outside = Vec::new();
    drop::<Vec<u32>>(outside);
}
