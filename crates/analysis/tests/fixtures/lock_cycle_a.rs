// roadlint: serving-path
// Half of the cross-file lock-cycle pair: append -> store (the
// documented direction). Clean on its own.
use std::sync::Mutex;

pub struct PoolA {
    append: Mutex<u32>,
    store: Mutex<u32>,
}

impl PoolA {
    pub fn forward(&self) -> u32 {
        let a = self.append.lock().unwrap_or_else(|p| p.into_inner());
        // roadlint: allow(io-under-lock) reason="fixture: cursor claim atomic with the store tail"
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        *a + *s
    }
}
