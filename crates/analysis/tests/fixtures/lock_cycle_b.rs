// roadlint: serving-path
// The other half of the cross-file lock-cycle pair: store -> append,
// the reverse of lock_cycle_a. Clean on its own; a cycle only when both
// files are in the same workspace graph.
use std::sync::Mutex;

pub struct PoolB {
    append: Mutex<u32>,
    store: Mutex<u32>,
}

impl PoolB {
    pub fn backward(&self) -> u32 {
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        let a = self.append.lock().unwrap_or_else(|p| p.into_inner());
        *a + *s
    }
}
