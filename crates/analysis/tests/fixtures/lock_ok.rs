// roadlint: serving-path
use std::sync::Mutex;

pub struct Pool {
    append: Mutex<u32>,
    store: Mutex<u32>,
}

impl Pool {
    pub fn forward(&self) -> u32 {
        let a = self.append.lock().unwrap_or_else(|p| p.into_inner());
        // roadlint: allow(io-under-lock) reason="fixture: cursor update atomic with the store claim"
        let s = self.store.lock().unwrap_or_else(|p| p.into_inner());
        *a + *s
    }

    pub fn also_forward(&self) -> u32 {
        let a = self.append.lock().unwrap_or_else(|p| p.into_inner());
        // roadlint: allow(io-under-lock) reason="fixture: delegates to forward, same discipline"
        *a + self.forward()
    }
}
