//! Cross-file fixture, file 2: collects hash-map keys unsorted and hands
//! them to the emitting helper from `order_emit_helper.rs`. Either file
//! alone is clean — the unordered-iteration chain only exists across the
//! workspace call graph, which is exactly what file-local analysis
//! missed.

pub fn dump(map: &FastMap<u32, u64>, out: &mut Vec<u8>) {
    let keys: Vec<u32> = map.keys().copied().collect();
    emit_all(&keys, out);
}
