//! Cross-file fixture, file 1: a helper that loops over its slice
//! parameter and emits bytes — an order sink for every caller, visible
//! only through the workspace call graph (its parameter's order reaches
//! `extend_from_slice`, so the sink propagates into the summary).

pub fn emit_all(keys: &[u32], out: &mut Vec<u8>) {
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
}
