//! Unordered-iteration fixture: hash-map iteration reaching byte output
//! and an order-sensitive commit unsorted — both must fire.

pub struct Store {
    pub shortcuts: FastMap<u32, Vec<u32>>,
}

impl Store {
    // roadlint: order-sink
    pub fn commit(&mut self, ids: &[u32]) {
        let _count = ids.len();
    }

    /// Emits records in whatever order the hash map yields — the bug the
    /// determinism prover exists to catch.
    pub fn dump(&self, out: &mut Vec<u8>) {
        for (k, _) in &self.shortcuts {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
}

pub fn flush(store: &mut Store, pending: &FastMap<u32, u32>) {
    let ids: Vec<u32> = pending.keys().copied().collect();
    store.commit(&ids);
}
