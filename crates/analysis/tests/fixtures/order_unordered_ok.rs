//! Sanitized counterpart of `order_unordered_bad.rs`: the same flows with
//! their order fixed — each lands in the verdict table instead of firing.

pub struct Store {
    pub shortcuts: FastMap<u32, Vec<u32>>,
}

impl Store {
    // roadlint: order-sink
    pub fn commit(&mut self, ids: &[u32]) {
        let _count = ids.len();
    }

    /// Collect-then-sort: the canonical sanitizer.
    pub fn dump(&self, out: &mut Vec<u8>) {
        let mut keys: Vec<u32> = self.shortcuts.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }

    /// Rebinding through a BTreeMap fixes the order structurally.
    pub fn dump_btree(&self, out: &mut Vec<u8>) {
        let sorted: BTreeMap<u32, usize> =
            self.shortcuts.iter().map(|(&k, list)| (k, list.len())).collect();
        for (k, _) in &sorted {
            out.extend_from_slice(&k.to_le_bytes());
        }
    }
}

pub fn flush(store: &mut Store, pending: &FastMap<u32, u32>) {
    let mut ids: Vec<u32> = pending.keys().copied().collect();
    ids.sort_unstable();
    store.commit(&ids);
}

/// A reasoned escape: the emitted region is rewritten before it can
/// reach durable bytes, so the iteration order is genuinely irrelevant.
pub fn scratch_tags(map: &FastMap<u32, u32>, out: &mut Vec<u8>) {
    // roadlint: ordered reason="scratch region is re-sorted by the compaction pass before hitting disk"
    for k in map.keys() {
        out.extend_from_slice(&k.to_le_bytes());
    }
}
