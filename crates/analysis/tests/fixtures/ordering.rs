use std::sync::atomic::{AtomicU64, Ordering};

pub fn counters(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed);
    // roadlint: relaxed-ok reason="diagnostic counter, no ordering required"
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::SeqCst);
    // roadlint: seqcst-ok reason="startup handshake; cost irrelevant, simplicity wins"
    c.load(Ordering::SeqCst);
    c.load(Ordering::Acquire)
}
