// roadlint: serving-path
pub fn serve(xs: &[u32], r: Result<u32, ()>) -> u32 {
    let a = r.unwrap();
    let b = Some(a).expect("present");
    if xs.is_empty() {
        panic!("empty");
    }
    debug_assert!(b > 0);
    xs[0] + b
}
