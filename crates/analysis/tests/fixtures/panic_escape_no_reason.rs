// roadlint: serving-path
pub fn serve(r: Result<u32, ()>) -> u32 {
    // roadlint: allow(panic)
    r.unwrap()
}
