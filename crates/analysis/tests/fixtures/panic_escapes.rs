// roadlint: serving-path
pub fn serve(xs: &[u32]) -> u32 {
    // roadlint: allow(panic) reason="index bounded by the is_empty check above"
    let head = xs[0];
    head
}

// roadlint: allow(panic-fn) reason="build-time helper; inputs validated by the caller"
pub fn build_only(r: Result<u32, ()>) -> u32 {
    r.unwrap() + r.expect("checked")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_panic() {
        let v = vec![1u32];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
