//! Scheduling-dependence fixture: thread::scope fan-outs whose results
//! are consumed in thread-completion order — both shapes must fire.

/// Channel receive: arrival order depends on which worker finishes first.
pub fn batch_completion_order(queries: &[u32]) -> Vec<u32> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for chunk in queries.chunks(8) {
            let tx = tx.clone();
            scope.spawn(move || {
                for q in chunk {
                    if tx.send(*q).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);
    let mut out = Vec::new();
    while let Ok(x) = rx.recv() {
        out.push(x);
    }
    out
}

/// Shared-Vec push: the Mutex serializes the pushes but not their order.
pub fn batch_mutex_push(queries: &[u32], results: &std::sync::Mutex<Vec<u32>>) {
    std::thread::scope(|scope| {
        for chunk in queries.chunks(8) {
            scope.spawn(move || {
                for q in chunk {
                    // roadlint: lock(batch-results)
                    results.lock().unwrap().push(*q);
                }
            });
        }
    });
}
