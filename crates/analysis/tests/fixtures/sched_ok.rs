//! The sanctioned fan-out shape: every worker writes its own
//! index-addressed slots, so the commit layout is identical no matter
//! which worker finishes first. Lands in the verdict table.

pub fn batch_indexed(queries: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; queries.len()];
    std::thread::scope(|scope| {
        for (qs, slots) in queries.chunks(8).zip(out.chunks_mut(8)) {
            scope.spawn(move || {
                for (q, slot) in qs.iter().zip(slots.iter_mut()) {
                    *slot = q + 1;
                }
            });
        }
    });
    out
}
