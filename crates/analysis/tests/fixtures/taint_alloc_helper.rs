// The allocating third of the cross-file taint fixture. File-locally
// `n` is just a parameter of unknown provenance — no finding.
pub fn alloc_records(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}
