// An untrusted length (decoded from raw bytes) driving all three sink
// shapes without a sanitizer: every one must be a taint finding.
pub fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

pub fn decode(b: &[u8]) -> Vec<u32> {
    let n = le_u32(b) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(0);
    }
    let first = b[n];
    out.push(first as u32);
    out
}
