// The connecting third of the cross-file taint fixture: no byte read and
// no allocation appears in THIS file, so the file-local decode-bound rule
// of roadlint v1 provably could not see the flow — only the workspace
// call graph ties read_count's bytes to alloc_records' capacity.
pub fn decode(b: &[u8]) -> Vec<u64> {
    let n = read_count(b) as usize;
    alloc_records(n)
}
