// Each sanctioned bounding idiom must suppress the taint finding and
// appear in the verdict table (source -> sanitizer -> sink) instead.
pub fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

pub fn guarded(b: &[u8]) -> Vec<u32> {
    let n = le_u32(b) as usize;
    if n > b.len() / 4 {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

pub fn bounded(b: &[u8]) -> Vec<u32> {
    let n = le_u32(b) as usize;
    Vec::with_capacity(n.min(b.len()))
}

pub fn marked(b: &[u8]) -> Vec<u32> {
    let n = le_u32(b) as usize;
    // roadlint: sanitized reason="n is pre-validated by the section walker"
    Vec::with_capacity(n)
}
