// The byte-reading third of the cross-file taint fixture. Nothing here
// allocates or indexes, so a file-local rule sees nothing suspicious.
pub fn read_count(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
