// roadlint: serving-path
use std::sync::Mutex;

pub struct P {
    mystery: Mutex<u32>,
}

impl P {
    pub fn touch(&self) -> u32 {
        let g = self.mystery.lock().unwrap_or_else(|p| p.into_inner());
        *g
    }
}
