//! Fixture self-tests: every rule must fire on its bad fixture and stay
//! quiet on the corresponding escape/clean fixture. Each fixture is
//! analysed in isolation so lock-class call graphs do not bleed between
//! them.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use road_analysis::{analyze_sources, Analysis, Finding};

fn analyze_fixture(name: &str) -> Analysis {
    analyze_fixtures(&[name])
}

/// Analyzes several fixtures as ONE workspace — how the cross-file rules
/// (call-graph taint, lock cycles split over files) are exercised.
fn analyze_fixtures(names: &[&str]) -> Analysis {
    let srcs: Vec<(String, String)> = names
        .iter()
        .map(|name| {
            let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (name.to_string(), src)
        })
        .collect();
    analyze_sources(srcs.iter().map(|(n, s)| (n.as_str(), s.as_str())))
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn panic_rule_fires_on_every_forbidden_shape() {
    let a = analyze_fixture("panic_bad.rs");
    let panics: Vec<_> = a.findings.iter().filter(|f| f.rule == "panic").collect();
    // unwrap, expect, panic!, debug_assert!, xs[0]
    assert_eq!(panics.len(), 5, "{:?}", a.findings);
    let msgs: String = panics.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains(".unwrap()"));
    assert!(msgs.contains(".expect()"));
    assert!(msgs.contains("panic!"));
    assert!(msgs.contains("debug_assert!"));
    assert!(msgs.contains("indexing"));
}

#[test]
fn panic_escapes_suppress_with_reasons() {
    let a = analyze_fixture("panic_escapes.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn panic_escape_without_reason_suppresses_nothing() {
    let a = analyze_fixture("panic_escape_no_reason.rs");
    let r = rules(&a.findings);
    // The reasonless escape is itself a finding AND the unwrap still fires.
    assert!(r.contains(&"marker"), "{:?}", a.findings);
    assert!(r.contains(&"panic"), "{:?}", a.findings);
}

#[test]
fn hot_alloc_rule_fires_inside_fences_only() {
    let a = analyze_fixture("hot_alloc.rs");
    let allocs: Vec<_> = a.findings.iter().filter(|f| f.rule == "hot-alloc").collect();
    // Vec::new, Box::new, vec!, format!, .clone() — the escaped
    // .to_string() and the Vec::new outside the fence stay quiet.
    assert_eq!(allocs.len(), 5, "{:?}", a.findings);
    assert!(a.findings.iter().all(|f| f.rule == "hot-alloc"), "{:?}", a.findings);
}

#[test]
fn atomic_ordering_rule_requires_justifications() {
    let a = analyze_fixture("ordering.rs");
    let atomics: Vec<_> = a.findings.iter().filter(|f| f.rule == "atomic-ordering").collect();
    assert_eq!(atomics.len(), 2, "{:?}", a.findings);
    assert!(atomics[0].message.contains("Relaxed"));
    assert!(atomics[1].message.contains("SeqCst"));
}

#[test]
fn decode_bound_rule_requires_a_dominating_check() {
    let a = analyze_fixture("decode_bound.rs");
    let bounds: Vec<_> = a.findings.iter().filter(|f| f.rule == "decode-bound").collect();
    assert_eq!(bounds.len(), 1, "{:?}", a.findings);
    assert!(bounds[0].message.contains("decode_unbounded"));
}

#[test]
fn lock_order_rule_finds_opposite_acquisition_orders() {
    let a = analyze_fixture("lock_cycle.rs");
    let order: Vec<_> = a.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(order.len(), 1, "{:?}", a.findings);
    assert!(order[0].message.contains("lock-order cycle"));
    assert!(order[0].message.contains("append"));
    assert!(order[0].message.contains("store"));
}

#[test]
fn consistent_lock_order_is_clean_and_graphed() {
    let a = analyze_fixture("lock_ok.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert!(a.graph.edges.contains_key(&("append".to_owned(), "store".to_owned())));
}

#[test]
fn unclassified_acquisition_is_a_finding() {
    let a = analyze_fixture("unclassified_lock.rs");
    let order: Vec<_> = a.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(order.len(), 1, "{:?}", a.findings);
    assert!(order[0].message.contains("unrecognized receiver"));
}

#[test]
fn taint_rule_fires_on_every_sink_shape() {
    let a = analyze_fixture("taint_bad.rs");
    let taint: Vec<_> = a.findings.iter().filter(|f| f.rule == "taint").collect();
    assert_eq!(taint.len(), 3, "{:?}", a.findings);
    let msgs: String = taint.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains("with_capacity()"), "{msgs}");
    assert!(msgs.contains("loop bound"), "{msgs}");
    assert!(msgs.contains("slice index/range"), "{msgs}");
}

#[test]
fn taint_sanitizers_suppress_and_appear_in_the_verdict_table() {
    let a = analyze_fixture("taint_sanitized.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert_eq!(a.taint.len(), 3, "{:?}", a.taint);
    let sanitizers: String = a.taint.iter().map(|v| v.sanitizer.as_str()).collect();
    assert!(sanitizers.contains("guard"), "{sanitizers}");
    assert!(sanitizers.contains("min()"), "{sanitizers}");
    assert!(sanitizers.contains("marker:"), "{sanitizers}");
}

#[test]
fn cross_file_taint_needs_the_workspace_call_graph() {
    // Each file alone is what v1's file-local decode-bound rule saw:
    // nothing. The flow source -> helper -> sink spans three files.
    for f in ["taint_source_reader.rs", "taint_alloc_helper.rs", "taint_decode_flow.rs"] {
        let a = analyze_fixture(f);
        assert!(a.findings.is_empty(), "{f} alone should be clean: {:?}", a.findings);
    }
    let a = analyze_fixtures(&[
        "taint_source_reader.rs",
        "taint_alloc_helper.rs",
        "taint_decode_flow.rs",
    ]);
    let taint: Vec<_> = a.findings.iter().filter(|f| f.rule == "taint").collect();
    assert_eq!(taint.len(), 1, "{:?}", a.findings);
    assert!(taint[0].message.contains("read_count"), "{:?}", taint[0]);
}

#[test]
fn cross_file_lock_cycle_needs_both_files() {
    for f in ["lock_cycle_a.rs", "lock_cycle_b.rs"] {
        let a = analyze_fixture(f);
        assert!(a.findings.is_empty(), "{f} alone should be clean: {:?}", a.findings);
    }
    let a = analyze_fixtures(&["lock_cycle_a.rs", "lock_cycle_b.rs"]);
    let order: Vec<_> = a.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(order.len(), 1, "{:?}", a.findings);
    assert!(order[0].message.contains("lock-order cycle"));
    assert!(order[0].message.contains("append -> store"));
    assert!(order[0].message.contains("store -> append"));
}

#[test]
fn guard_across_io_is_found_through_the_call_graph() {
    let a = analyze_fixture("guard_io_bad.rs");
    let io: Vec<_> = a.findings.iter().filter(|f| f.rule == "guard-io").collect();
    assert_eq!(io.len(), 1, "{:?}", a.findings);
    assert!(io[0].message.contains("`image`"), "{:?}", io[0]);
    assert!(io[0].message.contains("Pool::alloc"), "{:?}", io[0]);
    // The acquired-while-held edge is computed from the same resolution.
    assert!(a.graph.edges.contains_key(&("image".to_owned(), "store".to_owned())));

    let ok = analyze_fixture("guard_io_ok.rs");
    assert!(ok.findings.is_empty(), "{:?}", ok.findings);
}

#[test]
fn swallowed_results_fire_and_escape() {
    let a = analyze_fixture("discard_bad.rs");
    let sw: Vec<_> = a.findings.iter().filter(|f| f.rule == "swallowed-error").collect();
    assert_eq!(sw.len(), 3, "{:?}", a.findings);
    let msgs: String = sw.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains("`let _ =`"), "{msgs}");
    assert!(msgs.contains("bare `flush"), "{msgs}");
    assert!(msgs.contains(".ok()"), "{msgs}");

    let ok = analyze_fixture("discard_ok.rs");
    assert!(ok.findings.is_empty(), "{:?}", ok.findings);
}

#[test]
fn unordered_iteration_fires_on_emission_and_commits() {
    let a = analyze_fixture("order_unordered_bad.rs");
    let o: Vec<_> = a.findings.iter().filter(|f| f.rule == "unordered-iter").collect();
    assert_eq!(o.len(), 2, "{:?}", a.findings);
    let msgs: String = o.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains("byte output"), "{msgs}");
    assert!(msgs.contains("order-sensitive commit Store::commit"), "{msgs}");
}

#[test]
fn order_sanitizers_suppress_and_appear_in_the_verdict_table() {
    let a = analyze_fixture("order_unordered_ok.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    let sanitizers: String = a.order.iter().map(|v| v.sanitizer.as_str()).collect();
    assert!(sanitizers.contains("sort_unstable()"), "{sanitizers}");
    assert!(sanitizers.contains("BTreeMap rebind"), "{sanitizers}");
    assert!(sanitizers.contains("marker:"), "{sanitizers}");
}

#[test]
fn float_reduction_order_fires_and_sorted_domains_suppress() {
    let a = analyze_fixture("float_order_bad.rs");
    let o: Vec<_> = a.findings.iter().filter(|f| f.rule == "float-order").collect();
    assert_eq!(o.len(), 3, "{:?}", a.findings);
    let msgs: String = o.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains("`total +=`"), "{msgs}");
    assert!(msgs.contains(".sum()"), "{msgs}");
    assert!(msgs.contains("partial_cmp"), "{msgs}");

    let ok = analyze_fixture("float_order_ok.rs");
    assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    assert!(ok.order.iter().any(|v| v.sanitizer.contains("sort_by()")), "{:?}", ok.order);
}

#[test]
fn scheduling_dependence_fires_and_indexed_deposits_suppress() {
    let a = analyze_fixture("sched_bad.rs");
    let o: Vec<_> = a.findings.iter().filter(|f| f.rule == "sched-order").collect();
    assert_eq!(o.len(), 2, "{:?}", a.findings);
    let msgs: String = o.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains("recv"), "{msgs}");
    assert!(msgs.contains("lock()"), "{msgs}");

    let ok = analyze_fixture("sched_ok.rs");
    assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    assert!(ok.order.iter().any(|v| v.sanitizer.contains("chunks_mut")), "{:?}", ok.order);
}

#[test]
fn cross_file_unordered_chain_needs_the_workspace_call_graph() {
    for f in ["order_emit_helper.rs", "order_cross_file.rs"] {
        let a = analyze_fixture(f);
        assert!(a.findings.is_empty(), "{f} alone should be clean: {:?}", a.findings);
    }
    let a = analyze_fixtures(&["order_emit_helper.rs", "order_cross_file.rs"]);
    let o: Vec<_> = a.findings.iter().filter(|f| f.rule == "unordered-iter").collect();
    assert_eq!(o.len(), 1, "{:?}", a.findings);
    assert_eq!(o[0].file, "order_cross_file.rs");
    assert!(o[0].message.contains("emit_all"), "{:?}", o[0]);
}

#[test]
fn the_workspace_itself_is_clean() {
    // The CI gate in executable form: the real workspace must lint clean.
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let a = road_analysis::analyze_workspace(std::path::Path::new(&root)).expect("walk workspace");
    assert!(a.files_scanned > 50, "walker found only {} files", a.files_scanned);
    assert!(a.findings.is_empty(), "workspace findings: {:#?}", a.findings);
    // The serving path's lock discipline must stay a DAG with the
    // documented spine: append -> stripe/store, rnet-decode above both,
    // publish isolated.
    let edge = |a2: &road_analysis::Analysis, f: &str, t: &str| {
        a2.graph.edges.contains_key(&(f.to_owned(), t.to_owned()))
    };
    assert!(edge(&a, "append", "store"));
    assert!(edge(&a, "append", "stripe"));
    assert!(edge(&a, "rnet-decode", "append"));
    assert!(edge(&a, "stripe", "store"));
    assert!(!a.graph.edges.keys().any(|(f, t)| f == "publish" || t == "publish"));
    // Every decode loop/allocation must appear in the taint verdict table
    // with its sanitizer — spot-check the load-bearing chains: the
    // shortcut section counts (fail-fast guards added with this rule),
    // the persist prelude (Reader::require as an interprocedural
    // sanitizer), and the B+-tree's partition_point-bounded indices.
    let verdict = |src: &str, san: &str, sink: &str| {
        a.taint
            .iter()
            .any(|v| v.source.contains(src) && v.sanitizer.contains(san) && v.sink.contains(sink))
    };
    assert!(verdict("read_u32", "guard", "loop bound"), "shortcut count chains missing");
    assert!(verdict("Reader::u32", "Reader::require", "loop bound"), "prelude chains missing");
    assert!(verdict("le_u64", "partition_point()", "slice index/range"), "bptree chains missing");
    assert!(
        a.taint.iter().any(|v| v.sink.contains("ShortcutStore::skip_rnet_section")),
        "lazy-open walker not in the verdict table"
    );
    // The determinism chains over the real serialize/commit surface —
    // mirrored canonically in determinism.expected (diffed in CI). Every
    // unordered iteration that reaches bytes must be here with its
    // sanitizer, and the parallel fan-outs with their deposit shape.
    let chain = |src: &str, san: &str, sink: &str| {
        a.order
            .iter()
            .any(|v| v.source.contains(src) && v.sanitizer.contains(san) && v.sink.contains(sink))
    };
    assert!(
        chain("ShortcutStore::serialize_into", "sort_unstable()", "byte output"),
        "serialize chain missing: {:#?}",
        a.order
    );
    assert!(
        chain("PagedEngine::ensure_rnet_loaded", "sort_unstable()", "encode_shortcut_record"),
        "page-emission chain missing: {:#?}",
        a.order
    );
    assert!(
        chain("repair_after_topology_change", "sort_by_key()", "ShortcutStore::refresh_rnets"),
        "repair commit chain missing: {:#?}",
        a.order
    );
    assert!(
        chain("ShortcutStore::compute_level_maps", "chunks_mut", "deterministic commit order"),
        "parallel-build fan-out verdict missing: {:#?}",
        a.order
    );
    assert!(
        chain("run_batch", "joined in spawn order", "deterministic commit order"),
        "run_batch fan-out verdict missing: {:#?}",
        a.order
    );
}
