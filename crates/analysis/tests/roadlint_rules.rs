//! Fixture self-tests: every rule must fire on its bad fixture and stay
//! quiet on the corresponding escape/clean fixture. Each fixture is
//! analysed in isolation so lock-class call graphs do not bleed between
//! them.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use road_analysis::{analyze_sources, Analysis, Finding};

fn analyze_fixture(name: &str) -> Analysis {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    analyze_sources([(name, src.as_str())])
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn panic_rule_fires_on_every_forbidden_shape() {
    let a = analyze_fixture("panic_bad.rs");
    let panics: Vec<_> = a.findings.iter().filter(|f| f.rule == "panic").collect();
    // unwrap, expect, panic!, debug_assert!, xs[0]
    assert_eq!(panics.len(), 5, "{:?}", a.findings);
    let msgs: String = panics.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.contains(".unwrap()"));
    assert!(msgs.contains(".expect()"));
    assert!(msgs.contains("panic!"));
    assert!(msgs.contains("debug_assert!"));
    assert!(msgs.contains("indexing"));
}

#[test]
fn panic_escapes_suppress_with_reasons() {
    let a = analyze_fixture("panic_escapes.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
}

#[test]
fn panic_escape_without_reason_suppresses_nothing() {
    let a = analyze_fixture("panic_escape_no_reason.rs");
    let r = rules(&a.findings);
    // The reasonless escape is itself a finding AND the unwrap still fires.
    assert!(r.contains(&"marker"), "{:?}", a.findings);
    assert!(r.contains(&"panic"), "{:?}", a.findings);
}

#[test]
fn hot_alloc_rule_fires_inside_fences_only() {
    let a = analyze_fixture("hot_alloc.rs");
    let allocs: Vec<_> = a.findings.iter().filter(|f| f.rule == "hot-alloc").collect();
    // Vec::new, Box::new, vec!, format!, .clone() — the escaped
    // .to_string() and the Vec::new outside the fence stay quiet.
    assert_eq!(allocs.len(), 5, "{:?}", a.findings);
    assert!(a.findings.iter().all(|f| f.rule == "hot-alloc"), "{:?}", a.findings);
}

#[test]
fn atomic_ordering_rule_requires_justifications() {
    let a = analyze_fixture("ordering.rs");
    let atomics: Vec<_> = a.findings.iter().filter(|f| f.rule == "atomic-ordering").collect();
    assert_eq!(atomics.len(), 2, "{:?}", a.findings);
    assert!(atomics[0].message.contains("Relaxed"));
    assert!(atomics[1].message.contains("SeqCst"));
}

#[test]
fn decode_bound_rule_requires_a_dominating_check() {
    let a = analyze_fixture("decode_bound.rs");
    let bounds: Vec<_> = a.findings.iter().filter(|f| f.rule == "decode-bound").collect();
    assert_eq!(bounds.len(), 1, "{:?}", a.findings);
    assert!(bounds[0].message.contains("decode_unbounded"));
}

#[test]
fn lock_order_rule_finds_opposite_acquisition_orders() {
    let a = analyze_fixture("lock_cycle.rs");
    let order: Vec<_> = a.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(order.len(), 1, "{:?}", a.findings);
    assert!(order[0].message.contains("lock-order cycle"));
    assert!(order[0].message.contains("append"));
    assert!(order[0].message.contains("store"));
}

#[test]
fn consistent_lock_order_is_clean_and_graphed() {
    let a = analyze_fixture("lock_ok.rs");
    assert!(a.findings.is_empty(), "{:?}", a.findings);
    assert!(a.graph.edges.contains_key(&("append".to_owned(), "store".to_owned())));
}

#[test]
fn unclassified_acquisition_is_a_finding() {
    let a = analyze_fixture("unclassified_lock.rs");
    let order: Vec<_> = a.findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(order.len(), 1, "{:?}", a.findings);
    assert!(order[0].message.contains("unrecognized receiver"));
}

#[test]
fn the_workspace_itself_is_clean() {
    // The CI gate in executable form: the real workspace must lint clean.
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let a = road_analysis::analyze_workspace(std::path::Path::new(&root)).expect("walk workspace");
    assert!(a.files_scanned > 50, "walker found only {} files", a.files_scanned);
    assert!(a.findings.is_empty(), "workspace findings: {:#?}", a.findings);
    // The serving path's lock discipline must stay a DAG with the
    // documented spine: append -> stripe/store, rnet-decode above both,
    // publish isolated.
    let edge = |a2: &road_analysis::Analysis, f: &str, t: &str| {
        a2.graph.edges.contains_key(&(f.to_owned(), t.to_owned()))
    };
    assert!(edge(&a, "append", "store"));
    assert!(edge(&a, "append", "stripe"));
    assert!(edge(&a, "rnet-decode", "append"));
    assert!(edge(&a, "stripe", "store"));
    assert!(!a.graph.edges.keys().any(|(f, t)| f == "publish" || t == "publish"));
}
