//! Distance Index (Hu, Lee & Lee, ref \[6\]).
//!
//! Every node stores a *distance signature*: one entry per object holding
//! the exact network distance to that object plus a pointer to the next
//! node on the shortest path towards it. (The paper's evaluation also uses
//! exact distances "to provide the optimal search performance".) Queries
//! are then trivial at the query node — read its signature, pick the best
//! objects, chase next-hop pointers to materialise the answers — but the
//! structure costs `|N| × |O|` entries to store and `|O|` full network
//! expansions to build, which is precisely the impracticality the ROAD
//! paper demonstrates (242 MB and half an hour for CA with 1,000 objects).

use crate::layout::{ADJ_ENTRY_BYTES, NODE_BASE_BYTES, NS_NODES, SIG_ENTRY_BYTES};
use crate::{timed, Engine, QueryCost, UpdateCost};
use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::dijkstra::{Control, Dijkstra};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId, Weight};
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::IoTracker;

const NO_HOP: u32 = u32::MAX;

/// One signature column: distances and next hops for a single object.
struct Column {
    object: Object,
    dist: Vec<f32>,
    next: Vec<u32>,
}

/// The Distance Index engine.
pub struct DistIdxEngine {
    g: RoadNetwork,
    kind: WeightKind,
    columns: Vec<Column>,
    col_of: FastMap<u64, usize>,
    clustering: NodeClustering,
    io: IoTracker,
    dij: Dijkstra,
    build_seconds: f64,
}

impl DistIdxEngine {
    /// Builds the index: one full network expansion per object.
    pub fn build(
        g: RoadNetwork,
        kind: WeightKind,
        objects: Vec<Object>,
        buffer_pages: usize,
    ) -> Self {
        let mut dij = Dijkstra::for_network(&g);
        let ((columns, col_of, clustering), build_seconds) = timed(|| {
            let mut columns: Vec<Column> = Vec::with_capacity(objects.len());
            let mut col_of = FastMap::default();
            for o in objects {
                col_of.insert(o.id.0, columns.len());
                columns.push(Self::compute_column(&g, kind, &mut dij, o));
            }
            let m = columns.len();
            let clustering = NodeClustering::build(&g, |n| {
                NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n) + SIG_ENTRY_BYTES * m
            });
            (columns, col_of, clustering)
        });
        DistIdxEngine {
            g,
            kind,
            columns,
            col_of,
            clustering,
            io: IoTracker::new(buffer_pages),
            dij,
            build_seconds,
        }
    }

    /// Expands from the object (both edge endpoints seeded with their
    /// offsets) to fill the column: `dist[n] = ||n, o||` and `next[n]` =
    /// the neighbour of `n` on the shortest path towards the object.
    fn compute_column(g: &RoadNetwork, kind: WeightKind, dij: &mut Dijkstra, o: Object) -> Column {
        let (a, b) = g.edge(o.edge).endpoints();
        let seeds = [(a, o.offset_from(g, kind, a)), (b, o.offset_from(g, kind, b))];
        dij.expand_multi(g, kind, &seeds, |_, _| Control::Continue);
        let n = g.num_nodes();
        let mut dist = vec![f32::INFINITY; n];
        let mut next = vec![NO_HOP; n];
        for i in 0..n {
            let node = NodeId(i as u32);
            if let Some(d) = dij.distance(node) {
                dist[i] = d.get() as f32;
                // The predecessor in the from-object expansion is the next
                // hop on the path towards the object; seeds have none.
                next[i] = dij.predecessor(node).map(|(p, _)| p.0).unwrap_or(NO_HOP);
            }
        }
        Column { object: o, dist, next }
    }

    fn touch_node(&mut self, n: NodeId) {
        let (start, span) = self.clustering.span_of(n);
        self.io.touch_span(NS_NODES, start, span);
    }

    /// Chases next-hop pointers from `source` to the object of `col`,
    /// touching every node record on the way (this is how the Distance
    /// Index materialises an answer and its path).
    fn chase(&mut self, source: NodeId, col: usize) -> usize {
        let mut hops = 0usize;
        let mut cur = source.0;
        let limit = self.g.num_nodes() + 1;
        while hops < limit {
            let nxt = self.columns[col].next[cur as usize];
            if nxt == NO_HOP {
                break; // reached an endpoint of the object's edge
            }
            cur = nxt;
            self.touch_node(NodeId(cur));
            hops += 1;
        }
        hops
    }

    fn collect(
        &mut self,
        node: NodeId,
        filter: &ObjectFilter,
        k: Option<usize>,
        radius: Option<Weight>,
    ) -> QueryCost {
        self.io.reset();
        self.touch_node(node); // load the (possibly multi-page) signature
        let mut entries: Vec<(Weight, usize)> = Vec::new();
        for (c, col) in self.columns.iter().enumerate() {
            if !filter.matches(&col.object) {
                continue;
            }
            let d = col.dist[node.index()];
            if !d.is_finite() {
                continue;
            }
            let d = Weight::new(d as f64);
            if radius.map(|r| d > r).unwrap_or(false) {
                continue;
            }
            entries.push((d, c));
        }
        entries.sort_by(|a, b| {
            a.0.cmp(&b.0).then(self.columns[a.1].object.id.cmp(&self.columns[b.1].object.id))
        });
        if let Some(k) = k {
            entries.truncate(k);
        }
        let mut nodes_visited = 1usize;
        let hits: Vec<SearchHit> = entries
            .iter()
            .map(|&(d, c)| SearchHit { object: self.columns[c].object.id, distance: d })
            .collect();
        for &(_, c) in &entries {
            nodes_visited += self.chase(node, c);
        }
        QueryCost { hits, page_faults: self.io.faults(), nodes_visited }
    }

    /// Is column `c` possibly affected by a change of edge `(u, v)`?
    /// The edge lies on the column's shortest-path tree iff one endpoint's
    /// next hop is the other; a decrease can also create new shorter paths
    /// through the edge.
    fn column_affected(
        &self,
        c: usize,
        u: NodeId,
        v: NodeId,
        new_w: Weight,
        old_w: Weight,
    ) -> bool {
        let col = &self.columns[c];
        if col.object.edge.index() < self.g.edge_slots() {
            let (a, b) = self.g.edge(col.object.edge).endpoints();
            if (a == u && b == v) || (a == v && b == u) {
                return true; // the object sits on the changed edge
            }
        }
        if new_w < old_w {
            // Improvement possible if going through the cheaper edge beats
            // a current distance.
            let du = col.dist[u.index()] as f64;
            let dv = col.dist[v.index()] as f64;
            return du + new_w.get() < dv || dv + new_w.get() < du;
        }
        // Increase: only matters if the edge is on the SP tree.
        col.next[u.index()] == v.0 || col.next[v.index()] == u.0
    }
}

impl Engine for DistIdxEngine {
    fn name(&self) -> &'static str {
        "DistIdx"
    }

    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost {
        self.collect(node, filter, Some(k), None)
    }

    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost {
        self.collect(node, filter, None, Some(radius))
    }

    /// Adding an object appends a column: one full network expansion plus
    /// a rewrite of every node record — the cost the paper measures in
    /// Figure 15.
    fn insert_object(&mut self, object: Object) -> UpdateCost {
        let (_, seconds) = timed(|| {
            self.col_of.insert(object.id.0, self.columns.len());
            let col = Self::compute_column(&self.g, self.kind, &mut self.dij, object);
            self.columns.push(col);
            self.recluster();
        });
        UpdateCost { seconds }
    }

    /// Removing an object deletes its column from every node record.
    fn remove_object(&mut self, id: ObjectId) -> UpdateCost {
        let (_, seconds) = timed(|| {
            let Some(c) = self.col_of.remove(&id.0) else { return };
            self.columns.swap_remove(c);
            if c < self.columns.len() {
                let moved = self.columns[c].object.id;
                self.col_of.insert(moved.0, c);
            }
            self.recluster();
        });
        UpdateCost { seconds }
    }

    /// Edge-weight change: every affected column (edge on its SP tree, or
    /// improvable through the cheaper edge) is recomputed by a fresh
    /// expansion — "distance signatures of many nodes have to be
    /// reexamined and updated" (Section 6.2).
    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost {
        let kind = self.kind;
        let (_, seconds) = timed(|| {
            let old = self.g.set_weight(e, kind, w).expect("live edge");
            if old == w {
                return;
            }
            let (u, v) = self.g.edge(e).endpoints();
            let affected: Vec<usize> = (0..self.columns.len())
                .filter(|&c| self.column_affected(c, u, v, w, old))
                .collect();
            for c in affected {
                let o = self.columns[c].object.clone();
                self.columns[c] = Self::compute_column(&self.g, kind, &mut self.dij, o);
            }
        });
        UpdateCost { seconds }
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.g.weight(e, self.kind)
    }

    fn index_size_bytes(&self) -> usize {
        self.clustering.size_bytes()
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

impl DistIdxEngine {
    /// Node record sizes change with the number of columns; repack.
    fn recluster(&mut self) {
        let m = self.columns.len();
        let g = &self.g;
        self.clustering = NodeClustering::build(g, |n| {
            NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n) + SIG_ENTRY_BYTES * m
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_core::model::CategoryId;
    use road_network::generator::simple;

    fn engine() -> DistIdxEngine {
        let g = simple::grid(9, 9, 1.0);
        let objects = vec![
            Object::new(ObjectId(1), EdgeId(0), 0.5, CategoryId(0)),
            Object::new(ObjectId(2), EdgeId(40), 0.25, CategoryId(1)),
            Object::new(ObjectId(3), EdgeId(100), 0.75, CategoryId(0)),
        ];
        DistIdxEngine::build(g, WeightKind::Distance, objects, 50)
    }

    #[test]
    fn knn_reads_signature_and_chases() {
        let mut e = engine();
        let res = e.knn(NodeId(44), 2, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 2);
        assert!(res.hits[0].distance <= res.hits[1].distance);
        assert!(res.nodes_visited >= 2, "must chase next hops");
        assert!(res.page_faults >= 1);
    }

    #[test]
    fn range_filters_by_distance() {
        let mut e = engine();
        let res = e.range(NodeId(0), Weight::new(3.0), &ObjectFilter::Any);
        for h in &res.hits {
            assert!(h.distance <= Weight::new(3.0));
        }
        let all = e.range(NodeId(0), Weight::new(100.0), &ObjectFilter::Any);
        assert_eq!(all.hits.len(), 3);
    }

    #[test]
    fn signature_grows_index_size() {
        let g = simple::grid(9, 9, 1.0);
        let few = DistIdxEngine::build(g.clone(), WeightKind::Distance, vec![], 50);
        let objects: Vec<Object> = (0..50)
            .map(|i| Object::new(ObjectId(i), EdgeId(i as u32), 0.5, CategoryId(0)))
            .collect();
        let many = DistIdxEngine::build(g, WeightKind::Distance, objects, 50);
        assert!(many.index_size_bytes() > few.index_size_bytes() * 2);
    }

    #[test]
    fn object_churn_updates_columns() {
        let mut e = engine();
        e.insert_object(Object::new(ObjectId(9), EdgeId(7), 0.5, CategoryId(2)));
        let res = e.knn(NodeId(0), 5, &ObjectFilter::Category(CategoryId(2)));
        assert_eq!(res.hits.len(), 1);
        e.remove_object(ObjectId(1));
        let res = e.knn(NodeId(0), 5, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 3); // 2 originals + the new one
        assert!(!res.hits.iter().any(|h| h.object == ObjectId(1)));
    }

    #[test]
    fn weight_update_repairs_affected_columns() {
        let mut e = engine();
        let before = e.knn(NodeId(80), 3, &ObjectFilter::Any).hits;
        // Raise a central edge massively; recompute and compare against a
        // freshly built index.
        e.set_edge_weight(EdgeId(72), Weight::new(50.0));
        let got = e.knn(NodeId(80), 3, &ObjectFilter::Any).hits;
        let fresh = {
            let objects: Vec<Object> = e.columns.iter().map(|c| c.object.clone()).collect();
            let mut f = DistIdxEngine::build(e.g.clone(), WeightKind::Distance, objects, 50);
            f.knn(NodeId(80), 3, &ObjectFilter::Any).hits
        };
        assert_eq!(got.len(), fresh.len());
        for (g, f) in got.iter().zip(&fresh) {
            assert!(g.distance.approx_eq(f.distance), "{} vs {}", g.distance, f.distance);
        }
        let _ = before;
    }

    #[test]
    fn decrease_creates_shorter_paths() {
        let mut e = engine();
        // Shrink an edge to near zero somewhere between query and objects.
        e.set_edge_weight(EdgeId(5), Weight::new(0.01));
        let got = e.knn(NodeId(72), 3, &ObjectFilter::Any).hits;
        let objects: Vec<Object> = e.columns.iter().map(|c| c.object.clone()).collect();
        let mut fresh = DistIdxEngine::build(e.g.clone(), WeightKind::Distance, objects, 50);
        let want = fresh.knn(NodeId(72), 3, &ObjectFilter::Any).hits;
        for (g, w) in got.iter().zip(&want) {
            assert!(g.distance.approx_eq(w.distance), "{} vs {}", g.distance, w.distance);
        }
    }
}
