//! Euclidean-bound search (refs \[16\], \[19\]).
//!
//! Objects live in an R-tree keyed by their planar positions. Euclidean
//! distance lower-bounds network distance, so candidates are drawn in
//! increasing Euclidean order and verified with A* (ref \[3\]); a kNN search
//! stops once the next candidate's Euclidean bound exceeds the k-th best
//! verified network distance. The paper's two criticisms fall straight out
//! of the implementation: each candidate pays its own A* over the same
//! region ("redundant shortest path searches"), and for metrics Euclidean
//! distance cannot bound (tolls, travel time on mixed roads) the heuristic
//! degenerates and every object becomes a candidate.

use crate::layout::{ADJ_ENTRY_BYTES, NODE_BASE_BYTES, NS_NODES, NS_RTREE, OBJECT_BYTES};
use crate::{timed, Engine, QueryCost, UpdateCost};
use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::astar::AStar;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId, Weight};
use road_spatial::RTree;
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::IoTracker;

/// The Euclidean-bound engine.
pub struct EuclideanEngine {
    g: RoadNetwork,
    kind: WeightKind,
    objects: FastMap<u64, Object>,
    rtree: RTree,
    astar: AStar,
    clustering: NodeClustering,
    io: IoTracker,
    build_seconds: f64,
}

impl EuclideanEngine {
    /// Builds the engine: bulk-loads the object R-tree and clusters node
    /// records into CCAM pages.
    pub fn build(
        g: RoadNetwork,
        kind: WeightKind,
        objects: Vec<Object>,
        buffer_pages: usize,
    ) -> Self {
        let ((rtree, object_map, clustering, astar), build_seconds) = timed(|| {
            let points: Vec<_> = objects.iter().map(|o| (o.position(&g), o.id.0)).collect();
            let rtree = RTree::bulk_load(&points, RTree::DEFAULT_MAX_ENTRIES);
            let object_map: FastMap<u64, Object> =
                objects.into_iter().map(|o| (o.id.0, o)).collect();
            let clustering =
                NodeClustering::build(&g, |n| NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n));
            let astar = AStar::for_network(&g, kind);
            (rtree, object_map, clustering, astar)
        });
        EuclideanEngine {
            g,
            kind,
            objects: object_map,
            rtree,
            astar,
            clustering,
            io: IoTracker::new(buffer_pages),
            build_seconds,
        }
    }

    /// Exact network distance to an object: A* to the cheaper endpoint.
    /// Touches node pages for every A*-settled node. Free-standing so the
    /// kNN loop can hold the R-tree iterator while verifying.
    #[allow(clippy::too_many_arguments)]
    fn verify_distance(
        g: &RoadNetwork,
        kind: WeightKind,
        astar: &mut AStar,
        clustering: &NodeClustering,
        io: &mut IoTracker,
        settled_total: &mut usize,
        source: NodeId,
        o: &Object,
    ) -> Option<Weight> {
        let (a, b) = g.edge(o.edge).endpoints();
        let mut best: Option<Weight> = None;
        for endpoint in [a, b] {
            let d = astar.one_to_one_visit(g, kind, source, endpoint, |n| {
                let (start, span) = clustering.span_of(n);
                io.touch_span(NS_NODES, start, span);
            });
            *settled_total += astar.settled();
            if let Some(d) = d {
                let total = d + o.offset_from(g, kind, endpoint);
                best = Some(best.map(|b: Weight| b.min(total)).unwrap_or(total));
            }
        }
        best
    }
}

impl Engine for EuclideanEngine {
    fn name(&self) -> &'static str {
        "Euclidean"
    }

    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost {
        self.io.reset();
        if k == 0 {
            return QueryCost { hits: Vec::new(), page_faults: 0, nodes_visited: 0 };
        }
        let from = self.g.coord(node);
        let scale = self.astar.scale();
        let mut nodes_visited = 0usize;
        // Interleaved incremental-Euclidean-NN + A* verification: draw the
        // next candidate by Euclidean distance, verify its network
        // distance, stop once the Euclidean lower bound of the next
        // candidate exceeds the k-th best verified network distance.
        let mut verified: Vec<SearchHit> = Vec::new();
        let mut iter = self.rtree.nearest(from);
        for (oid, ed) in iter.by_ref() {
            if verified.len() >= k {
                let kth = verified[k - 1].distance;
                if Weight::new(ed * scale) > kth {
                    break; // no further candidate can beat the kth answer
                }
            }
            let Some(o) = self.objects.get(&oid) else { continue };
            if !filter.matches(o) {
                continue;
            }
            if let Some(d) = Self::verify_distance(
                &self.g,
                self.kind,
                &mut self.astar,
                &self.clustering,
                &mut self.io,
                &mut nodes_visited,
                node,
                o,
            ) {
                verified.push(SearchHit { object: ObjectId(oid), distance: d });
                verified.sort_by(|x, y| x.distance.cmp(&y.distance).then(x.object.cmp(&y.object)));
                verified.truncate(k);
            }
        }
        for &n in iter.visited_nodes() {
            self.io.touch(NS_RTREE, n);
        }
        drop(iter);
        QueryCost { hits: verified, page_faults: self.io.faults(), nodes_visited }
    }

    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost {
        self.io.reset();
        let from = self.g.coord(node);
        let scale = self.astar.scale();
        // Euclidean pre-filter: network distance >= scale * euclid, so any
        // answer lies within euclid <= radius / scale. scale = 0 (metric
        // unboundable by geometry) degenerates to scanning every object —
        // exactly the paper's criticism.
        let (candidates, visited) = if scale > 0.0 {
            self.rtree.range(from, radius.get() / scale)
        } else {
            let all: Vec<(u64, f64)> = self.objects.keys().map(|&oid| (oid, 0.0)).collect();
            (all, Vec::new())
        };
        for n in visited {
            self.io.touch(NS_RTREE, n);
        }
        let mut hits = Vec::new();
        let mut nodes_visited = 0usize;
        for (oid, _) in candidates {
            let o = match self.objects.get(&oid) {
                Some(o) if filter.matches(o) => o.clone(),
                _ => continue,
            };
            if let Some(d) = Self::verify_distance(
                &self.g,
                self.kind,
                &mut self.astar,
                &self.clustering,
                &mut self.io,
                &mut nodes_visited,
                node,
                &o,
            ) {
                if d <= radius {
                    hits.push(SearchHit { object: ObjectId(oid), distance: d });
                }
            }
        }
        hits.sort_by(|x, y| x.distance.cmp(&y.distance).then(x.object.cmp(&y.object)));
        QueryCost { hits, page_faults: self.io.faults(), nodes_visited }
    }

    fn insert_object(&mut self, object: Object) -> UpdateCost {
        let (_, seconds) = timed(|| {
            self.rtree.insert(object.position(&self.g), object.id.0);
            self.objects.insert(object.id.0, object);
        });
        UpdateCost { seconds }
    }

    fn remove_object(&mut self, id: ObjectId) -> UpdateCost {
        let (_, seconds) = timed(|| {
            if let Some(o) = self.objects.remove(&id.0) {
                let p = o.position(&self.g);
                self.rtree.remove(p, id.0);
            }
        });
        UpdateCost { seconds }
    }

    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost {
        let kind = self.kind;
        let (_, seconds) = timed(|| {
            self.g.set_weight(e, kind, w).expect("live edge");
            // A decreased weight may invalidate the admissibility scale.
            self.astar.refresh_scale(&self.g, kind);
        });
        UpdateCost { seconds }
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.g.weight(e, self.kind)
    }

    fn index_size_bytes(&self) -> usize {
        self.clustering.size_bytes() + self.rtree.size_bytes() + self.objects.len() * OBJECT_BYTES
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_core::model::CategoryId;
    use road_network::generator::simple;

    fn engine() -> EuclideanEngine {
        let g = simple::grid(10, 10, 1.0);
        let objects = vec![
            Object::new(ObjectId(1), EdgeId(0), 0.5, CategoryId(0)),
            Object::new(ObjectId(2), EdgeId(50), 0.25, CategoryId(1)),
            Object::new(ObjectId(3), EdgeId(120), 0.75, CategoryId(0)),
            Object::new(ObjectId(4), EdgeId(170), 0.1, CategoryId(1)),
        ];
        EuclideanEngine::build(g, WeightKind::Distance, objects, 50)
    }

    #[test]
    fn knn_is_sorted_and_counts_io() {
        let mut e = engine();
        let res = e.knn(NodeId(45), 3, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 3);
        assert!(res.hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(res.page_faults > 0);
    }

    #[test]
    fn range_verifies_with_network_distance() {
        let mut e = engine();
        let res = e.range(NodeId(0), Weight::new(6.0), &ObjectFilter::Any);
        for h in &res.hits {
            assert!(h.distance <= Weight::new(6.0));
        }
        let all = e.range(NodeId(0), Weight::new(100.0), &ObjectFilter::Any);
        assert_eq!(all.hits.len(), 4);
    }

    #[test]
    fn filter_and_churn() {
        let mut e = engine();
        let res = e.knn(NodeId(0), 9, &ObjectFilter::Category(CategoryId(1)));
        assert_eq!(res.hits.len(), 2);
        e.insert_object(Object::new(ObjectId(7), EdgeId(10), 0.4, CategoryId(1)));
        let res = e.knn(NodeId(0), 9, &ObjectFilter::Category(CategoryId(1)));
        assert_eq!(res.hits.len(), 3);
        e.remove_object(ObjectId(2));
        let res = e.knn(NodeId(0), 9, &ObjectFilter::Category(CategoryId(1)));
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn weight_update_refreshes_scale() {
        let mut e = engine();
        // Shrinking an edge's weight below its Euclidean length forces the
        // admissibility scale down; queries must stay correct.
        e.set_edge_weight(EdgeId(0), Weight::new(0.01));
        let res = e.knn(NodeId(0), 4, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 4);
        assert!(res.hits.windows(2).all(|w| w[0].distance <= w[1].distance));
    }
}
