//! # road-baselines
//!
//! The three comparison approaches of the ROAD paper's evaluation
//! (Section 6), plus a wrapper presenting ROAD itself through the same
//! interface so the experiment harness can drive all four uniformly:
//!
//! * [`netexp`] — **NetExp**: plain network expansion (INE, ref \[16\]);
//!   objects are stored with network nodes, no extra index.
//! * [`euclidean`] — **Euclidean**: objects in an R-tree, candidates
//!   retrieved in increasing Euclidean distance (a lower bound of network
//!   distance) and verified with A* (refs \[16\], \[19\], \[3\]).
//! * [`distidx`] — **DistIdx**: Distance Index (ref \[6\]); per-node
//!   distance signatures with one entry (distance + next hop) per object.
//! * [`road_engine`] — ROAD behind the same [`Engine`] trait.
//!
//! Every engine owns its copy of the network, its disk layout (CCAM node
//! pages, object/R-tree/directory pages) and a cold-start LRU I/O tracker,
//! mirroring the paper's measurement methodology: 4 KB pages, 50-page LRU
//! buffer, queries starting with an empty cache.

pub mod distidx;
pub mod euclidean;
pub mod netexp;
pub mod road_engine;

pub use distidx::DistIdxEngine;
pub use euclidean::EuclideanEngine;
pub use netexp::NetExpEngine;
pub use road_engine::RoadEngine;

use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::{EdgeId, NodeId, Weight};

/// Layout constants shared by the engines' disk-size models.
pub mod layout {
    /// Node record header: id + coordinates.
    pub const NODE_BASE_BYTES: usize = 16;
    /// One adjacency entry: edge ref + weight + neighbour id.
    pub const ADJ_ENTRY_BYTES: usize = 8;
    /// One stored object: id + edge + offset + category + payload ref.
    pub const OBJECT_BYTES: usize = 32;
    /// One distance-signature entry: f32 distance + object ref + next hop.
    pub const SIG_ENTRY_BYTES: usize = 12;
    /// One shortcut-tree entry in a ROAD node record.
    pub const TREE_ENTRY_BYTES: usize = 8;

    /// Page namespaces for the I/O tracker.
    pub const NS_NODES: u32 = 0;
    pub const NS_OBJECTS: u32 = 1;
    pub const NS_RTREE: u32 = 2;
    pub const NS_DIRECTORY: u32 = 3;
}

/// Outcome of one query run through an engine.
#[derive(Clone, Debug)]
pub struct QueryCost {
    /// Answer objects in non-descending network distance.
    pub hits: Vec<SearchHit>,
    /// Simulated page faults (cold 50-page LRU buffer) — the paper's I/O.
    pub page_faults: u64,
    /// Network nodes whose records the query touched.
    pub nodes_visited: usize,
}

/// Cost of one maintenance operation.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpdateCost {
    /// Wall-clock seconds the engine spent applying the update.
    pub seconds: f64,
}

/// The uniform interface the experiment harness drives.
///
/// Engines take `&mut self` everywhere because they reuse search state and
/// the I/O tracker across queries. Queries on nodes outside the network
/// panic — harness inputs are constructed valid.
pub trait Engine {
    /// Label used in figures ("NetExp", "Euclidean", "DistIdx", "ROAD").
    fn name(&self) -> &'static str;

    /// k nearest neighbours of `node` under the engine's metric.
    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost;

    /// All objects within `radius` of `node`.
    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost;

    /// Adds one object.
    fn insert_object(&mut self, object: Object) -> UpdateCost;

    /// Removes one object.
    fn remove_object(&mut self, id: ObjectId) -> UpdateCost;

    /// Changes an edge weight (the engine's metric).
    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost;

    /// Current weight of an edge (for restore-style experiments).
    fn edge_weight(&self, e: EdgeId) -> Weight;

    /// Modelled on-disk index size in bytes (node pages + object pages +
    /// any index-specific structures).
    fn index_size_bytes(&self) -> usize;

    /// Wall-clock seconds spent building the index.
    fn build_seconds(&self) -> f64;
}

/// Helper: time a closure in seconds.
pub(crate) fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
