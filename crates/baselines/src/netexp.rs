//! NetExp: incremental network expansion (INE, Papadias et al., ref \[16\]).
//!
//! The no-index baseline: objects are stored in the records of their
//! edges' endpoint nodes, and a query is a Dijkstra expansion from the
//! query node that collects objects as their nodes settle — "an almost
//! blind scan over the entire search space ... slow node-by-node expansion
//! towards all directions" (Section 2). Its redeeming qualities, which the
//! experiments confirm: near-zero index cost and trivially cheap updates.

use crate::layout::{ADJ_ENTRY_BYTES, NODE_BASE_BYTES, NS_NODES, OBJECT_BYTES};
use crate::{timed, Engine, QueryCost, UpdateCost};
use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::dijkstra::{Control, Dijkstra};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::{FastMap, FastSet};
use road_network::{EdgeId, NodeId, Weight};
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::IoTracker;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The network-expansion engine.
///
/// The expansion state (generation-stamped [`Dijkstra`] labels, candidate
/// heap, emitted-object set) is owned by the engine and reused across
/// queries, mirroring the core engine's `SearchWorkspace` discipline: a
/// steady query stream pays no per-query container allocations.
pub struct NetExpEngine {
    g: RoadNetwork,
    kind: WeightKind,
    objects: FastMap<u64, Object>,
    node_objects: FastMap<u32, Vec<ObjectId>>,
    clustering: NodeClustering,
    io: IoTracker,
    build_seconds: f64,
    dij: Dijkstra,
    /// Discovered objects waiting for the frontier to pass their total
    /// distance, as `(total, object id)` — popping in that order gives the
    /// oracle's `(distance, object id)` tie-break.
    cand: BinaryHeap<Reverse<(Weight, u64)>>,
    /// Objects already reported this query.
    emitted: FastSet<u64>,
}

impl NetExpEngine {
    /// Builds the engine: clusters node records (with their objects) into
    /// CCAM pages.
    pub fn build(
        g: RoadNetwork,
        kind: WeightKind,
        objects: Vec<Object>,
        buffer_pages: usize,
    ) -> Self {
        let ((node_objects, object_map, clustering), build_seconds) = timed(|| {
            let mut node_objects: FastMap<u32, Vec<ObjectId>> = FastMap::default();
            let mut object_map: FastMap<u64, Object> = FastMap::default();
            for o in objects {
                let (a, b) = g.edge(o.edge).endpoints();
                node_objects.entry(a.0).or_default().push(o.id);
                node_objects.entry(b.0).or_default().push(o.id);
                object_map.insert(o.id.0, o);
            }
            let clustering = Self::cluster(&g, &node_objects);
            (node_objects, object_map, clustering)
        });
        let dij = Dijkstra::for_network(&g);
        NetExpEngine {
            g,
            kind,
            objects: object_map,
            node_objects,
            clustering,
            io: IoTracker::new(buffer_pages),
            build_seconds,
            dij,
            cand: BinaryHeap::new(),
            emitted: FastSet::default(),
        }
    }

    fn cluster(g: &RoadNetwork, node_objects: &FastMap<u32, Vec<ObjectId>>) -> NodeClustering {
        NodeClustering::build(g, |n| {
            let objs = node_objects.get(&n.0).map(Vec::len).unwrap_or(0);
            NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n) + OBJECT_BYTES * objs
        })
    }

    /// Shared expansion loop; `radius = None` means kNN mode.
    ///
    /// Runs the reusable [`Dijkstra`] over the network and buffers objects
    /// discovered at settled nodes in a candidate heap. A candidate is
    /// reported only once the frontier distance passes its total distance:
    /// by then every node able to host an equal-or-closer object has been
    /// expanded, so candidates emit in exact `(distance, object id)` order
    /// — the same tie-break as the core engine and the oracles.
    fn search(
        &mut self,
        source: NodeId,
        k: usize,
        radius: Option<Weight>,
        filter: &ObjectFilter,
    ) -> QueryCost {
        self.io.reset(); // the paper starts every query with a cold cache
        let mut hits = Vec::new();
        let mut nodes_visited = 0usize;
        self.cand.clear();
        self.emitted.clear();
        // Split borrows: the expansion state mutates alongside reads of
        // the network and object tables.
        let NetExpEngine {
            g, kind, objects, node_objects, clustering, io, dij, cand, emitted, ..
        } = self;
        dij.expand(g, *kind, source, |nid, d| {
            // Report candidates the frontier has passed; equal-distance
            // candidates wait until every node at that distance settled.
            while let Some(&Reverse((total, oid))) = cand.peek() {
                if total >= d {
                    break;
                }
                cand.pop();
                if emitted.insert(oid) {
                    hits.push(SearchHit { object: ObjectId(oid), distance: total });
                    if hits.len() >= k {
                        return Control::Break;
                    }
                }
            }
            if let Some(r) = radius {
                if d > r {
                    return Control::Break;
                }
            }
            nodes_visited += 1;
            let (start, span) = clustering.span_of(nid);
            io.touch_span(NS_NODES, start, span);
            if let Some(list) = node_objects.get(&nid.0) {
                for oid in list {
                    let o = &objects[&oid.0];
                    if !filter.matches(o) || emitted.contains(&o.id.0) {
                        continue;
                    }
                    let total = d + o.offset_from(g, *kind, nid);
                    if radius.map(|r| total > r).unwrap_or(false) {
                        continue;
                    }
                    cand.push(Reverse((total, o.id.0)));
                }
            }
            Control::Continue
        });
        // The expansion ended (component exhausted or radius passed);
        // whatever is still buffered is within bounds and final.
        while hits.len() < k {
            match cand.pop() {
                Some(Reverse((total, oid))) => {
                    if emitted.insert(oid) {
                        hits.push(SearchHit { object: ObjectId(oid), distance: total });
                    }
                }
                None => break,
            }
        }
        QueryCost { hits, page_faults: self.io.faults(), nodes_visited }
    }
}

impl Engine for NetExpEngine {
    fn name(&self) -> &'static str {
        "NetExp"
    }

    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost {
        if k == 0 {
            return QueryCost { hits: Vec::new(), page_faults: 0, nodes_visited: 0 };
        }
        self.search(node, k, None, filter)
    }

    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost {
        self.search(node, usize::MAX, Some(radius), filter)
    }

    fn insert_object(&mut self, object: Object) -> UpdateCost {
        let (_, seconds) = timed(|| {
            let (a, b) = self.g.edge(object.edge).endpoints();
            self.node_objects.entry(a.0).or_default().push(object.id);
            self.node_objects.entry(b.0).or_default().push(object.id);
            self.objects.insert(object.id.0, object);
            // Object lives inside the endpoint node records; the affected
            // pages are simply rewritten (no index restructuring).
        });
        UpdateCost { seconds }
    }

    fn remove_object(&mut self, id: ObjectId) -> UpdateCost {
        let (_, seconds) = timed(|| {
            if let Some(o) = self.objects.remove(&id.0) {
                let (a, b) = self.g.edge(o.edge).endpoints();
                for n in [a.0, b.0] {
                    if let Some(v) = self.node_objects.get_mut(&n) {
                        v.retain(|&x| x != id);
                    }
                }
            }
        });
        UpdateCost { seconds }
    }

    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost {
        let kind = self.kind;
        let (_, seconds) = timed(|| {
            self.g.set_weight(e, kind, w).expect("live edge");
        });
        UpdateCost { seconds }
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.g.weight(e, self.kind)
    }

    fn index_size_bytes(&self) -> usize {
        self.clustering.size_bytes()
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_core::model::CategoryId;
    use road_network::generator::simple;

    fn engine_with_objects() -> NetExpEngine {
        let g = simple::grid(10, 10, 1.0);
        let objects = vec![
            Object::new(ObjectId(1), EdgeId(0), 0.5, CategoryId(0)),
            Object::new(ObjectId(2), EdgeId(50), 0.25, CategoryId(1)),
            Object::new(ObjectId(3), EdgeId(120), 0.75, CategoryId(0)),
        ];
        NetExpEngine::build(g, WeightKind::Distance, objects, 50)
    }

    #[test]
    fn knn_finds_objects_in_distance_order() {
        let mut e = engine_with_objects();
        let res = e.knn(NodeId(0), 3, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 3);
        assert!(res.hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(res.page_faults > 0);
        assert!(res.nodes_visited > 0);
    }

    #[test]
    fn range_respects_radius() {
        let mut e = engine_with_objects();
        let all = e.range(NodeId(0), Weight::new(100.0), &ObjectFilter::Any);
        assert_eq!(all.hits.len(), 3);
        let near = e.range(NodeId(0), Weight::new(1.0), &ObjectFilter::Any);
        assert!(near.hits.len() < 3);
        for h in &near.hits {
            assert!(h.distance <= Weight::new(1.0));
        }
    }

    #[test]
    fn filter_is_applied() {
        let mut e = engine_with_objects();
        let res = e.knn(NodeId(0), 5, &ObjectFilter::Category(CategoryId(0)));
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn object_churn_is_cheap_and_visible() {
        let mut e = engine_with_objects();
        e.insert_object(Object::new(ObjectId(9), EdgeId(3), 0.5, CategoryId(5)));
        let res = e.knn(NodeId(0), 10, &ObjectFilter::Category(CategoryId(5)));
        assert_eq!(res.hits.len(), 1);
        e.remove_object(ObjectId(9));
        let res = e.knn(NodeId(0), 10, &ObjectFilter::Category(CategoryId(5)));
        assert!(res.hits.is_empty());
    }

    #[test]
    fn weight_update_changes_answers() {
        let mut e = engine_with_objects();
        let before = e.knn(NodeId(0), 1, &ObjectFilter::Any).hits[0];
        // Make the object's edge endpoint unreachable cheaply: raise edge 0.
        e.set_edge_weight(EdgeId(0), Weight::new(500.0));
        let after = e.knn(NodeId(0), 1, &ObjectFilter::Any).hits[0];
        assert!(after.distance >= before.distance);
        assert_eq!(e.edge_weight(EdgeId(0)), Weight::new(500.0));
    }

    #[test]
    fn index_is_small_and_build_fast() {
        let e = engine_with_objects();
        assert!(e.index_size_bytes() > 0);
        assert!(e.index_size_bytes() < 1_000_000);
        assert!(e.build_seconds() < 1.0);
    }
}
