//! NetExp: incremental network expansion (INE, Papadias et al., ref \[16\]).
//!
//! The no-index baseline: objects are stored in the records of their
//! edges' endpoint nodes, and a query is a Dijkstra expansion from the
//! query node that collects objects as their nodes settle — "an almost
//! blind scan over the entire search space ... slow node-by-node expansion
//! towards all directions" (Section 2). Its redeeming qualities, which the
//! experiments confirm: near-zero index cost and trivially cheap updates.

use crate::layout::{ADJ_ENTRY_BYTES, NODE_BASE_BYTES, NS_NODES, OBJECT_BYTES};
use crate::{timed, Engine, QueryCost, UpdateCost};
use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId, Weight};
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::IoTracker;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The network-expansion engine.
pub struct NetExpEngine {
    g: RoadNetwork,
    kind: WeightKind,
    objects: FastMap<u64, Object>,
    node_objects: FastMap<u32, Vec<ObjectId>>,
    clustering: NodeClustering,
    io: IoTracker,
    build_seconds: f64,
}

impl NetExpEngine {
    /// Builds the engine: clusters node records (with their objects) into
    /// CCAM pages.
    pub fn build(
        g: RoadNetwork,
        kind: WeightKind,
        objects: Vec<Object>,
        buffer_pages: usize,
    ) -> Self {
        let ((node_objects, object_map, clustering), build_seconds) = timed(|| {
            let mut node_objects: FastMap<u32, Vec<ObjectId>> = FastMap::default();
            let mut object_map: FastMap<u64, Object> = FastMap::default();
            for o in objects {
                let (a, b) = g.edge(o.edge).endpoints();
                node_objects.entry(a.0).or_default().push(o.id);
                node_objects.entry(b.0).or_default().push(o.id);
                object_map.insert(o.id.0, o);
            }
            let clustering = Self::cluster(&g, &node_objects);
            (node_objects, object_map, clustering)
        });
        NetExpEngine {
            g,
            kind,
            objects: object_map,
            node_objects,
            clustering,
            io: IoTracker::new(buffer_pages),
            build_seconds,
        }
    }

    fn cluster(g: &RoadNetwork, node_objects: &FastMap<u32, Vec<ObjectId>>) -> NodeClustering {
        NodeClustering::build(g, |n| {
            let objs = node_objects.get(&n.0).map(Vec::len).unwrap_or(0);
            NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n) + OBJECT_BYTES * objs
        })
    }

    fn touch_node(&mut self, n: NodeId) {
        let (start, span) = self.clustering.span_of(n);
        self.io.touch_span(NS_NODES, start, span);
    }

    /// Shared expansion loop; `radius = None` means kNN mode.
    fn search(
        &mut self,
        source: NodeId,
        k: usize,
        radius: Option<Weight>,
        filter: &ObjectFilter,
    ) -> QueryCost {
        self.io.reset(); // the paper starts every query with a cold cache
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
        enum Key {
            Object(u64),
            Node(u32),
        }
        let mut dist: FastMap<u32, Weight> = FastMap::default();
        let mut settled: road_network::hash::FastSet<u32> = Default::default();
        let mut seen_obj: road_network::hash::FastSet<u64> = Default::default();
        let mut heap = BinaryHeap::new();
        let mut hits = Vec::new();
        let mut nodes_visited = 0usize;
        dist.insert(source.0, Weight::ZERO);
        heap.push(Reverse((Weight::ZERO, Key::Node(source.0))));
        while let Some(Reverse((d, key))) = heap.pop() {
            match key {
                Key::Object(oid) => {
                    if !seen_obj.insert(oid) {
                        continue;
                    }
                    hits.push(SearchHit { object: ObjectId(oid), distance: d });
                    if hits.len() >= k {
                        break;
                    }
                }
                Key::Node(n) => {
                    if !settled.insert(n) {
                        continue;
                    }
                    if let Some(r) = radius {
                        if d > r {
                            break;
                        }
                    }
                    nodes_visited += 1;
                    self.touch_node(NodeId(n));
                    if let Some(list) = self.node_objects.get(&n) {
                        for oid in list {
                            let o = &self.objects[&oid.0];
                            if !filter.matches(o) || seen_obj.contains(&o.id.0) {
                                continue;
                            }
                            let total = d + o.offset_from(&self.g, self.kind, NodeId(n));
                            if radius.map(|r| total > r).unwrap_or(false) {
                                continue;
                            }
                            heap.push(Reverse((total, Key::Object(o.id.0))));
                        }
                    }
                    for (e, v) in self.g.neighbors(NodeId(n)) {
                        let w = self.g.weight(e, self.kind);
                        if w.is_infinite() {
                            continue;
                        }
                        let nd = d + w;
                        let cur = dist.get(&v.0).copied().unwrap_or(Weight::INFINITY);
                        if nd < cur && !settled.contains(&v.0) {
                            dist.insert(v.0, nd);
                            heap.push(Reverse((nd, Key::Node(v.0))));
                        }
                    }
                }
            }
        }
        QueryCost { hits, page_faults: self.io.faults(), nodes_visited }
    }
}

impl Engine for NetExpEngine {
    fn name(&self) -> &'static str {
        "NetExp"
    }

    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost {
        if k == 0 {
            return QueryCost { hits: Vec::new(), page_faults: 0, nodes_visited: 0 };
        }
        self.search(node, k, None, filter)
    }

    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost {
        self.search(node, usize::MAX, Some(radius), filter)
    }

    fn insert_object(&mut self, object: Object) -> UpdateCost {
        let (_, seconds) = timed(|| {
            let (a, b) = self.g.edge(object.edge).endpoints();
            self.node_objects.entry(a.0).or_default().push(object.id);
            self.node_objects.entry(b.0).or_default().push(object.id);
            self.objects.insert(object.id.0, object);
            // Object lives inside the endpoint node records; the affected
            // pages are simply rewritten (no index restructuring).
        });
        UpdateCost { seconds }
    }

    fn remove_object(&mut self, id: ObjectId) -> UpdateCost {
        let (_, seconds) = timed(|| {
            if let Some(o) = self.objects.remove(&id.0) {
                let (a, b) = self.g.edge(o.edge).endpoints();
                for n in [a.0, b.0] {
                    if let Some(v) = self.node_objects.get_mut(&n) {
                        v.retain(|&x| x != id);
                    }
                }
            }
        });
        UpdateCost { seconds }
    }

    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost {
        let kind = self.kind;
        let (_, seconds) = timed(|| {
            self.g.set_weight(e, kind, w).expect("live edge");
        });
        UpdateCost { seconds }
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.g.weight(e, self.kind)
    }

    fn index_size_bytes(&self) -> usize {
        self.clustering.size_bytes()
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_core::model::CategoryId;
    use road_network::generator::simple;

    fn engine_with_objects() -> NetExpEngine {
        let g = simple::grid(10, 10, 1.0);
        let objects = vec![
            Object::new(ObjectId(1), EdgeId(0), 0.5, CategoryId(0)),
            Object::new(ObjectId(2), EdgeId(50), 0.25, CategoryId(1)),
            Object::new(ObjectId(3), EdgeId(120), 0.75, CategoryId(0)),
        ];
        NetExpEngine::build(g, WeightKind::Distance, objects, 50)
    }

    #[test]
    fn knn_finds_objects_in_distance_order() {
        let mut e = engine_with_objects();
        let res = e.knn(NodeId(0), 3, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 3);
        assert!(res.hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(res.page_faults > 0);
        assert!(res.nodes_visited > 0);
    }

    #[test]
    fn range_respects_radius() {
        let mut e = engine_with_objects();
        let all = e.range(NodeId(0), Weight::new(100.0), &ObjectFilter::Any);
        assert_eq!(all.hits.len(), 3);
        let near = e.range(NodeId(0), Weight::new(1.0), &ObjectFilter::Any);
        assert!(near.hits.len() < 3);
        for h in &near.hits {
            assert!(h.distance <= Weight::new(1.0));
        }
    }

    #[test]
    fn filter_is_applied() {
        let mut e = engine_with_objects();
        let res = e.knn(NodeId(0), 5, &ObjectFilter::Category(CategoryId(0)));
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn object_churn_is_cheap_and_visible() {
        let mut e = engine_with_objects();
        e.insert_object(Object::new(ObjectId(9), EdgeId(3), 0.5, CategoryId(5)));
        let res = e.knn(NodeId(0), 10, &ObjectFilter::Category(CategoryId(5)));
        assert_eq!(res.hits.len(), 1);
        e.remove_object(ObjectId(9));
        let res = e.knn(NodeId(0), 10, &ObjectFilter::Category(CategoryId(5)));
        assert!(res.hits.is_empty());
    }

    #[test]
    fn weight_update_changes_answers() {
        let mut e = engine_with_objects();
        let before = e.knn(NodeId(0), 1, &ObjectFilter::Any).hits[0];
        // Make the object's edge endpoint unreachable cheaply: raise edge 0.
        e.set_edge_weight(EdgeId(0), Weight::new(500.0));
        let after = e.knn(NodeId(0), 1, &ObjectFilter::Any).hits[0];
        assert!(after.distance >= before.distance);
        assert_eq!(e.edge_weight(EdgeId(0)), Weight::new(500.0));
    }

    #[test]
    fn index_is_small_and_build_fast() {
        let e = engine_with_objects();
        assert!(e.index_size_bytes() > 0);
        assert!(e.index_size_bytes() < 1_000_000);
        assert!(e.build_seconds() < 1.0);
    }
}
