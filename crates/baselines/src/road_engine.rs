//! ROAD behind the uniform [`Engine`] interface.
//!
//! Wraps [`RoadFramework`] + [`AssociationDirectory`] together with the
//! paper's disk layout: node records (adjacency + shortcut tree + the
//! node's outgoing shortcuts) clustered into CCAM pages, object records
//! and non-empty Rnet abstracts packed into directory pages. Search
//! events reported by the framework's [`SearchObserver`] hook are mapped
//! onto those pages through a cold LRU tracker, yielding the same I/O
//! numbers the paper reports for ROAD.

use crate::layout::{
    ADJ_ENTRY_BYTES, NODE_BASE_BYTES, NS_DIRECTORY, NS_NODES, NS_OBJECTS, OBJECT_BYTES,
    TREE_ENTRY_BYTES,
};
use crate::{timed, Engine, QueryCost, UpdateCost};
use road_core::association::AssociationDirectory;
use road_core::framework::RoadFramework;
use road_core::hierarchy::RnetId;
use road_core::model::{Object, ObjectFilter, ObjectId};
use road_core::search::{KnnQuery, RangeQuery, SearchObserver};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, NodeId, Weight};
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::{IoTracker, PageMap};

/// Hierarchy shape for the wrapped framework.
#[derive(Clone, Copy, Debug)]
pub struct RoadEngineConfig {
    /// Partition fanout `p`.
    pub fanout: usize,
    /// Hierarchy depth `l`.
    pub levels: u32,
    /// Lemma-4 transitive-shortcut pruning.
    pub prune_transitive: bool,
}

impl Default for RoadEngineConfig {
    fn default() -> Self {
        RoadEngineConfig { fanout: 4, levels: 4, prune_transitive: true }
    }
}

/// The ROAD engine.
pub struct RoadEngine {
    fw: RoadFramework,
    ad: AssociationDirectory,
    clustering: NodeClustering,
    obj_pages: PageMap,
    dir_pages: PageMap,
    /// Out-of-line shortcut path details (bytes); cold during queries.
    path_bytes: usize,
    io: IoTracker,
    build_seconds: f64,
}

impl RoadEngine {
    /// Builds the framework, maps the objects, and lays out the pages.
    pub fn build(
        g: RoadNetwork,
        kind: WeightKind,
        objects: Vec<Object>,
        buffer_pages: usize,
        cfg: RoadEngineConfig,
    ) -> Result<Self, road_core::RoadError> {
        let (engine, build_seconds) = timed(|| -> Result<_, road_core::RoadError> {
            let fw = RoadFramework::builder(g)
                .fanout(cfg.fanout)
                .levels(cfg.levels)
                .metric(kind)
                .prune_transitive_shortcuts(cfg.prune_transitive)
                .build()?;
            let mut ad = AssociationDirectory::new(fw.hierarchy());
            for o in objects {
                ad.insert(fw.network(), fw.hierarchy(), o)?;
            }
            let clustering = Self::cluster(&fw);
            let (obj_pages, dir_pages) = Self::directory_pages(&fw, &ad);
            let path_bytes = Self::path_bytes(&fw);
            Ok(RoadEngine {
                fw,
                ad,
                clustering,
                obj_pages,
                dir_pages,
                path_bytes,
                io: IoTracker::new(buffer_pages),
                build_seconds: 0.0,
            })
        });
        let mut engine = engine?;
        engine.build_seconds = build_seconds;
        Ok(engine)
    }

    /// Direct access to the wrapped framework (ablation benches use it).
    pub fn framework(&self) -> &RoadFramework {
        &self.fw
    }

    /// Direct access to the wrapped directory.
    pub fn directory(&self) -> &AssociationDirectory {
        &self.ad
    }

    /// ROAD node record: header + adjacency + shortcut-tree entries + the
    /// node's outgoing shortcuts across all Rnets it borders.
    ///
    /// A shortcut entry in the *node record* is only what traversal needs —
    /// target border node and distance (12 bytes). The shortcut's detailed
    /// path (its `via` waypoints) is stored out of line in dedicated path
    /// pages ([`Self::path_bytes`]) that queries never touch; they are read
    /// only when a result path is materialised. This mirrors the paper's
    /// storage discussion (reverse-path details and in-Rnet transitive
    /// shortcuts are elided from hot records to "save memory").
    fn cluster(fw: &RoadFramework) -> NodeClustering {
        let g = fw.network();
        let hier = fw.hierarchy();
        let sc = fw.shortcuts();
        NodeClustering::build(g, |n| {
            let mut bytes = NODE_BASE_BYTES + ADJ_ENTRY_BYTES * g.degree(n);
            for &r in hier.bordered_rnets(n) {
                bytes += TREE_ENTRY_BYTES + 12 * sc.from(r, n).len();
            }
            bytes
        })
    }

    /// Out-of-line shortcut path details: 4 bytes per waypoint plus a
    /// 12-byte header per stored path.
    fn path_bytes(fw: &RoadFramework) -> usize {
        let hier = fw.hierarchy();
        let sc = fw.shortcuts();
        let mut bytes = 0usize;
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                for &b in hier.borders(r) {
                    for edge in sc.from(r, b) {
                        bytes += 12 + 4 * edge.via.len();
                    }
                }
            }
        }
        bytes
    }

    /// Object records and non-empty Rnet abstracts → directory pages.
    fn directory_pages(fw: &RoadFramework, ad: &AssociationDirectory) -> (PageMap, PageMap) {
        let mut obj_pages = PageMap::new();
        let mut objs: Vec<ObjectId> = ad.objects().map(|o| o.id).collect();
        objs.sort();
        for id in objs {
            obj_pages.insert(id.0, OBJECT_BYTES);
        }
        let mut dir_pages = PageMap::new();
        let hier = fw.hierarchy();
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                let a = ad.abstract_of(r);
                if !a.is_empty() {
                    dir_pages.insert(r.0 as u64, a.size_bytes() + 8);
                }
            }
        }
        (obj_pages, dir_pages)
    }

    fn refresh_directory_pages(&mut self) {
        let (obj_pages, dir_pages) = Self::directory_pages(&self.fw, &self.ad);
        self.obj_pages = obj_pages;
        self.dir_pages = dir_pages;
    }

    fn run(
        &mut self,
        query: impl FnOnce(&RoadFramework, &AssociationDirectory, &mut Obs) -> road_core::SearchResult,
    ) -> QueryCost {
        self.io.reset();
        let mut obs = Obs {
            clustering: &self.clustering,
            obj_pages: &self.obj_pages,
            dir_pages: &self.dir_pages,
            io: &mut self.io,
        };
        let res = query(&self.fw, &self.ad, &mut obs);
        QueryCost {
            hits: res.hits,
            page_faults: self.io.faults(),
            nodes_visited: res.stats.nodes_settled,
        }
    }
}

/// Maps framework search events onto simulated pages.
struct Obs<'a> {
    clustering: &'a NodeClustering,
    obj_pages: &'a PageMap,
    dir_pages: &'a PageMap,
    io: &'a mut IoTracker,
}

impl SearchObserver for Obs<'_> {
    fn node_settled(&mut self, n: NodeId) {
        let (start, span) = self.clustering.span_of(n);
        self.io.touch_span(NS_NODES, start, span);
    }

    fn abstract_checked(&mut self, r: RnetId) {
        match self.dir_pages.lookup(r.0 as u64) {
            Some((start, span)) => self.io.touch_span(NS_DIRECTORY, start, span),
            // Absent key: the B+-tree lookup still reads the (hot) root.
            None => self.io.touch(NS_DIRECTORY, u32::MAX),
        }
    }

    fn object_read(&mut self, o: ObjectId) {
        if let Some((start, span)) = self.obj_pages.lookup(o.0) {
            self.io.touch_span(NS_OBJECTS, start, span);
        }
    }
}

impl Engine for RoadEngine {
    fn name(&self) -> &'static str {
        "ROAD"
    }

    fn knn(&mut self, node: NodeId, k: usize, filter: &ObjectFilter) -> QueryCost {
        let q = KnnQuery::new(node, k).with_filter(filter.clone());
        self.run(|fw, ad, obs| fw.knn_observed(ad, &q, obs).expect("valid query"))
    }

    fn range(&mut self, node: NodeId, radius: Weight, filter: &ObjectFilter) -> QueryCost {
        let q = RangeQuery::new(node, radius).with_filter(filter.clone());
        self.run(|fw, ad, obs| fw.range_observed(ad, &q, obs).expect("valid query"))
    }

    fn insert_object(&mut self, object: Object) -> UpdateCost {
        let (_, seconds) = timed(|| {
            self.ad.insert(self.fw.network(), self.fw.hierarchy(), object).expect("valid object");
            self.refresh_directory_pages();
        });
        UpdateCost { seconds }
    }

    fn remove_object(&mut self, id: ObjectId) -> UpdateCost {
        let (_, seconds) = timed(|| {
            // Tolerate unknown ids for trait uniformity (the other engines
            // treat removal of a missing object as a no-op).
            if self.ad.remove(self.fw.network(), self.fw.hierarchy(), id).is_ok() {
                self.refresh_directory_pages();
            }
        });
        UpdateCost { seconds }
    }

    fn set_edge_weight(&mut self, e: EdgeId, w: Weight) -> UpdateCost {
        let (_, seconds) = timed(|| {
            self.fw.set_edge_weight(e, w).expect("live edge");
            // Shortcut sets may have changed; repack node records and the
            // out-of-line path store.
            self.clustering = Self::cluster(&self.fw);
            self.path_bytes = Self::path_bytes(&self.fw);
        });
        UpdateCost { seconds }
    }

    fn edge_weight(&self, e: EdgeId) -> Weight {
        self.fw.network().weight(e, self.fw.metric())
    }

    fn index_size_bytes(&self) -> usize {
        self.clustering.size_bytes()
            + self.obj_pages.size_bytes()
            + self.dir_pages.size_bytes()
            + road_storage::page::pages_for(self.path_bytes) * road_storage::PAGE_SIZE
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_core::model::CategoryId;
    use road_network::generator::simple;

    fn engine() -> RoadEngine {
        let g = simple::grid(12, 12, 1.0);
        let objects = vec![
            Object::new(ObjectId(1), EdgeId(0), 0.5, CategoryId(0)),
            Object::new(ObjectId(2), EdgeId(90), 0.25, CategoryId(1)),
            Object::new(ObjectId(3), EdgeId(200), 0.75, CategoryId(0)),
        ];
        RoadEngine::build(
            g,
            WeightKind::Distance,
            objects,
            50,
            RoadEngineConfig { fanout: 4, levels: 2, prune_transitive: true },
        )
        .unwrap()
    }

    #[test]
    fn knn_works_and_reports_io() {
        let mut e = engine();
        let res = e.knn(NodeId(77), 2, &ObjectFilter::Any);
        assert_eq!(res.hits.len(), 2);
        assert!(res.hits[0].distance <= res.hits[1].distance);
        assert!(res.page_faults > 0);
    }

    #[test]
    fn range_and_filters() {
        let mut e = engine();
        let res = e.range(NodeId(0), Weight::new(30.0), &ObjectFilter::Category(CategoryId(0)));
        assert_eq!(res.hits.len(), 2);
    }

    #[test]
    fn object_churn_keeps_directory_pages_fresh() {
        let mut e = engine();
        let before = e.index_size_bytes();
        for i in 10..60u64 {
            e.insert_object(Object::new(ObjectId(i), EdgeId((i * 3) as u32), 0.5, CategoryId(2)));
        }
        assert!(e.index_size_bytes() >= before);
        let res = e.knn(NodeId(0), 50, &ObjectFilter::Category(CategoryId(2)));
        assert_eq!(res.hits.len(), 50);
        e.remove_object(ObjectId(10));
        let res = e.knn(NodeId(0), 50, &ObjectFilter::Category(CategoryId(2)));
        assert_eq!(res.hits.len(), 49);
    }

    #[test]
    fn weight_updates_flow_through() {
        let mut e = engine();
        let before = e.knn(NodeId(140), 1, &ObjectFilter::Any).hits[0];
        // Cut the answer's vicinity off with heavy weights.
        let o = e.directory().object(before.object).unwrap().clone();
        let w = Weight::new(200.0);
        e.set_edge_weight(o.edge, w);
        let after = e.knn(NodeId(140), 1, &ObjectFilter::Any).hits[0];
        assert!(after.distance > before.distance || after.object != before.object);
    }
}
