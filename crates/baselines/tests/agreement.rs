//! The reproduction's keystone test: all four approaches (ROAD, NetExp,
//! Euclidean, DistIdx) must return identical answers for identical
//! queries — they differ only in cost.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_baselines::road_engine::RoadEngineConfig;
use road_baselines::{DistIdxEngine, Engine, EuclideanEngine, NetExpEngine, RoadEngine};
use road_core::model::{CategoryId, Object, ObjectFilter, ObjectId};
use road_core::search::SearchHit;
use road_network::generator::{simple, Dataset};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, NodeId, Weight};

fn scatter(g: &RoadNetwork, count: usize, categories: u16, seed: u64) -> Vec<Object> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    (0..count)
        .map(|i| {
            Object::new(
                ObjectId(i as u64),
                edges[rng.random_range(0..edges.len())],
                rng.random_range(0.0..=1.0),
                CategoryId(rng.random_range(0..categories.max(1))),
            )
        })
        .collect()
}

fn engines(g: &RoadNetwork, kind: WeightKind, objects: &[Object]) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(NetExpEngine::build(g.clone(), kind, objects.to_vec(), 50)),
        Box::new(EuclideanEngine::build(g.clone(), kind, objects.to_vec(), 50)),
        Box::new(DistIdxEngine::build(g.clone(), kind, objects.to_vec(), 50)),
        Box::new(
            RoadEngine::build(
                g.clone(),
                kind,
                objects.to_vec(),
                50,
                RoadEngineConfig { fanout: 4, levels: 3, prune_transitive: true },
            )
            .unwrap(),
        ),
    ]
}

fn normalize(hits: &[SearchHit]) -> Vec<(u64, f64)> {
    let mut v: Vec<(u64, f64)> = hits.iter().map(|h| (h.object.0, h.distance.get())).collect();
    v.sort_by_key(|&(o, _)| o);
    v
}

/// DistIdx stores f32 distances (4-byte signature entries), so agreement
/// is up to single-precision rounding, not bit-exact.
fn assert_agree(results: &[(&'static str, Vec<SearchHit>)], ctx: &str) {
    let (ref_name, ref_hits) = &results[0];
    let want = normalize(ref_hits);
    for (name, hits) in &results[1..] {
        let got = normalize(hits);
        assert_eq!(
            got.iter().map(|&(o, _)| o).collect::<Vec<_>>(),
            want.iter().map(|&(o, _)| o).collect::<Vec<_>>(),
            "{ctx}: {name} returns different objects than {ref_name}"
        );
        for (&(o, dg), &(_, dw)) in got.iter().zip(&want) {
            let scale = dg.abs().max(dw.abs()).max(1.0);
            assert!(
                (dg - dw).abs() <= 1e-5 * scale,
                "{ctx}: {name} distance for o{o} = {dg} vs {ref_name} {dw}"
            );
        }
    }
}

#[test]
fn all_engines_agree_on_knn_grid() {
    let g = simple::grid(13, 13, 1.0);
    let objects = scatter(&g, 20, 3, 1);
    let mut engines = engines(&g, WeightKind::Distance, &objects);
    let mut rng = StdRng::seed_from_u64(2);
    for trial in 0..12 {
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let k = rng.random_range(1..6);
        let results: Vec<(&'static str, Vec<SearchHit>)> = engines
            .iter_mut()
            .map(|e| (e.name(), e.knn(node, k, &ObjectFilter::Any).hits))
            .collect();
        assert_agree(&results, &format!("knn trial {trial} node {node} k {k}"));
        assert_eq!(results[0].1.len(), k.min(objects.len()));
    }
}

#[test]
fn all_engines_agree_on_range_grid() {
    let g = simple::grid(11, 11, 1.0);
    let objects = scatter(&g, 15, 2, 3);
    let mut engines = engines(&g, WeightKind::Distance, &objects);
    let mut rng = StdRng::seed_from_u64(4);
    for trial in 0..10 {
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let radius = Weight::new(rng.random_range(1.0..15.0));
        let results: Vec<(&'static str, Vec<SearchHit>)> = engines
            .iter_mut()
            .map(|e| (e.name(), e.range(node, radius, &ObjectFilter::Any).hits))
            .collect();
        assert_agree(&results, &format!("range trial {trial} node {node} r {radius}"));
    }
}

#[test]
fn all_engines_agree_with_category_filters() {
    let g = simple::grid(10, 10, 1.0);
    let objects = scatter(&g, 24, 4, 5);
    let mut engines = engines(&g, WeightKind::Distance, &objects);
    for cat in 0..4u16 {
        let filter = ObjectFilter::Category(CategoryId(cat));
        let results: Vec<(&'static str, Vec<SearchHit>)> =
            engines.iter_mut().map(|e| (e.name(), e.knn(NodeId(37), 4, &filter).hits)).collect();
        assert_agree(&results, &format!("filtered knn cat {cat}"));
    }
}

#[test]
fn all_engines_agree_on_ca_like_network() {
    let g = Dataset::CaHighways.generate_scaled(0.02, 9).unwrap();
    let objects = scatter(&g, 10, 1, 6);
    let mut engines = engines(&g, WeightKind::Distance, &objects);
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..6 {
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let results: Vec<(&'static str, Vec<SearchHit>)> = engines
            .iter_mut()
            .map(|e| (e.name(), e.knn(node, 3, &ObjectFilter::Any).hits))
            .collect();
        assert_agree(&results, &format!("CA trial {trial} node {node}"));
    }
}

#[test]
fn all_engines_agree_under_travel_time_metric() {
    // Travel time is not proportional to geometry (speeds differ per
    // road), which stresses the Euclidean engine's admissibility handling.
    let g = Dataset::CaHighways.generate_scaled(0.015, 13).unwrap();
    let objects = scatter(&g, 8, 1, 8);
    let mut engines = engines(&g, WeightKind::TravelTime, &objects);
    let mut rng = StdRng::seed_from_u64(11);
    for trial in 0..5 {
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let results: Vec<(&'static str, Vec<SearchHit>)> = engines
            .iter_mut()
            .map(|e| (e.name(), e.knn(node, 2, &ObjectFilter::Any).hits))
            .collect();
        assert_agree(&results, &format!("travel-time trial {trial} node {node}"));
    }
}

#[test]
fn all_engines_agree_after_updates() {
    let g = simple::grid(9, 9, 1.0);
    let objects = scatter(&g, 12, 2, 15);
    let mut engines = engines(&g, WeightKind::Distance, &objects);
    let mut rng = StdRng::seed_from_u64(16);
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    let mut next_id = 1000u64;
    for step in 0..10 {
        match step % 3 {
            0 => {
                // weight change on a random edge
                let e = edges[rng.random_range(0..edges.len())];
                let w = Weight::new(rng.random_range(0.2..4.0));
                for eng in engines.iter_mut() {
                    eng.set_edge_weight(e, w);
                }
            }
            1 => {
                // object insertion
                let o = Object::new(
                    ObjectId(next_id),
                    edges[rng.random_range(0..edges.len())],
                    rng.random_range(0.0..=1.0),
                    CategoryId(0),
                );
                next_id += 1;
                for eng in engines.iter_mut() {
                    eng.insert_object(o.clone());
                }
            }
            _ => {
                // object deletion
                let victim = ObjectId(rng.random_range(0..12) as u64);
                for eng in engines.iter_mut() {
                    eng.remove_object(victim);
                }
            }
        }
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        let results: Vec<(&'static str, Vec<SearchHit>)> = engines
            .iter_mut()
            .map(|e| (e.name(), e.knn(node, 3, &ObjectFilter::Any).hits))
            .collect();
        assert_agree(&results, &format!("update step {step}"));
    }
}

#[test]
fn road_visits_fewest_nodes_with_sparse_objects() {
    // The paper's headline: with few objects on a large network, ROAD's
    // pruning visits far fewer node records than blind expansion.
    let g = simple::grid(24, 24, 1.0);
    let objects = scatter(&g, 3, 1, 21);
    let mut netexp = NetExpEngine::build(g.clone(), WeightKind::Distance, objects.clone(), 50);
    let mut road = RoadEngine::build(
        g.clone(),
        WeightKind::Distance,
        objects,
        50,
        RoadEngineConfig { fanout: 4, levels: 3, prune_transitive: true },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let mut road_total = 0usize;
    let mut netexp_total = 0usize;
    for _ in 0..10 {
        let node = NodeId(rng.random_range(0..g.num_nodes() as u32));
        road_total += road.knn(node, 1, &ObjectFilter::Any).nodes_visited;
        netexp_total += netexp.knn(node, 1, &ObjectFilter::Any).nodes_visited;
    }
    assert!(
        road_total * 2 < netexp_total,
        "ROAD visited {road_total} nodes vs NetExp {netexp_total}; pruning ineffective"
    );
}

#[test]
fn removing_deleted_object_is_harmless() {
    let g = simple::grid(6, 6, 1.0);
    let objects = scatter(&g, 4, 1, 33);
    let mut netexp = NetExpEngine::build(g.clone(), WeightKind::Distance, objects.clone(), 50);
    netexp.remove_object(ObjectId(0));
    netexp.remove_object(ObjectId(0)); // double delete: no panic
    let res = netexp.knn(NodeId(0), 10, &ObjectFilter::Any);
    assert_eq!(res.hits.len(), 3);
}
