//! Criterion microbenches behind Figures 13/14/19: framework construction
//! costs — partitioning, shortcut building, and full engine builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use road_bench::config::Params;
use road_bench::runner::{build_engine, EngineKind};
use road_bench::workload;
use road_core::hierarchy::{HierarchyConfig, RnetHierarchy};
use road_core::shortcut::{ShortcutOptions, ShortcutStore};
use road_network::generator::Dataset;
use road_network::partition::{partition_edges, PartitionOptions};
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let g = Dataset::CaHighways.generate_scaled(0.1, 7).unwrap();
    let edges: Vec<_> = g.edge_ids().collect();
    c.bench_function("partition_ca10pct_p4", |b| {
        b.iter(|| black_box(partition_edges(&g, &edges, 4, &PartitionOptions::default()).len()))
    });
}

fn bench_hierarchy_and_shortcuts(c: &mut Criterion) {
    let g = Dataset::CaHighways.generate_scaled(0.1, 7).unwrap();
    let mut group = c.benchmark_group("overlay_build_ca10pct");
    for levels in [2u32, 3, 4] {
        group.bench_function(BenchmarkId::new("hierarchy+shortcuts", levels), |b| {
            b.iter(|| {
                let cfg = HierarchyConfig { fanout: 4, levels, ..Default::default() };
                let hier = RnetHierarchy::build(&g, &cfg).unwrap();
                let sc = ShortcutStore::build(
                    &g,
                    &hier,
                    road_network::graph::WeightKind::Distance,
                    &ShortcutOptions::default(),
                );
                black_box(sc.num_shortcuts())
            })
        });
    }
    group.finish();
}

fn bench_engine_builds(c: &mut Criterion) {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.05, params.seed).unwrap();
    let objects = workload::uniform_objects(&g, 50, params.seed + 1);
    let mut group = c.benchmark_group("engine_build_ca5pct_o50");
    group.sample_size(10);
    for kind in EngineKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| black_box(build_engine(kind, &g, &objects, &params, 3).index_size_bytes()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_partition, bench_hierarchy_and_shortcuts, bench_engine_builds
);
criterion_main!(benches);
