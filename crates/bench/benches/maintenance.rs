//! Criterion microbenches behind Figures 15/16: object churn and
//! edge-weight repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_bench::config::Params;
use road_bench::runner::{build_engine, EngineKind};
use road_bench::workload;
use road_core::model::{CategoryId, Object, ObjectId};
use road_network::generator::Dataset;
use road_network::{EdgeId, Weight};
use std::hint::black_box;

fn bench_object_churn(c: &mut Criterion) {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.1, params.seed).unwrap();
    let objects = workload::uniform_objects(&g, 100, params.seed + 1);
    let mut group = c.benchmark_group("object_churn_ca10pct");
    group.sample_size(10);
    // DistIdx is orders of magnitude slower; bench the fast three plus a
    // single-sample DistIdx for the record.
    for kind in [EngineKind::NetExp, EngineKind::Euclidean, EngineKind::Road] {
        let mut engine = build_engine(kind, &g, &objects, &params, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 10_000u64;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let e = EdgeId(rng.random_range(0..g.num_edges() as u32));
                let o = Object::new(ObjectId(next), e, 0.5, CategoryId(0));
                next += 1;
                engine.insert_object(o.clone());
                black_box(engine.remove_object(o.id).seconds)
            })
        });
    }
    group.finish();
}

fn bench_edge_weight_repair(c: &mut Criterion) {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.1, params.seed).unwrap();
    let objects = workload::uniform_objects(&g, 100, params.seed + 2);
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    let mut group = c.benchmark_group("edge_weight_repair_ca10pct");
    group.sample_size(10);
    for kind in [EngineKind::NetExp, EngineKind::Euclidean, EngineKind::Road] {
        let mut engine = build_engine(kind, &g, &objects, &params, 3);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let e = edges[rng.random_range(0..edges.len())];
                let old = engine.edge_weight(e);
                engine.set_edge_weight(e, Weight::new(old.get() * 1.5));
                black_box(engine.set_edge_weight(e, old).seconds)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_object_churn, bench_edge_weight_repair
);
criterion_main!(benches);
