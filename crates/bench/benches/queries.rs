//! Criterion microbenches for the query paths behind Figures 17 and 18:
//! kNN and range search on a CA-like network, all four approaches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use road_bench::config::Params;
use road_bench::runner::{build_engine, EngineKind};
use road_bench::workload;
use road_core::model::ObjectFilter;
use road_network::dijkstra::estimate_diameter;
use road_network::generator::Dataset;
use road_network::Weight;
use std::hint::black_box;

fn bench_knn(c: &mut Criterion) {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.1, params.seed).unwrap();
    let objects = workload::uniform_objects(&g, 100, params.seed + 1);
    let nodes = workload::query_nodes(&g, 64, params.seed + 2);
    let mut group = c.benchmark_group("knn_ca10pct_o100");
    for kind in EngineKind::ALL {
        let mut engine = build_engine(kind, &g, &objects, &params, 3);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let n = nodes[i % nodes.len()];
                i += 1;
                black_box(engine.knn(n, 5, &ObjectFilter::Any).hits.len())
            })
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.1, params.seed).unwrap();
    let diameter = estimate_diameter(&g, params.metric);
    let radius = Weight::new(diameter.get() * 0.1);
    let objects = workload::uniform_objects(&g, 100, params.seed + 3);
    let nodes = workload::query_nodes(&g, 64, params.seed + 4);
    let mut group = c.benchmark_group("range_ca10pct_o100_r0.1");
    for kind in EngineKind::ALL {
        let mut engine = build_engine(kind, &g, &objects, &params, 3);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let n = nodes[i % nodes.len()];
                i += 1;
                black_box(engine.range(n, radius, &ObjectFilter::Any).hits.len())
            })
        });
    }
    group.finish();
}

fn bench_knn_object_density(c: &mut Criterion) {
    // Figure 17b's driver: ROAD vs NetExp convergence as objects densify.
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.1, params.seed).unwrap();
    let nodes = workload::query_nodes(&g, 64, params.seed + 5);
    let mut group = c.benchmark_group("knn_vs_density");
    for count in [10usize, 100, 1000] {
        let objects = workload::uniform_objects(&g, count, params.seed + count as u64);
        for kind in [EngineKind::NetExp, EngineKind::Road] {
            let mut engine = build_engine(kind, &g, &objects, &params, 3);
            let mut i = 0usize;
            group.bench_function(BenchmarkId::new(kind.name(), count), |b| {
                b.iter(|| {
                    let n = nodes[i % nodes.len()];
                    i += 1;
                    black_box(engine.knn(n, 5, &ObjectFilter::Any).hits.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_knn, bench_range, bench_knn_object_density
);
criterion_main!(benches);
