//! Criterion microbenches for the substrates: Dijkstra expansion, the
//! paged B+-tree, the R-tree, and the LRU buffer — the components whose
//! constants sit under every figure.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_network::dijkstra::Dijkstra;
use road_network::generator::Dataset;
use road_network::graph::WeightKind;
use road_network::NodeId;
use road_spatial::RTree;
use road_storage::{BPlusTree, BufferPool, LruCache, PageStore};
use std::hint::black_box;

fn bench_dijkstra(c: &mut Criterion) {
    let g = Dataset::CaHighways.generate_scaled(0.1, 3).unwrap();
    let mut dij = Dijkstra::for_network(&g);
    let mut rng = StdRng::seed_from_u64(4);
    let n = g.num_nodes() as u32;
    c.bench_function("dijkstra_p2p_ca10pct", |b| {
        b.iter(|| {
            let a = NodeId(rng.random_range(0..n));
            let z = NodeId(rng.random_range(0..n));
            black_box(dij.one_to_one(&g, WeightKind::Distance, a, z))
        })
    });
}

fn bench_bptree(c: &mut Criterion) {
    let mut pool = BufferPool::new(PageStore::new(), 256);
    let mut tree = BPlusTree::new(&mut pool).unwrap();
    for k in 0..100_000u64 {
        tree.insert(&mut pool, k * 7 % 100_000, k).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("bptree_get_100k", |b| {
        b.iter(|| black_box(tree.get(&mut pool, rng.random_range(0..100_000)).unwrap()))
    });
    c.bench_function("bptree_insert_remove", |b| {
        b.iter(|| {
            let k = rng.random_range(100_000..200_000u64);
            tree.insert(&mut pool, k, k).unwrap();
            black_box(tree.remove(&mut pool, k).unwrap())
        })
    });
}

fn bench_rtree(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let pts: Vec<(road_network::Point, u64)> = (0..10_000)
        .map(|i| {
            (
                road_network::Point::new(
                    rng.random_range(0.0..1000.0),
                    rng.random_range(0.0..1000.0),
                ),
                i,
            )
        })
        .collect();
    let tree = RTree::bulk_load(&pts, 64);
    c.bench_function("rtree_knn10_of_10k", |b| {
        b.iter(|| {
            let p = road_network::Point::new(
                rng.random_range(0.0..1000.0),
                rng.random_range(0.0..1000.0),
            );
            black_box(tree.nearest(p).take(10).count())
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    let mut lru: LruCache<u64, u64> = LruCache::new(50);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("lru50_mixed_ops", |b| {
        b.iter(|| {
            let k = rng.random_range(0..200u64);
            if lru.get(&k).is_none() {
                lru.put(k, k);
            }
            black_box(lru.len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dijkstra, bench_bptree, bench_rtree, bench_lru
);
criterion_main!(benches);
