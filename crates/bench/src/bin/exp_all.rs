//! Runs the complete experiment suite in paper order; the output of
//! `--scale medium` is what EXPERIMENTS.md records. Besides the printed
//! markdown, the run is captured as `BENCH_<scale>.json` in the working
//! directory (CI archives the `--scale small` one as an artifact).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("Table 1  defaults: page 4KB, buffer 50 pages, p=4, |O|=100, k=5, r=0.1*diam");
        println!("fig11_anatomy        single 3NN query anatomy (time + I/O per approach)");
        println!("fig13_index_objects  index time/size vs object cardinality (CA)");
        println!("fig14_index_networks index time/size vs network");
        println!("fig15_object_update  object deletion/insertion time");
        println!("fig16_network_update edge deletion/insertion time");
        println!("fig17_knn            kNN time vs k / |O| / network");
        println!("fig18_range          range time vs r / |O| / network");
        println!("fig19_levels         hierarchy depth sweep (index vs query time)");
        println!("ablation             distribution / pruning / abstract ablations");
        println!("exp_disk             disk-resident serving: real page I/O vs buffer size and k");
        println!("exp_live             LiveEngine reader QPS under a concurrent update writer");
        println!("exp_throughput       QueryEngine QPS: workspace reuse + thread scaling");
        println!("                     (separate binary; not part of the exp_all suite)");
        return;
    }
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::table::start_recording();
    road_bench::experiments::run_all(&ctx);
    let tables = road_bench::table::take_recorded();
    let json = road_bench::report::suite_json(&ctx.scale, &tables);
    let path = format!("BENCH_{}.json", ctx.scale.name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {path} ({} tables)", tables.len()),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
