//! Disk-resident serving through the real storage stack: page accesses
//! and buffer hit rate vs buffer size (oracle-checked, monotonicity
//! asserted), cold per-query faults vs k against the NetExp/DistIdx
//! baselines, and serving straight from a page-granularly opened
//! `ROADFW01` image.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::experiments::disk::run(&ctx);
}
