//! Measures the mixed read/write throughput of the snapshot-published
//! `LiveEngine` on the fig17 kNN workload: reader QPS with and without a
//! concurrent writer streaming edge-weight updates, plus the update
//! locality and structural-sharing evidence.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::experiments::live::run(&ctx);
}
