//! Measures served query throughput (QPS) of the concurrent `QueryEngine`
//! on the fig17 kNN workload: fresh-vs-reused workspace single-thread
//! rates, plus multi-thread `batch_knn` scaling.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::experiments::throughput::run(&ctx);
}
