//! Regenerates the paper experiment implemented in
//! `road_bench::experiments::fig14`. Pass `--scale small|medium|full`.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::experiments::fig14::run(&ctx);
}
