//! Regenerates the paper experiment implemented in
//! `road_bench::experiments::fig16`. Pass `--scale small|medium|full`.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    road_bench::experiments::fig16::run(&ctx);
}
