//! Regenerates Figure 18 (range query performance). Pass
//! `--axis k|objects|network` for one sub-figure, `--scale` for size.

fn main() {
    let ctx = road_bench::experiments::Ctx::from_args();
    let axis = road_bench::experiments::fig17::Axis::from_args();
    road_bench::experiments::fig18::run(&ctx, axis);
}
