//! Experiment parameters (the paper's Table 1) and run scales.

use road_network::generator::Dataset;
use road_network::graph::{RoadNetwork, WeightKind};

/// How large a run is; chosen with `--scale small|medium|full`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpScale {
    /// Label for output.
    pub name: &'static str,
    /// Scale factor for CA.
    pub ca: f64,
    /// Scale factor for NA and SF.
    pub big: f64,
    /// Queries averaged per measurement point (paper: 100).
    pub queries: usize,
    /// Update trials per measurement point (paper: 100).
    pub trials: usize,
}

/// CI-sized runs.
pub const SMALL: ExpScale =
    ExpScale { name: "small", ca: 0.04, big: 0.012, queries: 15, trials: 8 };
/// CA at paper size, NA/SF at a quarter (default).
pub const MEDIUM: ExpScale =
    ExpScale { name: "medium", ca: 1.0, big: 0.25, queries: 50, trials: 25 };
/// The paper's exact sizes.
pub const FULL: ExpScale = ExpScale { name: "full", ca: 1.0, big: 1.0, queries: 100, trials: 100 };

impl ExpScale {
    /// Parses `--scale NAME` from argv (default `medium`).
    pub fn from_args() -> ExpScale {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_list(&args)
    }

    /// Parses from an explicit argument list (testable).
    pub fn from_arg_list(args: &[String]) -> ExpScale {
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("small") => SMALL,
                Some("full") => FULL,
                Some("medium") | None => MEDIUM,
                Some(other) => {
                    eprintln!("unknown scale '{other}', using medium");
                    MEDIUM
                }
            },
            None => MEDIUM,
        }
    }

    /// The network scale for a dataset.
    pub fn factor(&self, ds: Dataset) -> f64 {
        match ds {
            Dataset::CaHighways => self.ca,
            _ => self.big,
        }
    }
}

/// Fixed parameters of the evaluation (Table 1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Partition fanout `p`.
    pub fanout: usize,
    /// Default object cardinality `|O|`.
    pub objects: usize,
    /// Default number of NNs `k`.
    pub k: usize,
    /// Default search range as a fraction of the network diameter.
    pub range_fraction: f64,
    /// Buffer pool pages.
    pub buffer_pages: usize,
    /// Metric.
    pub metric: WeightKind,
    /// Master seed; every derived workload offsets from it.
    pub seed: u64,
    /// Simulated disk latency charged per page fault, in milliseconds.
    /// The paper ran on 2009 spinning disks; its reported times are
    /// dominated by I/O (e.g. Figure 11: 475 ms for 230 pages ≈ 2 ms per
    /// fault). "Processing time" below = measured CPU + faults × this.
    pub io_ms_per_fault: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            fanout: 4,
            objects: 100,
            k: 5,
            range_fraction: 0.1,
            buffer_pages: road_storage::DEFAULT_BUFFER_PAGES,
            metric: WeightKind::Distance,
            seed: 0xEDB7_2009,
            io_ms_per_fault: 2.0,
        }
    }
}

/// Generates the network for `ds` at this scale.
pub fn network(ds: Dataset, scale: &ExpScale, params: &Params) -> RoadNetwork {
    ds.generate_scaled(scale.factor(ds), params.seed).expect("feasible dataset targets")
}

/// Hierarchy depth for a dataset at a scale: the paper's `l` at full
/// size, size-adjusted below it.
pub fn levels(ds: Dataset, g: &RoadNetwork, scale: &ExpScale, params: &Params) -> u32 {
    if scale.factor(ds) >= 1.0 {
        ds.default_levels()
    } else {
        ds.suggested_levels(g.num_edges(), params.fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &str| vec!["bin".to_string(), "--scale".to_string(), s.to_string()];
        assert_eq!(ExpScale::from_arg_list(&args("small")).name, "small");
        assert_eq!(ExpScale::from_arg_list(&args("full")).name, "full");
        assert_eq!(ExpScale::from_arg_list(&args("bogus")).name, "medium");
        assert_eq!(ExpScale::from_arg_list(&["bin".to_string()]).name, "medium");
    }

    #[test]
    fn network_and_levels() {
        let p = Params::default();
        let g = network(Dataset::CaHighways, &SMALL, &p);
        assert!(g.num_nodes() > 500);
        let l = levels(Dataset::CaHighways, &g, &SMALL, &p);
        assert!((2..=10).contains(&l));
        // Full scale uses the paper's settings.
        assert_eq!(Dataset::CaHighways.default_levels(), 4);
    }
}
