//! Experiment parameters (the paper's Table 1) and run scales.

use road_network::generator::Dataset;
use road_network::graph::{RoadNetwork, WeightKind};

/// How large a run is; chosen with `--scale small|medium|full|large`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpScale {
    /// Label for output.
    pub name: &'static str,
    /// Scale factor for CA.
    pub ca: f64,
    /// Scale factor for NA and SF.
    pub big: f64,
    /// Scale factor for the beyond-paper CONT preset (only benched at
    /// `large`, but every scale carries a feasible factor so ad-hoc runs
    /// and the ignored CI smoke can shrink it).
    pub continent: f64,
    /// Queries averaged per measurement point (paper: 100).
    pub queries: usize,
    /// Update trials per measurement point (paper: 100).
    pub trials: usize,
}

/// CI-sized runs.
pub const SMALL: ExpScale =
    ExpScale { name: "small", ca: 0.04, big: 0.012, continent: 0.004, queries: 15, trials: 8 };
/// CA at paper size, NA/SF at a quarter (default).
pub const MEDIUM: ExpScale =
    ExpScale { name: "medium", ca: 1.0, big: 0.25, continent: 0.05, queries: 50, trials: 25 };
/// The paper's exact sizes.
pub const FULL: ExpScale =
    ExpScale { name: "full", ca: 1.0, big: 1.0, continent: 1.0, queries: 100, trials: 100 };
/// Beyond the paper: the three paper networks at full size plus the
/// ~10^6-node continental preset.
pub const LARGE: ExpScale =
    ExpScale { name: "large", ca: 1.0, big: 1.0, continent: 1.0, queries: 100, trials: 100 };

impl ExpScale {
    /// Parses `--scale NAME` from argv (default `medium`); an unknown
    /// name is a hard error — silently benching the wrong world would
    /// pollute the recorded perf trajectory.
    pub fn from_args() -> ExpScale {
        let args: Vec<String> = std::env::args().collect();
        match Self::from_arg_list(&args) {
            Ok(scale) => scale,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Parses from an explicit argument list (testable).
    pub fn from_arg_list(args: &[String]) -> Result<ExpScale, String> {
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("small") => Ok(SMALL),
                Some("full") => Ok(FULL),
                Some("large") => Ok(LARGE),
                Some("medium") | None => Ok(MEDIUM),
                Some(other) => {
                    Err(format!("unknown scale '{other}' (valid: small, medium, full, large)"))
                }
            },
            None => Ok(MEDIUM),
        }
    }

    /// The datasets benched at this scale: the paper's three everywhere,
    /// plus the continental preset at `large`.
    pub fn datasets(&self) -> &'static [Dataset] {
        const PAPER: [Dataset; 3] = Dataset::ALL;
        const WITH_CONTINENT: [Dataset; 4] =
            [Dataset::CaHighways, Dataset::NaHighways, Dataset::SfStreets, Dataset::Continent];
        if self.name == "large" {
            &WITH_CONTINENT
        } else {
            &PAPER
        }
    }

    /// The network scale for a dataset.
    pub fn factor(&self, ds: Dataset) -> f64 {
        match ds {
            Dataset::CaHighways => self.ca,
            Dataset::Continent => self.continent,
            _ => self.big,
        }
    }
}

/// Fixed parameters of the evaluation (Table 1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Partition fanout `p`.
    pub fanout: usize,
    /// Default object cardinality `|O|`.
    pub objects: usize,
    /// Default number of NNs `k`.
    pub k: usize,
    /// Default search range as a fraction of the network diameter.
    pub range_fraction: f64,
    /// Buffer pool pages.
    pub buffer_pages: usize,
    /// Metric.
    pub metric: WeightKind,
    /// Master seed; every derived workload offsets from it.
    pub seed: u64,
    /// Simulated disk latency charged per page fault, in milliseconds.
    /// The paper ran on 2009 spinning disks; its reported times are
    /// dominated by I/O (e.g. Figure 11: 475 ms for 230 pages ≈ 2 ms per
    /// fault). "Processing time" below = measured CPU + faults × this.
    pub io_ms_per_fault: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            fanout: 4,
            objects: 100,
            k: 5,
            range_fraction: 0.1,
            buffer_pages: road_storage::DEFAULT_BUFFER_PAGES,
            metric: WeightKind::Distance,
            seed: 0xEDB7_2009,
            io_ms_per_fault: 2.0,
        }
    }
}

/// Generates the network for `ds` at this scale, or a diagnostic naming
/// everything needed to reproduce the failure.
pub fn try_network(ds: Dataset, scale: &ExpScale, params: &Params) -> Result<RoadNetwork, String> {
    let factor = scale.factor(ds);
    let diag = |detail: String| {
        format!(
            "cannot generate dataset {} at scale factor {factor} (seed {:#x}): {detail}",
            ds.name(),
            params.seed
        )
    };
    // Checked here rather than asserted downstream: a hand-edited scale
    // must not take the whole bench run down with a context-free panic.
    if !(factor > 0.0 && factor <= 1.0) {
        return Err(diag("scale factor must be in (0, 1]".to_string()));
    }
    ds.generate_scaled(factor, params.seed).map_err(|e| diag(e.to_string()))
}

/// Generates the network for `ds` at this scale; on infeasible targets
/// the process exits with the [`try_network`] diagnostic instead of a
/// context-free panic.
pub fn network(ds: Dataset, scale: &ExpScale, params: &Params) -> RoadNetwork {
    match try_network(ds, scale, params) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Hierarchy depth for a dataset at a scale: the paper's `l` at full
/// size, size-adjusted below it.
pub fn levels(ds: Dataset, g: &RoadNetwork, scale: &ExpScale, params: &Params) -> u32 {
    if scale.factor(ds) >= 1.0 {
        ds.default_levels()
    } else {
        ds.suggested_levels(g.num_edges(), params.fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &str| vec!["bin".to_string(), "--scale".to_string(), s.to_string()];
        assert_eq!(ExpScale::from_arg_list(&args("small")).unwrap().name, "small");
        assert_eq!(ExpScale::from_arg_list(&args("full")).unwrap().name, "full");
        assert_eq!(ExpScale::from_arg_list(&args("large")).unwrap().name, "large");
        assert_eq!(ExpScale::from_arg_list(&["bin".to_string()]).unwrap().name, "medium");
        // A typo must not silently bench a different world.
        let err = ExpScale::from_arg_list(&args("larg")).unwrap_err();
        assert!(err.contains("larg") && err.contains("large"), "unhelpful error: {err}");
    }

    #[test]
    fn scale_datasets() {
        assert_eq!(SMALL.datasets().len(), 3);
        assert_eq!(LARGE.datasets().len(), 4);
        assert!(LARGE.datasets().contains(&Dataset::Continent));
        assert!(LARGE.factor(Dataset::Continent) >= 1.0);
    }

    #[test]
    fn infeasible_network_error_names_the_run() {
        let p = Params::default();
        // An out-of-range factor must surface as a diagnostic naming the
        // dataset, scale factor and seed — not a generator panic.
        let overgrown = ExpScale { continent: 2.0, ..SMALL };
        let err = try_network(Dataset::Continent, &overgrown, &p).unwrap_err();
        assert!(err.contains("CONT"), "missing dataset: {err}");
        assert!(err.contains('2'), "missing factor: {err}");
        assert!(err.contains("0xedb72009"), "missing seed: {err}");
        assert!(try_network(Dataset::CaHighways, &SMALL, &p).is_ok());
    }

    #[test]
    fn network_and_levels() {
        let p = Params::default();
        let g = network(Dataset::CaHighways, &SMALL, &p);
        assert!(g.num_nodes() > 500);
        let l = levels(Dataset::CaHighways, &g, &SMALL, &p);
        assert!((2..=10).contains(&l));
        // Full scale uses the paper's settings.
        assert_eq!(Dataset::CaHighways.default_levels(), 4);
    }
}
