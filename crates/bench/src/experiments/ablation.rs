//! Ablations for the design choices ARCHITECTURE.md calls out:
//!
//! 1. **Object distribution** — footnote 3 of the paper predicts ROAD
//!    gains more from clustered objects (more empty Rnets to prune);
//! 2. **Lemma-4 shortcut pruning** — transitive-shortcut removal trades
//!    nothing for a smaller overlay;
//! 3. **Abstract representation** — exact counts vs counting-Bloom
//!    summaries (size vs precision of pruning).

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_f, fmt_mb, fmt_ms, fmt_secs, print_table};
use crate::{config, runner, workload};
use road_baselines::road_engine::{RoadEngine, RoadEngineConfig};
use road_baselines::Engine;
use road_core::abstracts::AbstractKind;
use road_core::association::AssociationDirectory;
use road_core::model::ObjectFilter;
use road_core::search::KnnQuery;
use road_network::generator::Dataset;

/// Runs all three ablations on CA.
pub fn run(ctx: &Ctx) {
    distribution(ctx);
    pruning(ctx);
    abstracts(ctx);
}

/// Uniform vs clustered objects: ROAD's advantage over NetExp widens when
/// objects concentrate.
fn distribution(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 31);

    let mut rows = Vec::new();
    for (label, objects) in [
        ("uniform", workload::uniform_objects(&g, count, ctx.params.seed + 32)),
        (
            "clustered (4 hot spots)",
            workload::clustered_objects(&g, count, 4, ctx.params.seed + 33),
        ),
    ] {
        let mut row = vec![label.to_string()];
        let mut times = Vec::new();
        for kind in [EngineKind::NetExp, EngineKind::Road] {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let stats = runner::measure_knn(
                engine.as_mut(),
                &nodes,
                ctx.params.k,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            times.push(stats.avg_ms);
            row.push(fmt_ms(stats.avg_ms));
        }
        row.push(format!("{:.1}x", times[0] / times[1].max(1e-9)));
        rows.push(row);
    }
    print_table(
        "Ablation 1 — object distribution (CA, 5NN): time (ms)",
        &["distribution", "NetExp", "ROAD", "ROAD speedup"],
        &rows,
    );
}

/// Lemma-4 pruning on/off: shortcut count, build time, query time.
fn pruning(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 34);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 35);

    let mut rows = Vec::new();
    for (label, prune) in [("with Lemma-4 pruning", true), ("unpruned", false)] {
        let mut engine = RoadEngine::build(
            g.clone(),
            ctx.params.metric,
            objects.clone(),
            ctx.params.buffer_pages,
            RoadEngineConfig { fanout: ctx.params.fanout, levels, prune_transitive: prune },
        )
        .expect("framework builds");
        let stats = runner::measure_knn(
            &mut engine,
            &nodes,
            ctx.params.k,
            &ObjectFilter::Any,
            ctx.params.io_ms_per_fault,
        );
        rows.push(vec![
            label.to_string(),
            engine.framework().shortcuts().num_shortcuts().to_string(),
            fmt_mb(engine.index_size_bytes()),
            fmt_secs(engine.build_seconds()),
            fmt_ms(stats.avg_ms),
            fmt_f(stats.avg_faults),
        ]);
    }
    print_table(
        "Ablation 2 — Lemma-4 transitive-shortcut pruning (CA, 5NN)",
        &["variant", "shortcuts", "index size", "build (s)", "query (ms)", "query I/O"],
        &rows,
    );
}

/// Exact-count vs Bloom abstracts: directory size against wasted descents.
fn abstracts(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 36);
    let nodes = workload::query_nodes(&g, ctx.scale.queries.min(30), ctx.params.seed + 37);

    let fw = road_core::RoadFramework::builder(g)
        .fanout(ctx.params.fanout)
        .levels(levels)
        .metric(ctx.params.metric)
        .build()
        .expect("framework builds");

    let mut rows = Vec::new();
    for (label, kind) in
        [("exact counts", AbstractKind::Counts), ("counting Bloom", AbstractKind::Bloom)]
    {
        let mut ad = AssociationDirectory::with_kind(fw.hierarchy(), kind);
        for o in &objects {
            ad.insert(fw.network(), fw.hierarchy(), o.clone()).unwrap();
        }
        let mut descended = 0usize;
        let mut bypassed = 0usize;
        let t = std::time::Instant::now();
        for &n in &nodes {
            let res = fw.knn(&ad, &KnnQuery::new(n, ctx.params.k)).unwrap();
            descended += res.stats.rnets_descended;
            bypassed += res.stats.rnets_bypassed;
        }
        let ms = t.elapsed().as_secs_f64() * 1e3 / nodes.len() as f64;
        rows.push(vec![
            label.to_string(),
            fmt_mb(ad.size_bytes()),
            fmt_ms(ms),
            fmt_f(descended as f64 / nodes.len() as f64),
            fmt_f(bypassed as f64 / nodes.len() as f64),
        ]);
    }
    print_table(
        "Ablation 3 — abstract representation (CA, 5NN)",
        &["abstract", "directory size", "query (ms)", "Rnets descended", "Rnets bypassed"],
        &rows,
    );
}
