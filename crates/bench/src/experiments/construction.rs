//! Shortcut-construction ablation: the contraction-based builder
//! (`ShortcutStore::build`) against the legacy per-Rnet all-pairs sweep
//! (`ShortcutStore::build_with_oracle`, kept compiled via the
//! `oracle-build` feature), and the sequential contraction build against
//! the parallel one (`ShortcutOptions::threads`).  All variants produce
//! byte-identical stores — the differential and parallel-determinism
//! suites in road-core pin that — so the only thing this table can show
//! is time.  At small (CI) scale the contraction speedup column is
//! asserted `>= 1`: contraction must never regress construction.  At
//! medium scale and above, on hosts with at least 4 hardware threads,
//! the parallel speedup is asserted `>= 1.5` on the aggregate.

use super::Ctx;
use crate::config;
use crate::table::{fmt_f, fmt_secs, print_table};
use road_core::{HierarchyConfig, RnetHierarchy, ShortcutOptions, ShortcutStore};
use road_network::generator::Dataset;
use road_network::graph::RoadNetwork;
use std::time::Instant;

/// Minimum wall-clock over `reps` runs of `f` (min, not mean: build time
/// is noise-above-floor, and the floor is the honest number).
fn min_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn hierarchy(g: &RoadNetwork, fanout: usize, levels: u32) -> RnetHierarchy {
    let cfg = HierarchyConfig { fanout, levels, ..Default::default() };
    RnetHierarchy::build(g, &cfg).expect("bench hierarchy")
}

/// Runs the experiment and prints the construction table.
pub fn run(ctx: &Ctx) {
    let reps = if ctx.scale.name == "small" { 5 } else { 2 };
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows = Vec::new();
    let (mut legacy_total, mut seq_total, mut par_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut legacy_seq_total = 0.0f64; // sequential time on legacy-measured networks only
    for &ds in ctx.scale.datasets() {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let hier = hierarchy(&g, ctx.params.fanout, levels);
        let seq_opts = ShortcutOptions { threads: 1, ..Default::default() };
        let par_opts = ShortcutOptions { threads: 0, ..Default::default() };

        // The all-pairs sweep is quadratic per Rnet; at continental size
        // it would dominate the whole harness run, so the legacy column
        // is only measured on the paper's networks.
        let legacy = (ds != Dataset::Continent).then(|| {
            min_seconds(reps, || {
                std::hint::black_box(ShortcutStore::build_with_oracle(
                    &g,
                    &hier,
                    ctx.params.metric,
                    &seq_opts,
                ));
            })
        });
        let seq = min_seconds(reps, || {
            std::hint::black_box(ShortcutStore::build(&g, &hier, ctx.params.metric, &seq_opts));
        });
        let par = min_seconds(reps, || {
            std::hint::black_box(ShortcutStore::build(&g, &hier, ctx.params.metric, &par_opts));
        });
        if let Some(legacy) = legacy {
            legacy_total += legacy;
            legacy_seq_total += seq;
        }
        seq_total += seq;
        par_total += par;
        rows.push(vec![
            format!("{} ({}n/{}e, l={levels})", ds.name(), g.num_nodes(), g.num_edges()),
            legacy.map_or_else(|| "—".to_string(), fmt_secs),
            fmt_secs(seq),
            fmt_secs(par),
            format!("{}x", fmt_f(seq / par)),
        ]);
    }
    let contraction_speedup = legacy_total / legacy_seq_total;
    let parallel_speedup = seq_total / par_total;
    rows.push(vec![
        "all datasets".to_string(),
        fmt_secs(legacy_total),
        fmt_secs(seq_total),
        fmt_secs(par_total),
        format!("{}x", fmt_f(parallel_speedup)),
    ]);
    // Contraction must never regress construction.  Asserted on the
    // aggregate: at smoke scale the per-dataset builds are a fraction of a
    // millisecond each and individually noise-dominated, while the summed
    // measurement is stable (and dominated by the largest network, which is
    // exactly where construction time matters).
    if ctx.scale.name == "small" {
        assert!(
            contraction_speedup >= 1.0,
            "contraction construction slower than the legacy sweep overall \
             ({legacy_seq_total:.4}s vs {legacy_total:.4}s)"
        );
    }
    // Same-level Rnets are independent, so with real networks and real
    // hardware the level fan-out must pay for its scoped-thread overhead.
    // Asserted only at the paper-sized scales: at small scale builds are
    // sub-millisecond and thread spawn costs are the measurement, and
    // ad-hoc shrunken scales (e.g. the ignored `large` CI smoke) are in
    // the same regime.
    if matches!(ctx.scale.name, "medium" | "full") && threads >= 4 {
        assert!(
            parallel_speedup >= 1.5,
            "parallel construction speedup {parallel_speedup:.2}x < 1.5x on {threads} threads \
             ({seq_total:.4}s sequential vs {par_total:.4}s parallel)"
        );
    }
    let par_col = format!("contraction x{threads}");
    print_table(
        "Shortcut construction — legacy sweep vs sequential vs parallel contraction",
        &["network", "legacy sweep", "contraction x1", par_col.as_str(), "parallel speedup"],
        &rows,
    );
}
