//! Shortcut-construction ablation: the contraction-based builder
//! (`ShortcutStore::build`) against the legacy per-Rnet all-pairs sweep
//! (`ShortcutStore::build_with_oracle`, kept compiled via the
//! `oracle-build` feature).  Both produce byte-identical stores — the
//! differential suite in road-core pins that — so the only thing this
//! table can show is time.  At small (CI) scale the speedup column is
//! asserted `>= 1`: contraction must never regress construction.

use super::Ctx;
use crate::config;
use crate::table::{fmt_f, fmt_secs, print_table};
use road_core::{HierarchyConfig, RnetHierarchy, ShortcutStore};
use road_network::generator::Dataset;
use road_network::graph::RoadNetwork;
use std::time::Instant;

/// Minimum wall-clock over `reps` runs of `f` (min, not mean: build time
/// is noise-above-floor, and the floor is the honest number).
fn min_seconds(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn hierarchy(g: &RoadNetwork, fanout: usize, levels: u32) -> RnetHierarchy {
    let cfg = HierarchyConfig { fanout, levels, ..Default::default() };
    RnetHierarchy::build(g, &cfg).expect("bench hierarchy")
}

/// Runs the experiment and prints the construction table.
pub fn run(ctx: &Ctx) {
    let reps = if ctx.scale.name == "small" { 5 } else { 2 };
    let mut rows = Vec::new();
    let (mut legacy_total, mut contraction_total) = (0.0f64, 0.0f64);
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let hier = hierarchy(&g, ctx.params.fanout, levels);
        let opts = Default::default();

        let legacy = min_seconds(reps, || {
            std::hint::black_box(ShortcutStore::build_with_oracle(
                &g,
                &hier,
                ctx.params.metric,
                &opts,
            ));
        });
        let contraction = min_seconds(reps, || {
            std::hint::black_box(ShortcutStore::build(&g, &hier, ctx.params.metric, &opts));
        });
        legacy_total += legacy;
        contraction_total += contraction;
        rows.push(vec![
            format!("{} ({}n/{}e, l={levels})", ds.name(), g.num_nodes(), g.num_edges()),
            fmt_secs(legacy),
            fmt_secs(contraction),
            format!("{}x", fmt_f(legacy / contraction)),
        ]);
    }
    let speedup = legacy_total / contraction_total;
    rows.push(vec![
        "all datasets".to_string(),
        fmt_secs(legacy_total),
        fmt_secs(contraction_total),
        format!("{}x", fmt_f(speedup)),
    ]);
    // Contraction must never regress construction.  Asserted on the
    // aggregate: at smoke scale the per-dataset builds are a fraction of a
    // millisecond each and individually noise-dominated, while the summed
    // measurement is stable (and dominated by the largest network, which is
    // exactly where construction time matters).
    if ctx.scale.name == "small" {
        assert!(
            speedup >= 1.0,
            "contraction construction slower than the legacy sweep overall \
             ({contraction_total:.4}s vs {legacy_total:.4}s)"
        );
    }
    print_table(
        "Shortcut construction — legacy all-pairs sweep vs contraction",
        &["network", "legacy sweep", "contraction", "speedup"],
        &rows,
    );
}
