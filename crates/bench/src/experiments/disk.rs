//! `exp_disk` — disk-resident serving through the real storage stack.
//!
//! The paper's headline numbers are page accesses through a 4 KB-page,
//! 50-frame LRU buffer (Section 6 methodology; Figures 15–18 report I/O).
//! The other experiments *model* that traffic by replaying search events
//! through an [`road_storage::IoTracker`]; this one serves queries from
//! **actual serialized pages** via [`road_core::paged::PagedEngine`] and
//! reports what the buffer pool really did. Three views:
//!
//! 1. **Buffer sweep** (memory-constrained serving): a warm serving loop
//!    over the Figure 17 kNN workload at increasing pool sizes. Page
//!    *accesses* stay constant (same expansion), page *faults* must fall
//!    monotonically as the pool grows — LRU's inclusion property, checked
//!    here and in the `paged_tests` suite. Every sweep point also asserts
//!    the paged hit lists equal the in-memory `QueryEngine`'s.
//! 2. **Cold per-query I/O vs k**: the paper's discipline (empty cache
//!    before every query), ROAD's real page faults next to the modelled
//!    faults of the NetExp and Distance Index baselines — the Figure
//!    17(a)-shaped comparison.
//! 3. **Page-granular open**: serving straight from a `ROADFW01` image,
//!    reporting how few Rnet shortcut sections the first queries page in
//!    and the first-touch vs steady-state fault cost.
//! 4. **Thread scaling** (beyond the paper): warm-cache kNN throughput of
//!    one *shared* `PagedEngine` (`&self` queries, lock-striped buffer
//!    pool) at 1..N threads, against the explicitly rejected baseline —
//!    the same engine behind one big `Mutex`, which serializes every
//!    query. With real hardware parallelism the shared engine must beat
//!    the mutex at 4 threads (asserted); answers are oracle-checked
//!    either way.

use super::Ctx;
use crate::runner::{build_engine, EngineKind};
use crate::table::{fmt_f, fmt_mb, print_table};
use crate::{config, workload};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_core::{PagedImage, QueryEngine, SearchStats};
use road_network::generator::Dataset;
use road_network::NodeId;
use std::sync::Mutex;
use std::time::Instant;

/// Buffer sizes swept in view 1 (pages; the paper's default is 50).
pub const BUFFER_SWEEP: [usize; 5] = [10, 25, 50, 100, 200];

/// One buffer-sweep measurement point.
pub struct SweepPoint {
    pub buffer_pages: usize,
    pub pages_read: u64,
    pub page_faults: u64,
    pub hit_rate: f64,
}

/// Runs the warm-serving kNN workload at each buffer size, asserting
/// oracle agreement with `engine` at every point. Returns one point per
/// buffer size; faults are guaranteed non-increasing (panics otherwise —
/// this is the experiment's acceptance criterion, not a soft report).
///
/// Every point runs at the **same stripe count** — pinned to the
/// smallest swept size (capped at the default). LRU's inclusion property
/// holds per stripe only when the page-to-stripe mapping is identical
/// across the compared pools; letting the engine pick a different stripe
/// count per size would re-partition the pages and break the
/// monotonicity guarantee for non-nested stripe counts.
pub fn sweep_buffer_sizes(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    engine: &QueryEngine,
    queries: &[KnnQuery],
    buffer_sizes: &[usize],
) -> Vec<SweepPoint> {
    let stripes = buffer_sizes
        .iter()
        .copied()
        .min()
        .unwrap_or(road_storage::DEFAULT_BUFFER_STRIPES)
        .clamp(1, road_storage::DEFAULT_BUFFER_STRIPES);
    let mut points = Vec::new();
    let mut last_faults = u64::MAX;
    for &buffer_pages in buffer_sizes {
        let opts = PagedOptions::with_buffer_pages(buffer_pages).with_stripes(stripes);
        let disk = PagedEngine::new(fw, ad, opts).expect("paged engine builds");
        let mut total = SearchStats::default();
        for q in queries {
            let paged = disk.knn(q).expect("valid query");
            let mem = engine.knn(q).expect("valid query");
            assert_eq!(mem.hits, paged.hits, "paged serving diverged from the in-memory oracle");
            total.absorb(&paged.stats);
        }
        let (pages_read, page_faults) = (total.pages_read as u64, total.page_faults as u64);
        assert!(
            page_faults <= last_faults,
            "page faults grew ({last_faults} -> {page_faults}) when the buffer grew to \
             {buffer_pages} pages"
        );
        last_faults = page_faults;
        points.push(SweepPoint {
            buffer_pages,
            pages_read,
            page_faults,
            hit_rate: total.buffer_hit_rate(),
        });
    }
    points
}

/// Cold-cache per-query faults of the paged ROAD engine (the paper's
/// measurement discipline: every query starts with an empty buffer).
fn cold_knn_faults(disk: &PagedEngine, nodes: &[NodeId], k: usize) -> f64 {
    let mut faults = 0u64;
    for &n in nodes {
        disk.clear_cache().expect("healthy pool");
        let res = disk.knn(&KnnQuery::new(n, k)).expect("valid query");
        faults += res.stats.page_faults as u64;
    }
    faults as f64 / nodes.len().max(1) as f64
}

/// One thread-scaling measurement point.
pub struct ScalingPoint {
    pub threads: usize,
    pub shared_qps: f64,
    pub mutex_qps: f64,
}

/// Warm-cache kNN throughput of one serving configuration: `threads`
/// scoped workers interleave over the query stream (round-robin by
/// index, so every thread mixes the whole working set), each with a
/// reused workspace. The per-query closure is the only difference
/// between the shared engine and the mutex baseline, so both measure the
/// exact same workload split.
fn serving_qps(
    queries: &[KnnQuery],
    threads: usize,
    passes: usize,
    run: impl Fn(&KnnQuery, &mut SearchWorkspace, &mut Vec<SearchHit>) + Sync,
) -> f64 {
    let run = &run;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut ws = SearchWorkspace::new();
                let mut hits = Vec::new();
                for _ in 0..passes {
                    for (i, q) in queries.iter().enumerate() {
                        if i % threads == t {
                            run(q, &mut ws, &mut hits);
                        }
                    }
                }
            });
        }
    });
    (passes * queries.len()) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the warm-cache thread-scaling comparison (view 4): the shared
/// `&self` engine against the rejected baseline — the same engine behind
/// one global `Mutex`, which is what sharing a `&mut self` engine would
/// have required. Every point serves the same stream; answers were
/// already oracle-checked by the buffer sweep.
///
/// With `enforce` set and >= 4 hardware threads, the shared engine must
/// beat the mutex baseline at 4 threads (asserted — the acceptance
/// criterion). The harness passes `enforce = true` at its real workload
/// scale; tiny smoke workloads should pass `false`, because measurements
/// dominated by thread spawn/join noise would make a relative-speed
/// assert flaky without indicating any defect.
pub fn thread_scaling(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    queries: &[KnnQuery],
    buffer_pages: usize,
    passes: usize,
    enforce: bool,
) -> Vec<ScalingPoint> {
    let opts = PagedOptions::with_buffer_pages(buffer_pages);
    let shared = PagedEngine::new(fw, ad, opts).expect("paged engine builds");
    let locked = Mutex::new(PagedEngine::new(fw, ad, opts).expect("paged engine builds"));
    let shared_run = |q: &KnnQuery, ws: &mut SearchWorkspace, hits: &mut Vec<SearchHit>| {
        shared.knn_with(q, ws, hits).expect("valid query");
    };
    let mutex_run = |q: &KnnQuery, ws: &mut SearchWorkspace, hits: &mut Vec<SearchHit>| {
        locked.lock().expect("baseline lock").knn_with(q, ws, hits).expect("valid query");
    };
    // Warm both caches once so every measured pass is steady-state.
    let _ = serving_qps(queries, 1, 1, shared_run);
    let _ = serving_qps(queries, 1, 1, mutex_run);
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut points = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let point = ScalingPoint {
            threads,
            shared_qps: serving_qps(queries, threads, passes, shared_run),
            mutex_qps: serving_qps(queries, threads, passes, mutex_run),
        };
        if enforce && threads == 4 && hw >= 4 {
            assert!(
                point.shared_qps > point.mutex_qps,
                "shared engine ({:.0} QPS) must beat the Mutex baseline ({:.0} QPS) at 4 \
                 threads on {hw}-way hardware",
                point.shared_qps,
                point.mutex_qps,
            );
        }
        points.push(point);
    }
    points
}

/// Full experiment (the `exp_disk` binary).
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 31);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 310);

    println!("\n## exp_disk — disk-resident serving (CA, |O| = {count}, k = {})", ctx.params.k);
    println!(
        "\nnetwork: {} nodes / {} edges, hierarchy p={} l={levels}",
        g.num_nodes(),
        g.num_edges(),
        ctx.params.fanout
    );

    let fw = RoadFramework::builder(g.clone())
        .fanout(ctx.params.fanout)
        .levels(levels)
        .metric(ctx.params.metric)
        .build()
        .expect("framework builds");
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for o in &objects {
        ad.insert(fw.network(), fw.hierarchy(), o.clone()).expect("objects place");
    }
    let engine = QueryEngine::new(fw.clone(), ad.clone());
    let queries: Vec<KnnQuery> = nodes.iter().map(|&n| KnnQuery::new(n, ctx.params.k)).collect();

    // --- 1: warm serving vs buffer size --------------------------------
    let points = sweep_buffer_sizes(&fw, &ad, &engine, &queries, &BUFFER_SWEEP);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.buffer_pages.to_string(),
                p.pages_read.to_string(),
                p.page_faults.to_string(),
                format!("{:.1}%", p.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        "Warm serving: page traffic vs buffer size (kNN workload, oracle-checked)",
        &["buffer (pages)", "page accesses", "page faults", "buffer hit rate"],
        &rows,
    );
    println!(
        "\npage faults fall monotonically with buffer size (asserted); \
         accesses stay constant because the expansion is identical."
    );

    // --- 2: cold per-query I/O vs k, ROAD real vs modelled baselines ----
    let ks = [1usize, 5, 10, 20];
    let disk = PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(ctx.params.buffer_pages))
        .expect("paged engine builds");
    let mut netexp = build_engine(EngineKind::NetExp, &g, &objects, &ctx.params, levels);
    let mut distidx = build_engine(EngineKind::DistIdx, &g, &objects, &ctx.params, levels);
    let mut rows = Vec::new();
    for &k in &ks {
        let road_faults = cold_knn_faults(&disk, &nodes, k);
        let mut ne = 0.0;
        let mut di = 0.0;
        for &n in &nodes {
            ne += netexp.knn(n, k, &ObjectFilter::Any).page_faults as f64;
            di += distidx.knn(n, k, &ObjectFilter::Any).page_faults as f64;
        }
        let q = nodes.len().max(1) as f64;
        rows.push(vec![k.to_string(), fmt_f(road_faults), fmt_f(di / q), fmt_f(ne / q)]);
    }
    print_table(
        "Cold per-query page faults vs k (paper discipline; ROAD pages are real, \
         baselines modelled)",
        &["k", "ROAD (paged)", "DistIdx", "NetExp"],
        &rows,
    );

    // --- 3: page-granular open ------------------------------------------
    let image_bytes = fw.to_bytes();
    let image_mb = image_bytes.len();
    let image = PagedImage::open(image_bytes).expect("image opens");
    let total_rnets = image.num_rnets();
    let lazy = PagedEngine::open(
        image,
        objects.clone(),
        PagedOptions::with_buffer_pages(ctx.params.buffer_pages),
    )
    .expect("image serves");
    let mut first = SearchStats::default();
    for q in &queries {
        let res = lazy.knn(q).expect("valid query");
        let mem = engine.knn(q).expect("valid query");
        assert_eq!(mem.hits, res.hits, "image-served results diverged from the oracle");
        first.absorb(&res.stats);
    }
    let loaded_after_first = lazy.rnets_loaded();
    let mut second = SearchStats::default();
    for q in &queries {
        second.absorb(&lazy.knn(q).expect("valid query").stats);
    }
    print_table(
        "Page-granular image open (lazy per-Rnet shortcut load)",
        &["pass", "page accesses", "page faults", "Rnets resident"],
        &[
            vec![
                "first (pages Rnets in)".into(),
                first.pages_read.to_string(),
                first.page_faults.to_string(),
                format!("{loaded_after_first}/{total_rnets}"),
            ],
            vec![
                "second (steady state)".into(),
                second.pages_read.to_string(),
                second.page_faults.to_string(),
                format!("{}/{}", lazy.rnets_loaded(), total_rnets),
            ],
        ],
    );
    println!(
        "\nimage: {}, on-disk layout: {} pages ({}), node region {} pages; \
         the first pass touched {loaded_after_first} of {total_rnets} Rnet sections.",
        fmt_mb(image_mb),
        lazy.num_disk_pages(),
        fmt_mb(lazy.disk_size_bytes()),
        lazy.node_region_pages(),
    );

    // --- 4: warm-cache thread scaling, shared vs Mutex baseline ---------
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let points = thread_scaling(&fw, &ad, &queries, ctx.params.buffer_pages, 20, true);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                fmt_f(p.shared_qps),
                fmt_f(p.mutex_qps),
                format!("{:.2}x", p.shared_qps / p.mutex_qps.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Warm-cache thread scaling: shared &self engine vs Mutex<PagedEngine> baseline \
             ({hw} hardware threads)"
        ),
        &["threads", "shared QPS", "mutex QPS", "shared/mutex"],
        &rows,
    );
    println!(
        "\nthe Mutex row is the rejected design (one lock around a &mut engine); the shared \
         row is the lock-striped pool{}",
        if hw >= 4 {
            " — asserted faster at 4 threads."
        } else {
            ". (assertion skipped: fewer than 4 hardware threads)"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::generator::simple;

    /// The acceptance property on a CI-sized world: faults monotone in
    /// buffer size and every point oracle-checked (the helper asserts
    /// internally).
    #[test]
    fn buffer_sweep_is_monotone_and_oracle_checked() {
        let g = simple::grid(9, 9, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        for (i, e) in fw.network().edge_ids().step_by(11).enumerate() {
            ad.insert(
                fw.network(),
                fw.hierarchy(),
                Object::new(ObjectId(i as u64), e, 0.3, CategoryId(0)),
            )
            .unwrap();
        }
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let queries: Vec<KnnQuery> = (0..20u32).map(|i| KnnQuery::new(NodeId(i * 4), 3)).collect();
        let points = sweep_buffer_sizes(&fw, &ad, &engine, &queries, &[2, 8, 32, 128]);
        assert_eq!(points.len(), 4);
        // Accesses identical at every buffer size; hit rate non-decreasing.
        assert!(points.windows(2).all(|w| w[0].pages_read == w[1].pages_read));
        assert!(points.windows(2).all(|w| w[0].hit_rate <= w[1].hit_rate + 1e-12));
        // The sweep must show a real spread on this workload.
        assert!(
            points.first().unwrap().page_faults > points.last().unwrap().page_faults,
            "buffer growth showed no effect"
        );
    }

    /// The thread-scaling smoke: the shared-vs-mutex comparison completes
    /// at every thread count. The 4-thread superiority assertion is NOT
    /// enforced here — this workload (a few dozen queries) is dominated
    /// by thread spawn/join noise, which would make a relative-speed
    /// assert flaky. `exp_disk` enforces it at its real workload scale.
    #[test]
    fn thread_scaling_smoke() {
        let g = simple::grid(8, 8, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        for (i, e) in fw.network().edge_ids().step_by(9).enumerate() {
            ad.insert(
                fw.network(),
                fw.hierarchy(),
                Object::new(ObjectId(i as u64), e, 0.5, CategoryId(0)),
            )
            .unwrap();
        }
        let queries: Vec<KnnQuery> = (0..16u32).map(|i| KnnQuery::new(NodeId(i * 4), 3)).collect();
        let points = thread_scaling(&fw, &ad, &queries, 25, 2, false);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.shared_qps > 0.0 && p.mutex_qps > 0.0));
    }
}
