//! `exp_disk` — disk-resident serving through the real storage stack.
//!
//! The paper's headline numbers are page accesses through a 4 KB-page,
//! 50-frame LRU buffer (Section 6 methodology; Figures 15–18 report I/O).
//! The other experiments *model* that traffic by replaying search events
//! through an [`road_storage::IoTracker`]; this one serves queries from
//! **actual serialized pages** via [`road_core::paged::PagedEngine`] and
//! reports what the buffer pool really did. Three views:
//!
//! 1. **Buffer sweep** (memory-constrained serving): a warm serving loop
//!    over the Figure 17 kNN workload at increasing pool sizes. Page
//!    *accesses* stay constant (same expansion), page *faults* must fall
//!    monotonically as the pool grows — LRU's inclusion property, checked
//!    here and in the `paged_tests` suite. Every sweep point also asserts
//!    the paged hit lists equal the in-memory `QueryEngine`'s.
//! 2. **Cold per-query I/O vs k**: the paper's discipline (empty cache
//!    before every query), ROAD's real page faults next to the modelled
//!    faults of the NetExp and Distance Index baselines — the Figure
//!    17(a)-shaped comparison.
//! 3. **Page-granular open**: serving straight from a `ROADFW01` image,
//!    reporting how few Rnet shortcut sections the first queries page in
//!    and the first-touch vs steady-state fault cost.

use super::Ctx;
use crate::runner::{build_engine, EngineKind};
use crate::table::{fmt_f, fmt_mb, print_table};
use crate::{config, workload};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_core::{PagedImage, QueryEngine, SearchStats};
use road_network::generator::Dataset;
use road_network::NodeId;

/// Buffer sizes swept in view 1 (pages; the paper's default is 50).
pub const BUFFER_SWEEP: [usize; 5] = [10, 25, 50, 100, 200];

/// One buffer-sweep measurement point.
pub struct SweepPoint {
    pub buffer_pages: usize,
    pub pages_read: u64,
    pub page_faults: u64,
    pub hit_rate: f64,
}

/// Runs the warm-serving kNN workload at each buffer size, asserting
/// oracle agreement with `engine` at every point. Returns one point per
/// buffer size; faults are guaranteed non-increasing (panics otherwise —
/// this is the experiment's acceptance criterion, not a soft report).
pub fn sweep_buffer_sizes(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    engine: &QueryEngine,
    queries: &[KnnQuery],
    buffer_sizes: &[usize],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    let mut last_faults = u64::MAX;
    for &buffer_pages in buffer_sizes {
        let mut disk = PagedEngine::new(fw, ad, PagedOptions::with_buffer_pages(buffer_pages))
            .expect("paged engine builds");
        let mut total = SearchStats::default();
        for q in queries {
            let paged = disk.knn(q).expect("valid query");
            let mem = engine.knn(q).expect("valid query");
            assert_eq!(mem.hits, paged.hits, "paged serving diverged from the in-memory oracle");
            total.absorb(&paged.stats);
        }
        let (pages_read, page_faults) = (total.pages_read as u64, total.page_faults as u64);
        assert!(
            page_faults <= last_faults,
            "page faults grew ({last_faults} -> {page_faults}) when the buffer grew to \
             {buffer_pages} pages"
        );
        last_faults = page_faults;
        points.push(SweepPoint {
            buffer_pages,
            pages_read,
            page_faults,
            hit_rate: total.buffer_hit_rate(),
        });
    }
    points
}

/// Cold-cache per-query faults of the paged ROAD engine (the paper's
/// measurement discipline: every query starts with an empty buffer).
fn cold_knn_faults(disk: &mut PagedEngine, nodes: &[NodeId], k: usize) -> f64 {
    let mut faults = 0u64;
    for &n in nodes {
        disk.clear_cache();
        let res = disk.knn(&KnnQuery::new(n, k)).expect("valid query");
        faults += res.stats.page_faults as u64;
    }
    faults as f64 / nodes.len().max(1) as f64
}

/// Full experiment (the `exp_disk` binary).
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 31);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 310);

    println!("\n## exp_disk — disk-resident serving (CA, |O| = {count}, k = {})", ctx.params.k);
    println!(
        "\nnetwork: {} nodes / {} edges, hierarchy p={} l={levels}",
        g.num_nodes(),
        g.num_edges(),
        ctx.params.fanout
    );

    let fw = RoadFramework::builder(g.clone())
        .fanout(ctx.params.fanout)
        .levels(levels)
        .metric(ctx.params.metric)
        .build()
        .expect("framework builds");
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for o in &objects {
        ad.insert(fw.network(), fw.hierarchy(), o.clone()).expect("objects place");
    }
    let engine = QueryEngine::new(fw.clone(), ad.clone());
    let queries: Vec<KnnQuery> = nodes.iter().map(|&n| KnnQuery::new(n, ctx.params.k)).collect();

    // --- 1: warm serving vs buffer size --------------------------------
    let points = sweep_buffer_sizes(&fw, &ad, &engine, &queries, &BUFFER_SWEEP);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.buffer_pages.to_string(),
                p.pages_read.to_string(),
                p.page_faults.to_string(),
                format!("{:.1}%", p.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        "Warm serving: page traffic vs buffer size (kNN workload, oracle-checked)",
        &["buffer (pages)", "page accesses", "page faults", "buffer hit rate"],
        &rows,
    );
    println!(
        "\npage faults fall monotonically with buffer size (asserted); \
         accesses stay constant because the expansion is identical."
    );

    // --- 2: cold per-query I/O vs k, ROAD real vs modelled baselines ----
    let ks = [1usize, 5, 10, 20];
    let mut disk =
        PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(ctx.params.buffer_pages))
            .expect("paged engine builds");
    let mut netexp = build_engine(EngineKind::NetExp, &g, &objects, &ctx.params, levels);
    let mut distidx = build_engine(EngineKind::DistIdx, &g, &objects, &ctx.params, levels);
    let mut rows = Vec::new();
    for &k in &ks {
        let road_faults = cold_knn_faults(&mut disk, &nodes, k);
        let mut ne = 0.0;
        let mut di = 0.0;
        for &n in &nodes {
            ne += netexp.knn(n, k, &ObjectFilter::Any).page_faults as f64;
            di += distidx.knn(n, k, &ObjectFilter::Any).page_faults as f64;
        }
        let q = nodes.len().max(1) as f64;
        rows.push(vec![k.to_string(), fmt_f(road_faults), fmt_f(di / q), fmt_f(ne / q)]);
    }
    print_table(
        "Cold per-query page faults vs k (paper discipline; ROAD pages are real, \
         baselines modelled)",
        &["k", "ROAD (paged)", "DistIdx", "NetExp"],
        &rows,
    );

    // --- 3: page-granular open ------------------------------------------
    let image_bytes = fw.to_bytes();
    let image_mb = image_bytes.len();
    let image = PagedImage::open(image_bytes).expect("image opens");
    let total_rnets = image.num_rnets();
    let mut lazy = PagedEngine::open(
        image,
        objects.clone(),
        PagedOptions::with_buffer_pages(ctx.params.buffer_pages),
    )
    .expect("image serves");
    let mut first = SearchStats::default();
    for q in &queries {
        let res = lazy.knn(q).expect("valid query");
        let mem = engine.knn(q).expect("valid query");
        assert_eq!(mem.hits, res.hits, "image-served results diverged from the oracle");
        first.absorb(&res.stats);
    }
    let loaded_after_first = lazy.rnets_loaded();
    let mut second = SearchStats::default();
    for q in &queries {
        second.absorb(&lazy.knn(q).expect("valid query").stats);
    }
    print_table(
        "Page-granular image open (lazy per-Rnet shortcut load)",
        &["pass", "page accesses", "page faults", "Rnets resident"],
        &[
            vec![
                "first (pages Rnets in)".into(),
                first.pages_read.to_string(),
                first.page_faults.to_string(),
                format!("{loaded_after_first}/{total_rnets}"),
            ],
            vec![
                "second (steady state)".into(),
                second.pages_read.to_string(),
                second.page_faults.to_string(),
                format!("{}/{}", lazy.rnets_loaded(), total_rnets),
            ],
        ],
    );
    println!(
        "\nimage: {}, on-disk layout: {} pages ({}), node region {} pages; \
         the first pass touched {loaded_after_first} of {total_rnets} Rnet sections.",
        fmt_mb(image_mb),
        lazy.num_disk_pages(),
        fmt_mb(lazy.disk_size_bytes()),
        lazy.node_region_pages(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::generator::simple;

    /// The acceptance property on a CI-sized world: faults monotone in
    /// buffer size and every point oracle-checked (the helper asserts
    /// internally).
    #[test]
    fn buffer_sweep_is_monotone_and_oracle_checked() {
        let g = simple::grid(9, 9, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        for (i, e) in fw.network().edge_ids().step_by(11).enumerate() {
            ad.insert(
                fw.network(),
                fw.hierarchy(),
                Object::new(ObjectId(i as u64), e, 0.3, CategoryId(0)),
            )
            .unwrap();
        }
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let queries: Vec<KnnQuery> = (0..20u32).map(|i| KnnQuery::new(NodeId(i * 4), 3)).collect();
        let points = sweep_buffer_sizes(&fw, &ad, &engine, &queries, &[2, 8, 32, 128]);
        assert_eq!(points.len(), 4);
        // Accesses identical at every buffer size; hit rate non-decreasing.
        assert!(points.windows(2).all(|w| w[0].pages_read == w[1].pages_read));
        assert!(points.windows(2).all(|w| w[0].hit_rate <= w[1].hit_rate + 1e-12));
        // The sweep must show a real spread on this workload.
        assert!(
            points.first().unwrap().page_faults > points.last().unwrap().page_faults,
            "buffer growth showed no effect"
        );
    }
}
