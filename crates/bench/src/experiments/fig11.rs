//! Figure 11 — anatomy of one 3NN query on CA with 5 objects: search
//! time, simulated I/O and node records touched, per approach.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_ms, print_table};
use crate::{config, runner, workload};
use road_core::model::ObjectFilter;
use road_network::generator::Dataset;
use std::time::Instant;

/// Runs the experiment and prints its table.
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let objects = workload::uniform_objects(&g, 5, ctx.params.seed + 11);
    let node = workload::query_nodes(&g, 1, ctx.params.seed + 12)[0];

    let mut rows = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
        // Warm nothing: the paper's illustration is a single cold query.
        let t = Instant::now();
        let cost = engine.knn(node, 3, &ObjectFilter::Any);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(cost.hits.len(), 3.min(objects.len()));
        rows.push(vec![
            kind.name().to_string(),
            fmt_ms(ms),
            cost.page_faults.to_string(),
            cost.nodes_visited.to_string(),
        ]);
    }
    print_table(
        &format!("Figure 11 — single 3NN query on {} (|O| = 5, query at {node})", ds.name()),
        &["approach", "time (ms)", "I/O (pages)", "nodes touched"],
        &rows,
    );
}
