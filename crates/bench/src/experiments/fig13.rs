//! Figure 13 — index construction time and index size on CA while the
//! object cardinality grows from 10 to 1,000.
//!
//! The paper's punchline: NetExp / Euclidean / ROAD stay flat (ROAD's
//! Route Overlay is object-independent), while DistIdx explodes — 242 MB
//! and ~half an hour at 1,000 objects.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_mb, fmt_secs, print_table};
use crate::{config, runner, workload};
use road_network::generator::Dataset;

/// The paper's object cardinalities.
pub const CARDINALITIES: [usize; 5] = [10, 50, 100, 500, 1000];

/// Runs the experiment and prints its two tables (time, size).
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let factor = ctx.scale.factor(ds);

    let mut time_rows = Vec::new();
    let mut size_rows = Vec::new();
    for base in CARDINALITIES {
        let count = ctx.scaled_count(base, factor);
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + base as u64);
        let mut time_row = vec![format!("{base}")];
        let mut size_row = vec![format!("{base}")];
        for kind in EngineKind::ALL {
            let engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            time_row.push(fmt_secs(engine.build_seconds()));
            size_row.push(fmt_mb(engine.index_size_bytes()));
        }
        time_rows.push(time_row);
        size_rows.push(size_row);
    }
    let header = ["|O|", "NetExp", "Euclidean", "DistIdx", "ROAD"];
    print_table(
        &format!("Figure 13a — index construction time on {} (seconds)", ds.name()),
        &header,
        &time_rows,
    );
    print_table(&format!("Figure 13b — index size on {}", ds.name()), &header, &size_rows);
}
