//! Figure 14 — index construction time and size across the three networks
//! with |O| = 100.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_mb, fmt_secs, print_table};
use crate::{config, runner, workload};
use road_network::generator::Dataset;

/// Runs the experiment and prints its two tables.
pub fn run(ctx: &Ctx) {
    let mut time_rows = Vec::new();
    let mut size_rows = Vec::new();
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + 14);
        let mut time_row =
            vec![format!("{} ({}n/{}e, l={levels})", ds.name(), g.num_nodes(), g.num_edges())];
        let mut size_row = vec![ds.name().to_string()];
        for kind in EngineKind::ALL {
            let engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            time_row.push(fmt_secs(engine.build_seconds()));
            size_row.push(fmt_mb(engine.index_size_bytes()));
        }
        time_rows.push(time_row);
        size_rows.push(size_row);
    }
    let header = ["network", "NetExp", "Euclidean", "DistIdx", "ROAD"];
    print_table("Figure 14a — index construction time (|O| = 100, seconds)", &header, &time_rows);
    print_table("Figure 14b — index size (|O| = 100)", &header, &size_rows);
}
