//! Figure 15 — object update time: delete one random object, add it back,
//! repeated; average deletion and insertion time per approach and network.
//!
//! DistIdx pays a full network expansion plus a rewrite of every node's
//! signature per change; the other three are sub-millisecond.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_secs, print_table};
use crate::{config, runner, workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_network::generator::Dataset;

/// Runs the experiment and prints deletion and insertion tables.
pub fn run(ctx: &Ctx) {
    let mut del_rows = Vec::new();
    let mut ins_rows = Vec::new();
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + 15);
        let mut del_row = vec![ds.name().to_string()];
        let mut ins_row = vec![ds.name().to_string()];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let mut rng = StdRng::seed_from_u64(ctx.params.seed + 151);
            let mut del_s = 0.0;
            let mut ins_s = 0.0;
            // DistIdx updates are orders of magnitude slower; cap its trial
            // count so the harness stays responsive (averages converge fast).
            let trials = if kind == EngineKind::DistIdx {
                ctx.scale.trials.min(5)
            } else {
                ctx.scale.trials
            };
            for _ in 0..trials {
                let victim = objects[rng.random_range(0..objects.len())].clone();
                del_s += engine.remove_object(victim.id).seconds;
                ins_s += engine.insert_object(victim).seconds;
            }
            del_row.push(fmt_secs(del_s / trials as f64));
            ins_row.push(fmt_secs(ins_s / trials as f64));
        }
        del_rows.push(del_row);
        ins_rows.push(ins_row);
    }
    let header = ["network", "NetExp", "Euclidean", "DistIdx", "ROAD"];
    print_table("Figure 15a — object deletion time (|O| = 100, seconds)", &header, &del_rows);
    print_table("Figure 15b — object insertion time (|O| = 100, seconds)", &header, &ins_rows);
}
