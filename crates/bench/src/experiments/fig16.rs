//! Figure 16 — network update time: "remove" a random edge by setting its
//! weight to infinity, then add it back by restoring the original weight
//! (the paper's protocol); average per approach and network.
//!
//! ROAD repairs only the shortcuts of the enclosing Rnet chain; DistIdx
//! re-expands every affected object column.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_secs, print_table};
use crate::{config, runner, workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_network::generator::Dataset;
use road_network::{EdgeId, Weight};

/// Runs the experiment and prints deletion and insertion tables.
pub fn run(ctx: &Ctx) {
    let mut del_rows = Vec::new();
    let mut ins_rows = Vec::new();
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + 16);
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut del_row = vec![ds.name().to_string()];
        let mut ins_row = vec![ds.name().to_string()];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let mut rng = StdRng::seed_from_u64(ctx.params.seed + 161);
            let mut del_s = 0.0;
            let mut ins_s = 0.0;
            let trials = if kind == EngineKind::DistIdx {
                ctx.scale.trials.min(5)
            } else {
                ctx.scale.trials
            };
            for _ in 0..trials {
                let e = edges[rng.random_range(0..edges.len())];
                let original = engine.edge_weight(e);
                del_s += engine.set_edge_weight(e, Weight::INFINITY).seconds;
                ins_s += engine.set_edge_weight(e, original).seconds;
            }
            del_row.push(fmt_secs(del_s / trials as f64));
            ins_row.push(fmt_secs(ins_s / trials as f64));
        }
        del_rows.push(del_row);
        ins_rows.push(ins_row);
    }
    let header = ["network", "NetExp", "Euclidean", "DistIdx", "ROAD"];
    print_table("Figure 16a — edge deletion time (|O| = 100, seconds)", &header, &del_rows);
    print_table("Figure 16b — edge insertion time (|O| = 100, seconds)", &header, &ins_rows);
}
