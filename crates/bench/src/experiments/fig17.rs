//! Figure 17 — kNN query performance: (a) varying k on CA, (b) varying
//! object cardinality on CA, (c) across networks.

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_f, fmt_ms, print_table};
use crate::{config, runner, workload};
use road_core::model::ObjectFilter;
use road_network::generator::Dataset;

/// Which sub-figure to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    K,
    Objects,
    Network,
}

impl Axis {
    /// Parses `--axis k|objects|network` (None = all three).
    pub fn from_args() -> Option<Axis> {
        let args: Vec<String> = std::env::args().collect();
        let i = args.iter().position(|a| a == "--axis")?;
        match args.get(i + 1).map(String::as_str) {
            Some("k") => Some(Axis::K),
            Some("objects") => Some(Axis::Objects),
            Some("network") => Some(Axis::Network),
            _ => None,
        }
    }
}

/// Runs the chosen sub-figures (all when `axis` is `None`).
pub fn run(ctx: &Ctx, axis: Option<Axis>) {
    if axis.is_none() || axis == Some(Axis::K) {
        run_vary_k(ctx);
    }
    if axis.is_none() || axis == Some(Axis::Objects) {
        run_vary_objects(ctx);
    }
    if axis.is_none() || axis == Some(Axis::Network) {
        run_vary_network(ctx);
    }
}

fn run_vary_k(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 17);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 171);

    let mut rows = Vec::new();
    let mut engines: Vec<_> = EngineKind::ALL
        .iter()
        .map(|&k| runner::build_engine(k, &g, &objects, &ctx.params, levels))
        .collect();
    for k in [1usize, 5, 10] {
        let mut row = vec![format!("k={k}")];
        let mut io = vec![format!("k={k}")];
        for engine in engines.iter_mut() {
            let stats = runner::measure_knn(
                engine.as_mut(),
                &nodes,
                k,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
            io.push(fmt_f(stats.avg_faults));
        }
        row.extend(io.into_iter().skip(1));
        rows.push(row);
    }
    print_table(
        &format!("Figure 17a — kNN on {} (|O| = 100): time (ms) and I/O (pages)", ds.name()),
        &[
            "k",
            "NetExp",
            "Euclidean",
            "DistIdx",
            "ROAD",
            "NetExp io",
            "Euclidean io",
            "DistIdx io",
            "ROAD io",
        ],
        &rows,
    );
}

fn run_vary_objects(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 172);
    let factor = ctx.scale.factor(ds);

    let mut rows = Vec::new();
    for base in super::fig13::CARDINALITIES {
        let count = ctx.scaled_count(base, factor);
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + base as u64);
        let mut row = vec![format!("{base}")];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let stats = runner::measure_knn(
                engine.as_mut(),
                &nodes,
                ctx.params.k,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 17b — kNN on {} (k = 5) vs object cardinality: time (ms)", ds.name()),
        &["|O|", "NetExp", "Euclidean", "DistIdx", "ROAD"],
        &rows,
    );
}

fn run_vary_network(ctx: &Ctx) {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + 17);
        let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 173);
        let mut row = vec![ds.name().to_string()];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let stats = runner::measure_knn(
                engine.as_mut(),
                &nodes,
                ctx.params.k,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
        }
        rows.push(row);
    }
    print_table(
        "Figure 17c — kNN across networks (|O| = 100, k = 5): time (ms)",
        &["network", "NetExp", "Euclidean", "DistIdx", "ROAD"],
        &rows,
    );
}
