//! Figure 18 — range query performance: (a) varying the range fraction on
//! CA, (b) varying object cardinality on CA, (c) across networks.

use super::fig17::Axis;
use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_ms, print_table};
use crate::{config, runner, workload};
use road_core::model::ObjectFilter;
use road_network::dijkstra::estimate_diameter;
use road_network::generator::Dataset;
use road_network::Weight;

/// Runs the chosen sub-figures (all when `axis` is `None`).
pub fn run(ctx: &Ctx, axis: Option<Axis>) {
    if axis.is_none() || axis == Some(Axis::K) {
        run_vary_r(ctx);
    }
    if axis.is_none() || axis == Some(Axis::Objects) {
        run_vary_objects(ctx);
    }
    if axis.is_none() || axis == Some(Axis::Network) {
        run_vary_network(ctx);
    }
}

fn run_vary_r(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let diameter = estimate_diameter(&g, ctx.params.metric);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 18);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 181);

    let mut engines: Vec<_> = EngineKind::ALL
        .iter()
        .map(|&k| runner::build_engine(k, &g, &objects, &ctx.params, levels))
        .collect();
    let mut rows = Vec::new();
    for frac in [0.05f64, 0.1, 0.2] {
        let radius = Weight::new(diameter.get() * frac);
        let mut row = vec![format!("r={frac}·diam")];
        for engine in engines.iter_mut() {
            let stats = runner::measure_range(
                engine.as_mut(),
                &nodes,
                radius,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 18a — range query on {} (|O| = 100): time (ms)", ds.name()),
        &["range", "NetExp", "Euclidean", "DistIdx", "ROAD"],
        &rows,
    );
}

fn run_vary_objects(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let diameter = estimate_diameter(&g, ctx.params.metric);
    let radius = Weight::new(diameter.get() * ctx.params.range_fraction);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 182);
    let factor = ctx.scale.factor(ds);

    let mut rows = Vec::new();
    for base in super::fig13::CARDINALITIES {
        let count = ctx.scaled_count(base, factor);
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + base as u64);
        let mut row = vec![format!("{base}")];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let stats = runner::measure_range(
                engine.as_mut(),
                &nodes,
                radius,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 18b — range query on {} (r = 0.1·diam) vs object cardinality: time (ms)",
            ds.name()
        ),
        &["|O|", "NetExp", "Euclidean", "DistIdx", "ROAD"],
        &rows,
    );
}

fn run_vary_network(ctx: &Ctx) {
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let g = config::network(ds, &ctx.scale, &ctx.params);
        let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
        let diameter = estimate_diameter(&g, ctx.params.metric);
        let radius = Weight::new(diameter.get() * ctx.params.range_fraction);
        let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
        let objects = workload::uniform_objects(&g, count, ctx.params.seed + 18);
        let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 183);
        let mut row = vec![ds.name().to_string()];
        for kind in EngineKind::ALL {
            let mut engine = runner::build_engine(kind, &g, &objects, &ctx.params, levels);
            let stats = runner::measure_range(
                engine.as_mut(),
                &nodes,
                radius,
                &ObjectFilter::Any,
                ctx.params.io_ms_per_fault,
            );
            row.push(fmt_ms(stats.avg_ms));
        }
        rows.push(row);
    }
    print_table(
        "Figure 18c — range query across networks (|O| = 100, r = 0.1·diam): time (ms)",
        &["network", "NetExp", "Euclidean", "DistIdx", "ROAD"],
        &rows,
    );
}
