//! Figure 19 — impact of the Rnet hierarchy depth `l`: index construction
//! time grows with `l` while 5NN query time drops steeply, with
//! diminishing returns around the paper's defaults (l = 4 for CA, 8 for
//! NA/SF).

use super::Ctx;
use crate::runner::EngineKind;
use crate::table::{fmt_f, fmt_ms, fmt_secs, print_table};
use crate::{config, runner, workload};
use road_core::model::ObjectFilter;
use road_network::generator::Dataset;

/// Runs the experiment for each dataset.
pub fn run(ctx: &Ctx) {
    for ds in Dataset::ALL {
        run_dataset(ctx, ds);
    }
}

fn run_dataset(ctx: &Ctx, ds: Dataset) {
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 19);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 191);

    // The paper sweeps 2..=6 on CA and 6..=10 on NA/SF; at reduced scale
    // we centre the sweep on the size-appropriate depth.
    let centre = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let lo = centre.saturating_sub(2).max(1);
    let hi = (centre + 2).min(10);

    let mut rows = Vec::new();
    for l in lo..=hi {
        let mut engine = runner::build_engine(EngineKind::Road, &g, &objects, &ctx.params, l);
        let stats = runner::measure_knn(
            engine.as_mut(),
            &nodes,
            ctx.params.k,
            &ObjectFilter::Any,
            ctx.params.io_ms_per_fault,
        );
        rows.push(vec![
            format!("l={l}"),
            fmt_secs(engine.build_seconds()),
            fmt_ms(stats.avg_ms),
            fmt_f(stats.avg_faults),
        ]);
    }
    print_table(
        &format!("Figure 19 — Rnet hierarchy depth on {} (p = 4, |O| = 100, 5NN)", ds.name()),
        &["levels", "index time (s)", "query time (ms)", "query I/O (pages)"],
        &rows,
    );
}
