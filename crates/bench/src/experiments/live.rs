//! `exp_live` — mixed read/write throughput of the snapshot-published
//! `LiveEngine`.
//!
//! Not a figure from the paper: Section 5.2 measures single maintenance
//! operations on a quiescent index, while this experiment measures what a
//! deployment cares about — the kNN rate readers sustain *while* a writer
//! streams edge-weight updates through copy-on-write snapshots. It runs
//! the Figure 17 kNN workload (CA network, uniform objects, `k = 5`)
//! twice with the same reader pool:
//!
//! 1. **read-only** — readers re-acquire the published snapshot once per
//!    pass and drive the zero-alloc `knn_with` hot path; no writer.
//! 2. **mixed** — identical readers, plus one writer applying random
//!    edge-weight changes (uniform factor in `[0.5, 2]`) through the §5.2
//!    filter-and-refresh repair and publishing every `PUBLISH_BATCH`
//!    updates.
//!
//! Reported: reader QPS in both modes and their ratio (the acceptance
//! target is staying within ~20% at small scale), writer updates/s,
//! publish count, the average number of Rnets refreshed per update
//! (locality proof: near the hierarchy depth, nowhere near the Rnet
//! count), and how many Rnets' shortcut maps two consecutive snapshots
//! physically share (structural-sharing proof: publication is not a deep
//! copy).

use super::Ctx;
use crate::table::{fmt_f, print_table};
use crate::{config, workload};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::live::LiveEngine;
use road_core::prelude::*;
use road_network::generator::Dataset;
use road_network::EdgeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Minimum passes each reader makes over the query-node set per mode.
const PASSES: usize = 12;

/// Readers keep cycling passes until at least this much wall time has
/// elapsed, so the measurement window holds many publish cycles even at
/// `--scale small` (where one pass is a few hundred microseconds).
const MIN_DURATION: std::time::Duration = std::time::Duration::from_millis(1500);

/// Updates the writer batches into one published snapshot.
const PUBLISH_BATCH: usize = 8;

/// Pause between publishes. A live traffic feed delivers updates at a
/// bounded rate (here ~`PUBLISH_BATCH / PUBLISH_INTERVAL` = 1600
/// updates/s — far beyond any real probe stream); pacing the writer makes
/// the measurement isolate *snapshot-publication overhead on readers*
/// rather than raw CPU contention from a writer spinning flat-out, which
/// matters on small CI machines where both share one core.
const PUBLISH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(5);

/// Runs the reader pool to completion; returns (total queries, seconds).
fn run_readers(live: &LiveEngine, queries: &[KnnQuery], readers: usize) -> (u64, f64) {
    let served = AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let live = live.clone();
            let served = &served;
            scope.spawn(move || {
                let mut ws = SearchWorkspace::new();
                let mut hits = Vec::new();
                let mut count = 0u64;
                let mut passes = 0usize;
                let t0 = Instant::now();
                loop {
                    // One snapshot per pass: a consistent view across the
                    // whole pass, refreshed between passes.
                    let snap = live.snapshot();
                    for q in queries {
                        snap.knn_with(q, &mut ws, &mut hits).expect("valid query");
                        count += 1;
                    }
                    passes += 1;
                    if passes >= PASSES && t0.elapsed() >= MIN_DURATION {
                        break;
                    }
                }
                served.fetch_add(count, Ordering::Relaxed); // roadlint: relaxed-ok reason="throughput tally; scope join publishes the final value"
            });
        }
    });
    (served.load(Ordering::Relaxed), t.elapsed().as_secs_f64()) // roadlint: relaxed-ok reason="throughput tally; scope join publishes the final value"
}

/// Builds the fig17 workload on a `LiveEngine` and measures reader QPS
/// with and without a concurrent writer.
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 17);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 174);
    let k = ctx.params.k;

    let fw = RoadFramework::builder(g)
        .fanout(ctx.params.fanout)
        .levels(levels)
        .metric(ctx.params.metric)
        .build()
        .expect("framework builds");
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for o in &objects {
        ad.insert(fw.network(), fw.hierarchy(), o.clone()).expect("object maps");
    }
    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    let num_rnets = fw.hierarchy().num_rnets();
    let (live, mut writer) = LiveEngine::new(fw, ad);
    let queries: Vec<KnnQuery> = nodes.iter().map(|&n| KnnQuery::new(n, k)).collect();

    let readers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .clamp(1, 4);

    // --- read-only baseline --------------------------------------------
    let (baseline_queries, baseline_secs) = run_readers(&live, &queries, readers);
    let baseline_qps = baseline_queries as f64 / baseline_secs.max(1e-9);

    // --- mixed: same readers + one writer streaming weight updates -----
    let done = AtomicBool::new(false);
    let (mixed_queries, mixed_secs, writer_secs, writer, shared_rnets_last) =
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut rng = StdRng::seed_from_u64(ctx.params.seed + 2026);
                let metric = ctx.params.metric;
                let mut shared = 0usize;
                let t = Instant::now();
                // roadlint: relaxed-ok reason="stop flag; thread::scope join orders everything after it"
                while !done.load(Ordering::Relaxed) {
                    for _ in 0..PUBLISH_BATCH {
                        let e = edges[rng.random_range(0..edges.len())];
                        let w = writer.framework().network().weight(e, metric);
                        let factor = rng.random_range(0.5..2.0);
                        writer
                            .set_edge_weight(e, Weight::new((w.get() * factor).max(1e-6)))
                            .expect("live edge");
                    }
                    let before = live.snapshot();
                    writer.publish();
                    let after = live.snapshot();
                    shared = after
                        .framework()
                        .shortcuts()
                        .shared_rnet_count(before.framework().shortcuts());
                    std::thread::sleep(PUBLISH_INTERVAL);
                }
                (writer, t.elapsed().as_secs_f64(), shared)
            });
            let (served, secs) = run_readers(&live, &queries, readers);
            done.store(true, Ordering::Relaxed); // roadlint: relaxed-ok reason="stop flag; thread::scope join orders everything after it"
            let (w, writer_secs, shared) = worker.join().expect("writer thread");
            (served, secs, writer_secs, w, shared)
        });
    let mixed_qps = mixed_queries as f64 / mixed_secs.max(1e-9);
    let stats = writer.stats();
    let updates_per_sec = stats.updates as f64 / writer_secs.max(1e-9);
    let refreshed_per_update =
        stats.outcome.rnets_refreshed as f64 / (stats.updates as f64).max(1.0);

    print_table(
        &format!(
            "exp_live — {readers} readers on {} (|O| = {count}, k = {k}), writer batches {PUBLISH_BATCH} updates/publish",
            ds.name()
        ),
        &["mode", "reader QPS", "vs read-only", "writer updates/s", "publishes"],
        &[
            vec!["read-only".into(), fmt_f(baseline_qps), "1.00x".into(), "—".into(), "0".into()],
            vec![
                "mixed (writer streaming)".into(),
                fmt_f(mixed_qps),
                format!("{:.2}x", mixed_qps / baseline_qps.max(1e-9)),
                fmt_f(updates_per_sec),
                format!("{}", stats.publishes),
            ],
        ],
    );
    print_table(
        "exp_live — update locality and structural sharing",
        &[
            "updates",
            "Rnets refreshed/update",
            "hierarchy Rnets",
            "shared Rnets across last publish",
        ],
        &[vec![
            format!("{}", stats.updates),
            format!("{refreshed_per_update:.2}"),
            format!("{num_rnets}"),
            format!("{shared_rnets_last}/{num_rnets}"),
        ]],
    );
    // Repairs must stay local: a weight change refreshes at most one Rnet
    // chain, never a meaningful fraction of the hierarchy.
    assert!(
        refreshed_per_update <= (levels as f64).max(1.0) + 1e-9,
        "filter-and-refresh lost locality: {refreshed_per_update:.2} Rnets per update"
    );
}
