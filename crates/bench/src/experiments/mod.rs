//! One module per figure of the paper's evaluation (Section 6), plus the
//! design-choice ablations called out in ARCHITECTURE.md and the two
//! serving experiments (`exp_throughput`, `exp_live`).

pub mod ablation;
pub mod construction;
pub mod disk;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod live;
pub mod throughput;

use crate::config::{ExpScale, Params};

/// Everything an experiment needs.
#[derive(Clone, Debug)]
pub struct Ctx {
    pub scale: ExpScale,
    pub params: Params,
}

impl Ctx {
    /// Context from argv (`--scale small|medium|full`).
    pub fn from_args() -> Self {
        Ctx { scale: ExpScale::from_args(), params: Params::default() }
    }

    /// Context for a specific scale.
    pub fn with_scale(scale: ExpScale) -> Self {
        Ctx { scale, params: Params::default() }
    }

    /// Scales an object cardinality with the network factor so that object
    /// density stays comparable to the paper's.
    pub fn scaled_count(&self, base: usize, factor: f64) -> usize {
        ((base as f64 * factor).round() as usize).max(4)
    }
}

/// Runs the complete suite in paper order (the `exp_all` binary).
pub fn run_all(ctx: &Ctx) {
    println!("# ROAD reproduction — full experiment suite");
    println!(
        "\nscale = {} (CA x{}, NA/SF x{}, {} queries, {} trials per point)",
        ctx.scale.name, ctx.scale.ca, ctx.scale.big, ctx.scale.queries, ctx.scale.trials
    );
    fig11::run(ctx);
    fig13::run(ctx);
    fig14::run(ctx);
    construction::run(ctx);
    fig15::run(ctx);
    fig16::run(ctx);
    fig17::run(ctx, None);
    fig18::run(ctx, None);
    fig19::run(ctx);
    ablation::run(ctx);
    disk::run(ctx);
    live::run(ctx);
}
