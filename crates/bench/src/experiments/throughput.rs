//! `exp_throughput` — query throughput of the concurrent `QueryEngine`.
//!
//! Not a figure from the paper: the paper measures single queries on a
//! disk-resident index, while this experiment measures the served query
//! rate of the in-memory engine — the quantity a heavy-traffic deployment
//! cares about. It runs the Figure 17 kNN workload (CA network, uniform
//! objects, `k = 5`) three ways:
//!
//! 1. **fresh** — a brand-new `SearchWorkspace` per query: what a caller
//!    pays if they ignore the reuse contract (allocating and
//!    INFINITY-filling the dense per-node arrays every time — *more* work
//!    than the old hash-map engine's five small allocations, so this row
//!    bounds naive usage of the new API, not the old design);
//! 2. **reused** — one workspace reused across the whole stream
//!    (generation-stamped invalidation, zero steady-state allocations);
//! 3. **scaled** — `QueryEngine::batch_knn` over 1..=N worker threads,
//!    next to the **paged** column: the same batch through one shared
//!    disk-resident `PagedEngine` (warm lock-striped buffer pool), so the
//!    table shows what serving from pages costs at every thread count.
//!
//! Reported: queries/second, the single-thread speedup of reuse over
//! per-query construction, the multi-thread scaling curve, and the number
//! of queries that ran on a recycled workspace
//! (`SearchStats::workspace_reused`) — each such query performed zero
//! scratch-container allocations where the old hash-map engine performed
//! five (distance + predecessor maps, two sets, heap).

use super::Ctx;
use crate::table::{fmt_f, print_table};
use crate::{config, workload};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_network::generator::Dataset;
use std::time::Instant;

/// How many passes over the query-node set make one measured stream.
const PASSES: usize = 20;

/// Builds the fig17 workload and measures throughput.
pub fn run(ctx: &Ctx) {
    let ds = Dataset::CaHighways;
    let g = config::network(ds, &ctx.scale, &ctx.params);
    let levels = config::levels(ds, &g, &ctx.scale, &ctx.params);
    let count = ctx.scaled_count(ctx.params.objects, ctx.scale.factor(ds));
    let objects = workload::uniform_objects(&g, count, ctx.params.seed + 17);
    let nodes = workload::query_nodes(&g, ctx.scale.queries, ctx.params.seed + 174);
    let k = ctx.params.k;

    let fw = RoadFramework::builder(g)
        .fanout(ctx.params.fanout)
        .levels(levels)
        .metric(ctx.params.metric)
        .build()
        .expect("framework builds");
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for o in &objects {
        ad.insert(fw.network(), fw.hierarchy(), o.clone()).expect("object maps");
    }
    // The paged column serves the same workload from 4 KB pages through
    // the shared (lock-striped) buffer pool, paper-default 50 frames.
    let paged = PagedEngine::new(&fw, &ad, PagedOptions::default()).expect("paged engine builds");
    let engine = QueryEngine::new(fw, ad);
    let queries: Vec<KnnQuery> = nodes.iter().map(|&n| KnnQuery::new(n, k)).collect();
    let stream_len = queries.len() * PASSES;

    // --- single thread: fresh workspace per query (naive API usage) ----
    let mut hits = Vec::new();
    let fresh_secs = {
        let t = Instant::now();
        for _ in 0..PASSES {
            for q in &queries {
                let mut ws = SearchWorkspace::new();
                engine.knn_with(q, &mut ws, &mut hits).expect("valid query");
            }
        }
        t.elapsed().as_secs_f64()
    };

    // --- single thread: one workspace reused across the stream ---------
    let mut ws = SearchWorkspace::new();
    let mut reused_queries = 0usize;
    // Warm pass: sizes the arrays and faults the index in.
    for q in &queries {
        engine.knn_with(q, &mut ws, &mut hits).expect("valid query");
    }
    let reused_secs = {
        let t = Instant::now();
        for _ in 0..PASSES {
            for q in &queries {
                let stats = engine.knn_with(q, &mut ws, &mut hits).expect("valid query");
                reused_queries += usize::from(stats.workspace_reused);
            }
        }
        t.elapsed().as_secs_f64()
    };

    let fresh_qps = stream_len as f64 / fresh_secs.max(1e-9);
    let reused_qps = stream_len as f64 / reused_secs.max(1e-9);
    print_table(
        &format!(
            "exp_throughput — single-thread kNN on {} (|O| = {count}, k = {k}, {stream_len} queries)",
            ds.name()
        ),
        &["workspace", "QPS", "speedup", "reused queries", "allocations avoided"],
        &[
            vec!["fresh per query".into(), fmt_f(fresh_qps), "1.00x".into(), "0".into(), "0".into()],
            vec![
                "reused (generation-stamped)".into(),
                fmt_f(reused_qps),
                format!("{:.2}x", reused_qps / fresh_qps.max(1e-9)),
                format!("{reused_queries}"),
                // Versus the old hash-map engine's 5 scratch containers
                // per query: two hash maps, two hash sets and a heap.
                format!("{}", reused_queries * 5),
            ],
        ],
    );

    // --- multi-thread scaling over batch_knn: in-memory and paged ------
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let stream: Vec<KnnQuery> = (0..PASSES).flat_map(|_| queries.iter().cloned()).collect();
    // Warm the paged pool once so the column measures steady-state
    // serving, not first-touch faults.
    let warm = paged.batch_knn(&queries, 1).expect("valid batch");
    assert_eq!(warm.len(), queries.len());
    let mut rows = Vec::new();
    let mut base_qps = 0.0;
    let mut t = 1usize;
    while t <= max_threads {
        let t0 = Instant::now();
        let answers = engine.batch_knn(&stream, t).expect("valid batch");
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(answers.len(), stream.len());
        let qps = stream.len() as f64 / secs.max(1e-9);
        let t1 = Instant::now();
        let paged_answers = paged.batch_knn(&stream, t).expect("valid batch");
        let paged_qps = stream.len() as f64 / t1.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(paged_answers, answers, "paged batch diverged from the in-memory batch");
        if t == 1 {
            base_qps = qps;
        }
        rows.push(vec![
            format!("{t}"),
            fmt_f(qps),
            format!("{:.2}x", qps / base_qps.max(1e-9)),
            fmt_f(paged_qps),
            format!("{:.0}%", 100.0 * paged_qps / qps.max(1e-9)),
        ]);
        if t == max_threads {
            break;
        }
        t = (t * 2).min(max_threads);
    }
    print_table(
        &format!("exp_throughput — batch_knn scaling ({} hardware threads)", max_threads),
        &["threads", "QPS", "speedup", "paged QPS", "paged/memory"],
        &rows,
    );
}
