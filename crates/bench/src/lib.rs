//! # road-bench
//!
//! Experiment harness reproducing every table and figure of the ROAD
//! paper's evaluation (Section 6). Each `fig*` binary regenerates one
//! figure; `exp_all` runs the whole suite (that output is what
//! `EXPERIMENTS.md` records). Criterion microbenches for the hot paths
//! live under `benches/`.
//!
//! ```text
//! cargo run --release -p road-bench --bin exp_all -- --scale medium
//! cargo run --release -p road-bench --bin fig17_knn -- --axis k
//! ```
//!
//! Scales (`--scale`):
//! * `small`  — CI-sized: every network heavily scaled down;
//! * `medium` — CA at paper size, NA/SF at 25% (default);
//! * `full`   — the paper's exact network sizes;
//! * `large`  — the paper's networks at full size *plus* the
//!   beyond-paper ~10^6-node continental preset (`CONT`).

pub mod config;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod table;
pub mod workload;

pub use config::{ExpScale, Params};
pub use runner::{build_engine, EngineKind};
