//! Machine-readable experiment reports.
//!
//! `exp_all` records every table it prints (see [`crate::table`]) and
//! serializes the run into `BENCH_<scale>.json` so CI can archive the
//! numbers as an artifact. The workspace builds offline with no external
//! dependencies, so the JSON writer is hand-rolled; the document shape is
//! deliberately flat:
//!
//! ```json
//! {
//!   "suite": "exp_all",
//!   "scale": "small",
//!   "ca_factor": 0.04,
//!   "big_factor": 0.012,
//!   "queries": 15,
//!   "trials": 8,
//!   "tables": [ { "title": "...", "header": [...], "rows": [[...]] } ]
//! }
//! ```

use crate::config::ExpScale;
use crate::table::RecordedTable;

/// Escapes a string for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Serializes a recorded `exp_all` run as a pretty-enough JSON document.
pub fn suite_json(scale: &ExpScale, tables: &[RecordedTable]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"suite\": \"exp_all\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", escape(scale.name)));
    out.push_str(&format!("  \"ca_factor\": {},\n", scale.ca));
    out.push_str(&format!("  \"big_factor\": {},\n", scale.big));
    out.push_str(&format!("  \"queries\": {},\n", scale.queries));
    out.push_str(&format!("  \"trials\": {},\n", scale.trials));
    out.push_str("  \"tables\": [\n");
    for (i, t) in tables.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"title\": \"{}\",\n", escape(&t.title)));
        out.push_str(&format!("      \"header\": {},\n", string_array(&t.header)));
        out.push_str("      \"rows\": [\n");
        for (j, row) in t.rows.iter().enumerate() {
            let comma = if j + 1 < t.rows.len() { "," } else { "" };
            out.push_str(&format!("        {}{comma}\n", string_array(row)));
        }
        out.push_str("      ]\n");
        let comma = if i + 1 < tables.len() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn suite_json_is_structurally_sound() {
        let tables = vec![
            RecordedTable {
                title: "kNN vs \"k\"".to_owned(),
                header: vec!["k".to_owned(), "ms".to_owned()],
                rows: vec![
                    vec!["1".to_owned(), "0.5".to_owned()],
                    vec!["10".to_owned(), "1.2".to_owned()],
                ],
            },
            RecordedTable { title: "empty".to_owned(), header: vec![], rows: vec![] },
        ];
        let json = suite_json(&config::SMALL, &tables);
        assert!(json.contains("\"suite\": \"exp_all\""));
        assert!(json.contains("\"scale\": \"small\""));
        assert!(json.contains("kNN vs \\\"k\\\""));
        // Balanced delimiters — a cheap well-formedness check without a
        // JSON parser in the tree.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
        // No trailing comma before any closing bracket.
        assert!(!json.contains(",\n  ]") && !json.contains(",\n    ]"));
        assert!(!json.contains(",]") && !json.contains(",}"));
    }
}
