//! Engine factory and measurement helpers.

use crate::config::Params;
use road_baselines::road_engine::RoadEngineConfig;
use road_baselines::{DistIdxEngine, Engine, EuclideanEngine, NetExpEngine, RoadEngine};
use road_core::model::{Object, ObjectFilter};
use road_network::graph::RoadNetwork;
use road_network::{NodeId, Weight};
use std::time::Instant;

/// The four approaches of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    NetExp,
    Euclidean,
    DistIdx,
    Road,
}

impl EngineKind {
    /// Figure order in the paper.
    pub const ALL: [EngineKind; 4] =
        [EngineKind::NetExp, EngineKind::Euclidean, EngineKind::DistIdx, EngineKind::Road];

    /// Label used in tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::NetExp => "NetExp",
            EngineKind::Euclidean => "Euclidean",
            EngineKind::DistIdx => "DistIdx",
            EngineKind::Road => "ROAD",
        }
    }
}

/// Builds one engine over a copy of the network and objects.
pub fn build_engine(
    kind: EngineKind,
    g: &RoadNetwork,
    objects: &[Object],
    params: &Params,
    levels: u32,
) -> Box<dyn Engine> {
    match kind {
        EngineKind::NetExp => Box::new(NetExpEngine::build(
            g.clone(),
            params.metric,
            objects.to_vec(),
            params.buffer_pages,
        )),
        EngineKind::Euclidean => Box::new(EuclideanEngine::build(
            g.clone(),
            params.metric,
            objects.to_vec(),
            params.buffer_pages,
        )),
        EngineKind::DistIdx => Box::new(DistIdxEngine::build(
            g.clone(),
            params.metric,
            objects.to_vec(),
            params.buffer_pages,
        )),
        EngineKind::Road => Box::new(
            RoadEngine::build(
                g.clone(),
                params.metric,
                objects.to_vec(),
                params.buffer_pages,
                RoadEngineConfig { fanout: params.fanout, levels, prune_transitive: true },
            )
            .expect("framework builds"),
        ),
    }
}

/// Averages over a query batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Mean *processing* time in milliseconds: measured CPU time plus
    /// simulated disk latency for the page faults (the paper's metric is
    /// end-to-end time on a disk-resident index).
    pub avg_ms: f64,
    /// Mean measured CPU milliseconds only.
    pub avg_cpu_ms: f64,
    /// Mean simulated page faults.
    pub avg_faults: f64,
    /// Mean node records touched.
    pub avg_nodes: f64,
}

fn measure(
    nodes: &[NodeId],
    io_ms_per_fault: f64,
    mut run: impl FnMut(NodeId) -> road_baselines::QueryCost,
) -> QueryStats {
    let mut total_ms = 0.0;
    let mut faults = 0u64;
    let mut visited = 0usize;
    for &n in nodes {
        let t = Instant::now();
        let cost = run(n);
        total_ms += t.elapsed().as_secs_f64() * 1e3;
        faults += cost.page_faults;
        visited += cost.nodes_visited;
    }
    let q = nodes.len().max(1) as f64;
    let avg_cpu_ms = total_ms / q;
    let avg_faults = faults as f64 / q;
    QueryStats {
        avg_ms: avg_cpu_ms + avg_faults * io_ms_per_fault,
        avg_cpu_ms,
        avg_faults,
        avg_nodes: visited as f64 / q,
    }
}

/// Runs `knn` at every query node and averages.
pub fn measure_knn(
    engine: &mut dyn Engine,
    nodes: &[NodeId],
    k: usize,
    filter: &ObjectFilter,
    io_ms_per_fault: f64,
) -> QueryStats {
    measure(nodes, io_ms_per_fault, |n| engine.knn(n, k, filter))
}

/// Runs `range` at every query node and averages.
pub fn measure_range(
    engine: &mut dyn Engine,
    nodes: &[NodeId],
    radius: Weight,
    filter: &ObjectFilter,
    io_ms_per_fault: f64,
) -> QueryStats {
    measure(nodes, io_ms_per_fault, |n| engine.range(n, radius, filter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use road_network::generator::simple;

    #[test]
    fn factory_builds_all_engines_and_they_answer() {
        let g = simple::grid(8, 8, 1.0);
        let objects = workload::uniform_objects(&g, 6, 1);
        let params = Params::default();
        let nodes = workload::query_nodes(&g, 5, 2);
        for kind in EngineKind::ALL {
            let mut e = build_engine(kind, &g, &objects, &params, 2);
            assert_eq!(e.name(), kind.name());
            let stats = measure_knn(e.as_mut(), &nodes, 3, &ObjectFilter::Any, 2.0);
            assert!(stats.avg_ms >= 0.0);
            let stats =
                measure_range(e.as_mut(), &nodes, Weight::new(5.0), &ObjectFilter::Any, 2.0);
            assert!(stats.avg_faults >= 0.0);
        }
    }
}
