//! Markdown table output for experiment results, with an optional
//! recorder so a harness run can also be captured as a machine-readable
//! artifact (`exp_all` writes `BENCH_<scale>.json` from it).

use std::sync::Mutex;

/// One table as printed by [`print_table`].
#[derive(Clone, Debug)]
pub struct RecordedTable {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

static RECORDER: Mutex<Option<Vec<RecordedTable>>> = Mutex::new(None);

/// Starts capturing every subsequently printed table (process-wide).
pub fn start_recording() {
    *RECORDER.lock().unwrap_or_else(|p| p.into_inner()) = Some(Vec::new());
}

/// Stops capturing and returns everything recorded since
/// [`start_recording`].
pub fn take_recorded() -> Vec<RecordedTable> {
    RECORDER.lock().unwrap_or_else(|p| p.into_inner()).take().unwrap_or_default()
}

/// Prints a titled GitHub-flavoured markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    if let Some(rec) = RECORDER.lock().unwrap_or_else(|p| p.into_inner()).as_mut() {
        rec.push(RecordedTable {
            title: title.to_owned(),
            header: header.iter().map(|h| (*h).to_owned()).collect(),
            rows: rows.to_vec(),
        });
    }
}

/// Milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

/// Seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

/// Bytes as MB.
pub fn fmt_mb(bytes: usize) -> String {
    let mb = bytes as f64 / (1024.0 * 1024.0);
    if mb >= 100.0 {
        format!("{mb:.0}MB")
    } else if mb >= 1.0 {
        format!("{mb:.1}MB")
    } else {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    }
}

/// Plain float.
pub fn fmt_f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(250.0), "250");
        assert_eq!(fmt_ms(2.5), "2.50");
        assert_eq!(fmt_ms(0.25), "0.250");
        assert_eq!(fmt_secs(120.0), "120");
        assert_eq!(fmt_secs(2.0), "2.00");
        assert_eq!(fmt_secs(0.004), "4.00ms");
        assert_eq!(fmt_mb(250 * 1024 * 1024), "250MB");
        assert_eq!(fmt_mb(5 * 1024 * 1024 / 2), "2.5MB");
        assert_eq!(fmt_mb(10 * 1024), "10KB");
        assert_eq!(fmt_f(3.16), "3.2");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
