//! Workload generation: objects and query nodes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::model::{CategoryId, Object, ObjectId};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, NodeId};

/// Objects "evenly distributed over the road network" (Section 6): edges
/// are sampled with probability proportional to their length, positions
/// uniform along the edge — spatially uniform placement.
pub fn uniform_objects(g: &RoadNetwork, count: usize, seed: u64) -> Vec<Object> {
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    let lengths: Vec<f64> =
        edges.iter().map(|&e| g.weight(e, WeightKind::Distance).get()).collect();
    let total: f64 = lengths.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut target = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut idx = 0;
        for (j, &len) in lengths.iter().enumerate() {
            if target <= len {
                idx = j;
                break;
            }
            target -= len;
            idx = j;
        }
        out.push(Object::new(
            ObjectId(i as u64),
            edges[idx],
            rng.random_range(0.0..=1.0),
            CategoryId(0),
        ));
    }
    out
}

/// Clustered objects (the paper's footnote 3: ROAD benefits more from
/// uneven distributions): `clusters` random centres, objects on edges near
/// them.
pub fn clustered_objects(g: &RoadNetwork, count: usize, clusters: usize, seed: u64) -> Vec<Object> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    // Cluster centres are random edge midpoints.
    let centres: Vec<road_network::Point> = (0..clusters.max(1))
        .map(|_| {
            let e = edges[rng.random_range(0..edges.len())];
            let (a, b) = g.edge(e).endpoints();
            g.coord(a).midpoint(g.coord(b))
        })
        .collect();
    let extent = g.bounding_rect();
    let radius = (extent.width().max(extent.height()) * 0.05).max(1e-9);
    // Index edges by proximity to each centre (linear scan, build-time only).
    let mut near: Vec<Vec<EdgeId>> = vec![Vec::new(); centres.len()];
    for &e in &edges {
        let (a, b) = g.edge(e).endpoints();
        let m = g.coord(a).midpoint(g.coord(b));
        for (c, centre) in centres.iter().enumerate() {
            if m.distance(*centre) <= radius {
                near[c].push(e);
            }
        }
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let c = i % centres.len();
        let pool = if near[c].is_empty() { &edges } else { &near[c] };
        out.push(Object::new(
            ObjectId(i as u64),
            pool[rng.random_range(0..pool.len())],
            rng.random_range(0.0..=1.0),
            CategoryId(0),
        ));
    }
    out
}

/// Random query nodes ("100 queries issued at random positions").
pub fn query_nodes(g: &RoadNetwork, count: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| NodeId(rng.random_range(0..g.num_nodes() as u32))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::generator::simple;

    #[test]
    fn uniform_objects_land_on_live_edges() {
        let g = simple::grid(8, 8, 1.0);
        let objs = uniform_objects(&g, 40, 1);
        assert_eq!(objs.len(), 40);
        for o in &objs {
            assert!(!g.edge(o.edge).is_deleted());
            assert!((0.0..=1.0).contains(&o.fraction));
        }
        // Deterministic.
        let again = uniform_objects(&g, 40, 1);
        assert_eq!(objs, again);
    }

    #[test]
    fn clustered_objects_concentrate() {
        let g = simple::grid(20, 20, 1.0);
        let objs = clustered_objects(&g, 60, 2, 3);
        assert_eq!(objs.len(), 60);
        // Concentration check: the objects' midpoints should span far less
        // area than the network.
        let pts: Vec<_> = objs.iter().map(|o| o.position(&g)).collect();
        let r = road_network::Rect::covering(pts.iter().copied());
        let net = g.bounding_rect();
        assert!(r.area() < net.area() * 0.9, "objects not clustered: {r:?}");
    }

    #[test]
    fn query_nodes_in_bounds() {
        let g = simple::grid(5, 5, 1.0);
        for n in query_nodes(&g, 100, 7) {
            assert!(n.index() < g.num_nodes());
        }
    }
}
