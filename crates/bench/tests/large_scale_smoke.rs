//! `--scale large` construction smoke, `#[ignore]`d so it only runs in
//! the CI `--include-ignored` step: drives the construction experiment
//! over the large-scale dataset list — the paper's three networks *plus*
//! the continental preset — at sharply reduced factors, so the whole
//! `--scale large` code path (dataset selection, continent generation,
//! sequential and parallel builds, table assembly) is exercised in
//! seconds rather than the hours a true 10^6-node run takes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use road_bench::config::{self, ExpScale, Params, LARGE};
use road_bench::experiments::{construction, Ctx};
use road_network::generator::Dataset;

/// A `large`-shaped scale shrunk to CI size: same name (so the large
/// dataset list, continent included, is selected), tiny factors.
fn shrunken_large() -> ExpScale {
    ExpScale { ca: 0.02, big: 0.005, continent: 0.02, queries: 5, trials: 3, ..LARGE }
}

#[test]
#[ignore = "large-scale construction smoke; run with --include-ignored"]
fn scale_large_construction_smoke() {
    let scale = shrunken_large();
    assert_eq!(scale.name, "large");
    assert!(scale.datasets().contains(&Dataset::Continent));
    construction::run(&Ctx { scale, params: Params::default() });
}

/// The continental preset itself must generate and report cleanly at a
/// smoke factor — ~20k nodes of highway backbone plus street grids.
#[test]
#[ignore = "large-scale construction smoke; run with --include-ignored"]
fn continent_generates_at_smoke_factor() {
    let scale = shrunken_large();
    let params = Params::default();
    let g = config::network(Dataset::Continent, &scale, &params);
    assert_eq!(g.num_nodes(), 20_000);
    assert_eq!(g.connected_components(), 1);
    let levels = config::levels(Dataset::Continent, &g, &scale, &params);
    assert!((2..=10).contains(&levels), "bad suggested depth {levels}");
}
