//! Object abstracts (Definition 2, Lemma 1).
//!
//! An object abstract summarises the objects inside an Rnet so a search can
//! decide — without descending — whether the Rnet may contain objects of
//! interest. The paper suggests aggregated values, Bloom filters or
//! signatures; the primary representation here is **exact per-category
//! counts**, which (a) answer every filter our LDSQs use with no false
//! positives, and (b) support decrement-on-delete, keeping Lemma 1
//! (`O(R) = ⋃ O(R_i)`) true under object churn. A counting-Bloom summary
//! over raw category ids can be enabled to model the compact
//! representation's size/precision trade-off (ablation experiment).

use crate::model::{CategoryId, ObjectFilter};
use road_network::hash::FastMap;
use road_spatial::CountingBloom;

/// How abstracts answer "does this Rnet contain objects of interest?".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AbstractKind {
    /// Exact per-category counters (no false positives).
    #[default]
    Counts,
    /// Counting Bloom filter over category ids plus a total counter;
    /// may yield false positives (wasted descents, never wrong answers).
    Bloom,
}

/// The abstract of one Rnet.
#[derive(Clone, Debug, Default)]
pub struct ObjectAbstract {
    total: u32,
    per_category: FastMap<u16, u32>,
    bloom: Option<CountingBloom>,
}

impl ObjectAbstract {
    /// An empty abstract of the given kind.
    pub fn new(kind: AbstractKind) -> Self {
        match kind {
            AbstractKind::Counts => ObjectAbstract::default(),
            AbstractKind::Bloom => ObjectAbstract {
                total: 0,
                per_category: FastMap::default(),
                bloom: Some(CountingBloom::new(64, 3)),
            },
        }
    }

    /// Records one object of `category`.
    pub fn insert(&mut self, category: CategoryId) {
        self.total += 1;
        if let Some(bloom) = &mut self.bloom {
            bloom.insert(category.0 as u64);
        } else {
            *self.per_category.entry(category.0).or_insert(0) += 1;
        }
    }

    /// Removes one object of `category`.
    ///
    /// # Panics
    /// Panics (in debug builds) when removing from an empty abstract —
    /// that is always a directory bookkeeping bug.
    pub fn remove(&mut self, category: CategoryId) {
        debug_assert!(self.total > 0, "abstract underflow");
        self.total = self.total.saturating_sub(1);
        if let Some(bloom) = &mut self.bloom {
            bloom.remove(category.0 as u64);
        } else if let Some(c) = self.per_category.get_mut(&category.0) {
            *c -= 1;
            if *c == 0 {
                self.per_category.remove(&category.0);
            }
        } else {
            debug_assert!(false, "removing unknown category {category:?}");
        }
    }

    /// Total number of objects summarised.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// `true` when no object is summarised.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// May the Rnet contain an object matching `filter`? Exact under
    /// [`AbstractKind::Counts`]; may report false positives under Bloom.
    pub fn may_match(&self, filter: &ObjectFilter) -> bool {
        if self.total == 0 {
            return false;
        }
        match filter {
            ObjectFilter::Any => true,
            ObjectFilter::Category(c) => self.may_have_category(*c),
            ObjectFilter::AnyOf(cs) => cs.iter().any(|&c| self.may_have_category(c)),
        }
    }

    fn may_have_category(&self, c: CategoryId) -> bool {
        if let Some(bloom) = &self.bloom {
            bloom.may_contain(c.0 as u64)
        } else {
            self.per_category.contains_key(&c.0)
        }
    }

    /// Per-category counts in ascending category order, or `None` for the
    /// Bloom representation (which has no exact counts to serialize). The
    /// paged engine lays these onto abstract records.
    pub(crate) fn sorted_counts(&self) -> Option<Vec<(u16, u32)>> {
        if self.bloom.is_some() {
            return None;
        }
        let mut counts: Vec<(u16, u32)> = self.per_category.iter().map(|(&c, &n)| (c, n)).collect();
        counts.sort_unstable_by_key(|&(c, _)| c);
        Some(counts)
    }

    /// Exact count for a category (counts representation only).
    pub fn category_count(&self, c: CategoryId) -> Option<u32> {
        if self.bloom.is_some() {
            None
        } else {
            Some(self.per_category.get(&c.0).copied().unwrap_or(0))
        }
    }

    /// Modelled serialized size in bytes (for the index-size experiments):
    /// a 4-byte total plus either 6 bytes per distinct category or the
    /// Bloom array.
    pub fn size_bytes(&self) -> usize {
        4 + match &self.bloom {
            Some(b) => b.size_bytes(),
            None => self.per_category.len() * 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_inserts_and_removes() {
        let mut a = ObjectAbstract::new(AbstractKind::Counts);
        assert!(a.is_empty());
        a.insert(CategoryId(1));
        a.insert(CategoryId(1));
        a.insert(CategoryId(2));
        assert_eq!(a.total(), 3);
        assert_eq!(a.category_count(CategoryId(1)), Some(2));
        assert!(a.may_match(&ObjectFilter::Category(CategoryId(2))));
        assert!(!a.may_match(&ObjectFilter::Category(CategoryId(3))));
        a.remove(CategoryId(2));
        assert!(!a.may_match(&ObjectFilter::Category(CategoryId(2))));
        assert!(a.may_match(&ObjectFilter::Any));
        a.remove(CategoryId(1));
        a.remove(CategoryId(1));
        assert!(a.is_empty());
        assert!(!a.may_match(&ObjectFilter::Any));
    }

    #[test]
    fn any_of_filters() {
        let mut a = ObjectAbstract::new(AbstractKind::Counts);
        a.insert(CategoryId(5));
        assert!(a.may_match(&ObjectFilter::AnyOf(vec![CategoryId(4), CategoryId(5)])));
        assert!(!a.may_match(&ObjectFilter::AnyOf(vec![CategoryId(4)])));
        assert!(!a.may_match(&ObjectFilter::AnyOf(vec![])));
    }

    #[test]
    fn bloom_has_no_false_negatives_and_supports_delete() {
        let mut a = ObjectAbstract::new(AbstractKind::Bloom);
        for c in 0..20u16 {
            a.insert(CategoryId(c));
        }
        for c in 0..20u16 {
            assert!(a.may_match(&ObjectFilter::Category(CategoryId(c))));
        }
        for c in 0..20u16 {
            a.remove(CategoryId(c));
        }
        assert!(a.is_empty());
        assert!(!a.may_match(&ObjectFilter::Category(CategoryId(3))));
        assert_eq!(a.category_count(CategoryId(3)), None, "bloom has no exact counts");
    }

    #[test]
    fn size_model_grows_with_categories() {
        let mut a = ObjectAbstract::new(AbstractKind::Counts);
        let empty = a.size_bytes();
        for c in 0..10u16 {
            a.insert(CategoryId(c));
        }
        assert!(a.size_bytes() > empty);
        let b = ObjectAbstract::new(AbstractKind::Bloom);
        assert!(b.size_bytes() > 64, "bloom abstract pays its array");
    }
}
