//! Flat query-path adjacency arena.
//!
//! The hot LDSQ expansion loop ([`crate::search`]) asks, for every settled
//! node, "which live edges leave `n`, at what weight under the framework's
//! metric, and which finest Rnet owns them?".  Answering that from
//! [`RoadNetwork`]'s per-node adjacency lists costs three pointer chases per
//! arc (adjacency entry → edge record → weight array) plus a hierarchy
//! lookup.  The arena pre-joins all of it into five parallel flat vectors in
//! CSR layout — the same cache-friendly shape
//! [`road_network::csr::CsrGraph`] gives the construction path — so the
//! expansion loop streams arcs linearly.
//!
//! Arc order per node is exactly `RoadNetwork::neighbors` order, so query
//! tie-breaking (and with it paged/in-memory byte agreement) is unchanged.
//!
//! Maintenance keeps the arena current instead of rebuilding per query:
//! a weight update patches the two endpoint ranges in place
//! ([`QueryArena::patch_weight`]); topology changes rebuild it wholesale —
//! an `O(V + E)` pass dwarfed by the shortcut refresh the same update
//! already pays for.  The arena sits behind an `Arc` in
//! [`crate::framework::RoadFramework`], so forking a framework shares it
//! until the next mutation (the same structural-sharing contract as the
//! shortcut store).

// roadlint: serving-path

use crate::hierarchy::{RnetHierarchy, RnetId};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, NodeId, Weight};

/// Pre-joined adjacency for the query path: per-arc edge id, head node,
/// framework-metric weight and owning finest Rnet, in CSR layout.
#[derive(Debug, Default, Clone)]
pub(crate) struct QueryArena {
    offsets: Vec<u32>,
    edges: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
    leaves: Vec<u32>,
}

impl QueryArena {
    /// Builds the arena by streaming every node's `neighbors` list — the
    /// arc order the query path has always used.
    pub(crate) fn build(g: &RoadNetwork, hier: &RnetHierarchy, kind: WeightKind) -> Self {
        let mut arena = QueryArena::default();
        arena.offsets.reserve(g.num_nodes() + 1);
        for n in 0..g.num_nodes() as u32 {
            arena.offsets.push(arena.edges.len() as u32);
            for (e, v) in g.neighbors(NodeId(n)) {
                arena.edges.push(e.0);
                arena.targets.push(v.0);
                arena.weights.push(g.weight(e, kind));
                arena.leaves.push(hier.leaf_of_edge(e).0);
            }
        }
        arena.offsets.push(arena.edges.len() as u32);
        arena
    }

    /// Iterate the arcs of `n` as `(edge, head, weight, leaf Rnet)` in
    /// `neighbors` order.  Out-of-range ids yield an empty iterator.
    #[inline]
    pub(crate) fn arcs(
        &self,
        n: u32,
    ) -> impl Iterator<Item = (EdgeId, NodeId, Weight, RnetId)> + '_ {
        let lo = self.offsets.get(n as usize).copied().unwrap_or(0) as usize;
        let hi = self.offsets.get(n as usize + 1).copied().unwrap_or(lo as u32) as usize;
        let lo = lo.min(self.edges.len());
        let hi = hi.clamp(lo, self.edges.len());
        self.edges
            .get(lo..hi)
            .unwrap_or(&[])
            .iter()
            .zip(self.targets.get(lo..hi).unwrap_or(&[]))
            .zip(self.weights.get(lo..hi).unwrap_or(&[]))
            .zip(self.leaves.get(lo..hi).unwrap_or(&[]))
            .map(|(((&e, &t), &w), &l)| (EdgeId(e), NodeId(t), w, RnetId(l)))
    }

    /// Re-joins the weight of edge `e` (already updated in `g`) into both
    /// endpoints' arc ranges.  `O(deg(a) + deg(b))`.
    pub(crate) fn patch_weight(&mut self, g: &RoadNetwork, e: EdgeId, weight: Weight) {
        let (a, b) = g.edge(e).endpoints();
        self.patch_endpoint(a, e, weight);
        self.patch_endpoint(b, e, weight);
    }

    /// Rewrites the weight slot(s) of edge `e` within one endpoint's range.
    fn patch_endpoint(&mut self, n: NodeId, e: EdgeId, weight: Weight) {
        let lo = self.offsets.get(n.index()).copied().unwrap_or(0) as usize;
        let hi = self.offsets.get(n.index() + 1).copied().unwrap_or(lo as u32) as usize;
        for i in lo..hi.max(lo) {
            if self.edges.get(i).copied() == Some(e.0) {
                if let Some(w) = self.weights.get_mut(i) {
                    *w = weight;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::RoadFramework;
    use road_network::generator::simple;

    #[test]
    fn arena_mirrors_neighbors_with_leaf_and_weight() {
        let g = simple::grid(5, 5, 1.0);
        let fw = RoadFramework::builder(g).fanout(2).levels(2).build().unwrap();
        let (g, hier) = (fw.network(), fw.hierarchy());
        let arena = QueryArena::build(g, hier, WeightKind::Distance);
        for n in 0..g.num_nodes() as u32 {
            let want: Vec<_> = g
                .neighbors(NodeId(n))
                .map(|(e, v)| (e, v, g.weight(e, WeightKind::Distance), hier.leaf_of_edge(e)))
                .collect();
            let got: Vec<_> = arena.arcs(n).collect();
            assert_eq!(got, want, "node {n}");
        }
        assert!(arena.arcs(g.num_nodes() as u32 + 7).next().is_none());
    }

    #[test]
    fn patch_updates_both_endpoint_ranges() {
        let g = simple::grid(4, 4, 1.0);
        let fw = RoadFramework::builder(g).fanout(2).levels(2).build().unwrap();
        let (g, hier) = (fw.network(), fw.hierarchy());
        let mut g2 = g.clone();
        let e = g2.edge_ids().next().unwrap();
        g2.set_weight(e, WeightKind::Distance, Weight::new(42.0)).unwrap();

        let mut arena = QueryArena::build(g, hier, WeightKind::Distance);
        arena.patch_weight(&g2, e, Weight::new(42.0));
        let fresh = QueryArena::build(&g2, hier, WeightKind::Distance);
        for n in 0..g2.num_nodes() as u32 {
            let a: Vec<_> = arena.arcs(n).collect();
            let b: Vec<_> = fresh.arcs(n).collect();
            assert_eq!(a, b, "node {n}");
        }
    }
}
