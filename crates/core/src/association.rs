//! The Association Directory (Section 3.4, Figure 7).
//!
//! The directory maps node ids to the objects on their incident edges
//! (with offsets) and Rnet ids to object abstracts — cleanly separated
//! from the Route Overlay, which is the framework's headline design
//! property: map providers maintain the network, content providers map
//! their objects onto it on the fly, and several directories (one per
//! object type) can coexist over one overlay.
//!
//! Object insertion and deletion (Section 5.1) touch only this structure:
//! the node associations of the edge's endpoints and the abstracts of the
//! enclosing Rnet chain, `O(l)` work per update.

use crate::abstracts::{AbstractKind, ObjectAbstract};
use crate::hierarchy::{RnetHierarchy, RnetId};
use crate::model::{CategoryId, Object, ObjectFilter, ObjectId};
use crate::RoadError;
use road_network::graph::RoadNetwork;
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId};

/// An object directory over one Rnet hierarchy.
///
/// `Clone` is a deep copy proportional to the object count; the live
/// engine holds directories behind [`std::sync::Arc`] and only pays it on
/// the first object mutation after a snapshot fork (network-side updates
/// never touch the directory).
#[derive(Clone)]
pub struct AssociationDirectory {
    kind: AbstractKind,
    objects: FastMap<u64, Object>,
    node_objects: FastMap<u32, Vec<ObjectId>>,
    edge_objects: FastMap<u32, Vec<ObjectId>>,
    abstracts: Vec<ObjectAbstract>,
}

impl AssociationDirectory {
    /// An empty directory sized for `hier`, with exact-count abstracts.
    pub fn new(hier: &RnetHierarchy) -> Self {
        Self::with_kind(hier, AbstractKind::Counts)
    }

    /// An empty directory with the chosen abstract representation.
    pub fn with_kind(hier: &RnetHierarchy, kind: AbstractKind) -> Self {
        AssociationDirectory {
            kind,
            objects: FastMap::default(),
            node_objects: FastMap::default(),
            edge_objects: FastMap::default(),
            abstracts: (0..hier.num_rnets()).map(|_| ObjectAbstract::new(kind)).collect(),
        }
    }

    /// The abstract representation this directory uses.
    pub fn abstract_kind(&self) -> AbstractKind {
        self.kind
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the directory holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks an object up by id.
    pub fn object(&self, id: ObjectId) -> Option<&Object> {
        self.objects.get(&id.0)
    }

    /// Iterates all objects (arbitrary order).
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.objects.values()
    }

    /// Inserts an object (Section 5.1): associates it with both endpoint
    /// nodes and bumps the abstracts of its Rnet chain.
    pub fn insert(
        &mut self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        object: Object,
    ) -> Result<(), RoadError> {
        if self.objects.contains_key(&object.id.0) {
            return Err(RoadError::DuplicateObject(object.id));
        }
        if object.edge.index() >= g.edge_slots() || g.edge(object.edge).is_deleted() {
            return Err(RoadError::EdgeUnavailable(object.edge));
        }
        if !(object.fraction.is_finite() && (0.0..=1.0).contains(&object.fraction)) {
            return Err(RoadError::BadPlacement(format!(
                "fraction {} outside [0, 1]",
                object.fraction
            )));
        }
        let leaf = hier.leaf_of_edge(object.edge);
        if !leaf.is_valid() {
            return Err(RoadError::BadPlacement(format!(
                "edge {} is not assigned to any Rnet",
                object.edge
            )));
        }
        let (a, b) = g.edge(object.edge).endpoints();
        self.node_objects.entry(a.0).or_default().push(object.id);
        self.node_objects.entry(b.0).or_default().push(object.id);
        self.edge_objects.entry(object.edge.0).or_default().push(object.id);
        let mut r = leaf;
        while r.is_valid() {
            self.abstracts[r.0 as usize].insert(object.category);
            r = hier.parent(r);
        }
        self.objects.insert(object.id.0, object);
        Ok(())
    }

    /// Removes an object (Section 5.1), returning it.
    pub fn remove(
        &mut self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        id: ObjectId,
    ) -> Result<Object, RoadError> {
        let object = self.objects.remove(&id.0).ok_or(RoadError::UnknownObject(id))?;
        let (a, b) = g.edge(object.edge).endpoints();
        if let Some(v) = self.node_objects.get_mut(&a.0) {
            v.retain(|&o| o != id);
        }
        if let Some(v) = self.node_objects.get_mut(&b.0) {
            v.retain(|&o| o != id);
        }
        if let Some(v) = self.edge_objects.get_mut(&object.edge.0) {
            v.retain(|&o| o != id);
        }
        let mut r = hier.leaf_of_edge(object.edge);
        while r.is_valid() {
            self.abstracts[r.0 as usize].remove(object.category);
            r = hier.parent(r);
        }
        Ok(object)
    }

    /// Updates an object's category attribute in place (the paper's
    /// "changes of object attributes" case).
    pub fn update_category(
        &mut self,
        hier: &RnetHierarchy,
        id: ObjectId,
        category: CategoryId,
    ) -> Result<CategoryId, RoadError> {
        let object = self.objects.get_mut(&id.0).ok_or(RoadError::UnknownObject(id))?;
        let old = object.category;
        if old == category {
            return Ok(old);
        }
        object.category = category;
        let edge = object.edge;
        let mut r = hier.leaf_of_edge(edge);
        while r.is_valid() {
            let a = &mut self.abstracts[r.0 as usize];
            a.remove(old);
            a.insert(category);
            r = hier.parent(r);
        }
        Ok(old)
    }

    /// Objects associated with node `n` (those on its incident edges).
    pub fn objects_at_node(&self, n: NodeId) -> impl Iterator<Item = &Object> {
        self.node_objects.get(&n.0).into_iter().flatten().filter_map(|id| self.objects.get(&id.0))
    }

    /// `true` when some object is associated with node `n`.
    pub fn node_has_objects(&self, n: NodeId) -> bool {
        self.node_objects.get(&n.0).map(|v| !v.is_empty()).unwrap_or(false)
    }

    /// Objects on edge `e`.
    pub fn objects_on_edge(&self, e: EdgeId) -> impl Iterator<Item = &Object> {
        self.edge_objects.get(&e.0).into_iter().flatten().filter_map(|id| self.objects.get(&id.0))
    }

    /// The abstract of an Rnet.
    pub fn abstract_of(&self, r: RnetId) -> &ObjectAbstract {
        &self.abstracts[r.0 as usize]
    }

    /// SearchObject against an Rnet: may it contain objects matching the
    /// filter? (Figure 10, line 7.)
    #[inline]
    pub fn rnet_may_match(&self, r: RnetId, filter: &ObjectFilter) -> bool {
        self.abstracts[r.0 as usize].may_match(filter)
    }

    /// Count of stored objects matching `filter` (exact, full scan).
    pub fn matching_count(&self, filter: &ObjectFilter) -> usize {
        self.objects.values().filter(|o| filter.matches(o)).count()
    }

    /// Modelled serialized size in bytes: per-node associations (node id +
    /// object id + offset per entry) plus non-empty Rnet abstracts — the
    /// quantities Figure 13/14 charge to ROAD's object side.
    pub fn size_bytes(&self) -> usize {
        let node_entries: usize = self.node_objects.values().map(|v| v.len()).sum();
        let node_bytes = node_entries * 20 + self.node_objects.len() * 8;
        let abstract_bytes: usize =
            self.abstracts.iter().filter(|a| !a.is_empty()).map(|a| a.size_bytes() + 8).sum();
        node_bytes + abstract_bytes
    }

    /// Checks Lemma 1 (`O(R) = ⋃ O(R_i)`) and association consistency
    /// against a from-scratch recount. Test helper.
    pub fn validate(&self, g: &RoadNetwork, hier: &RnetHierarchy) -> Result<(), String> {
        // Recount abstract totals per Rnet.
        let mut totals = vec![0u32; hier.num_rnets()];
        for o in self.objects.values() {
            let mut r = hier.leaf_of_edge(o.edge);
            while r.is_valid() {
                totals[r.0 as usize] += 1;
                r = hier.parent(r);
            }
        }
        for (i, a) in self.abstracts.iter().enumerate() {
            if a.total() != totals[i] {
                return Err(format!("abstract R{i}: total {} != recount {}", a.total(), totals[i]));
            }
        }
        // Node associations match edge endpoints.
        for o in self.objects.values() {
            let (a, b) = g.edge(o.edge).endpoints();
            for n in [a, b] {
                let ok = self.node_objects.get(&n.0).map(|v| v.contains(&o.id)).unwrap_or(false);
                if !ok {
                    return Err(format!("{:?} missing from node {n} association", o.id));
                }
            }
        }
        // No dangling associations.
        for (n, list) in &self.node_objects {
            for id in list {
                if !self.objects.contains_key(&id.0) {
                    return Err(format!("node {n} references deleted {id:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use road_network::generator::simple;

    fn setup() -> (RoadNetwork, RnetHierarchy) {
        let g = simple::grid(8, 8, 1.0);
        let hier = RnetHierarchy::build(&g, &HierarchyConfig::default()).unwrap();
        (g, hier)
    }

    fn obj(id: u64, e: EdgeId, cat: u16) -> Object {
        Object::new(ObjectId(id), e, 0.5, CategoryId(cat))
    }

    #[test]
    fn insert_remove_roundtrip_and_lemma1() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let edges: Vec<EdgeId> = g.edge_ids().take(10).collect();
        for (i, &e) in edges.iter().enumerate() {
            ad.insert(&g, &hier, obj(i as u64, e, (i % 3) as u16)).unwrap();
        }
        assert_eq!(ad.len(), 10);
        ad.validate(&g, &hier).unwrap();
        // Level-1 abstracts must sum to the object count (Lemma 1).
        let total: u32 = hier.rnets_at_level(1).map(|r| ad.abstract_of(r).total()).sum();
        assert_eq!(total, 10);
        for i in 0..10u64 {
            let o = ad.remove(&g, &hier, ObjectId(i)).unwrap();
            assert_eq!(o.id, ObjectId(i));
        }
        assert!(ad.is_empty());
        ad.validate(&g, &hier).unwrap();
        assert!(hier.rnets_at_level(1).all(|r| ad.abstract_of(r).is_empty()));
    }

    #[test]
    fn duplicate_and_unknown_ids_error() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let e = g.edge_ids().next().unwrap();
        ad.insert(&g, &hier, obj(1, e, 0)).unwrap();
        assert!(matches!(ad.insert(&g, &hier, obj(1, e, 0)), Err(RoadError::DuplicateObject(_))));
        assert!(matches!(ad.remove(&g, &hier, ObjectId(9)), Err(RoadError::UnknownObject(_))));
    }

    #[test]
    fn bad_placements_error() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let e = g.edge_ids().next().unwrap();
        let mut o = obj(1, e, 0);
        o.fraction = 1.5;
        assert!(matches!(ad.insert(&g, &hier, o), Err(RoadError::BadPlacement(_))));
        let mut o = obj(2, e, 0);
        o.fraction = f64::NAN;
        assert!(matches!(ad.insert(&g, &hier, o), Err(RoadError::BadPlacement(_))));
        let o = obj(3, EdgeId(9999), 0);
        assert!(matches!(ad.insert(&g, &hier, o), Err(RoadError::EdgeUnavailable(_))));
    }

    #[test]
    fn node_and_edge_associations() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let e = g.edge_ids().next().unwrap();
        let (a, b) = g.edge(e).endpoints();
        ad.insert(&g, &hier, obj(1, e, 0)).unwrap();
        ad.insert(&g, &hier, obj(2, e, 1)).unwrap();
        assert_eq!(ad.objects_at_node(a).count(), 2);
        assert_eq!(ad.objects_at_node(b).count(), 2);
        assert!(ad.node_has_objects(a));
        assert_eq!(ad.objects_on_edge(e).count(), 2);
        ad.remove(&g, &hier, ObjectId(1)).unwrap();
        assert_eq!(ad.objects_at_node(a).count(), 1);
    }

    #[test]
    fn category_update_rewrites_abstracts() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let e = g.edge_ids().next().unwrap();
        ad.insert(&g, &hier, obj(1, e, 0)).unwrap();
        let leaf = hier.leaf_of_edge(e);
        assert!(ad.rnet_may_match(leaf, &ObjectFilter::Category(CategoryId(0))));
        ad.update_category(&hier, ObjectId(1), CategoryId(7)).unwrap();
        assert!(!ad.rnet_may_match(leaf, &ObjectFilter::Category(CategoryId(0))));
        assert!(ad.rnet_may_match(leaf, &ObjectFilter::Category(CategoryId(7))));
        ad.validate(&g, &hier).unwrap();
        assert_eq!(ad.matching_count(&ObjectFilter::Category(CategoryId(7))), 1);
    }

    #[test]
    fn multiple_directories_over_one_overlay() {
        // The paper's flexibility claim: different object types in
        // different directories over the same hierarchy.
        let (g, hier) = setup();
        let mut hotels = AssociationDirectory::new(&hier);
        let mut fuel = AssociationDirectory::with_kind(&hier, AbstractKind::Bloom);
        let e = g.edge_ids().next().unwrap();
        hotels.insert(&g, &hier, obj(1, e, 0)).unwrap();
        fuel.insert(&g, &hier, obj(1, e, 5)).unwrap(); // same id, no clash
        assert_eq!(hotels.len(), 1);
        assert_eq!(fuel.len(), 1);
        let leaf = hier.leaf_of_edge(e);
        assert!(fuel.rnet_may_match(leaf, &ObjectFilter::Category(CategoryId(5))));
    }

    #[test]
    fn size_model_is_monotone() {
        let (g, hier) = setup();
        let mut ad = AssociationDirectory::new(&hier);
        let s0 = ad.size_bytes();
        for (i, e) in g.edge_ids().take(20).enumerate() {
            ad.insert(&g, &hier, obj(i as u64, e, 0)).unwrap();
        }
        assert!(ad.size_bytes() > s0);
    }
}
