//! Concurrent query serving: [`QueryEngine`].
//!
//! [`RoadFramework`] queries take `&self` and the framework holds no
//! interior mutability, so one built overlay can serve any number of
//! threads at once. `QueryEngine` makes that a first-class API: it wraps
//! `Arc<RoadFramework>` + `Arc<AssociationDirectory>` behind a cheaply
//! clonable handle, pairs every serving thread with its own reusable
//! [`SearchWorkspace`], and offers a batch entry point that fans a query
//! load out over scoped threads. Single queries route through the same
//! per-thread workspace pool the framework uses, so steady-state serving
//! performs no per-query container allocations (see the
//! [`workspace`](crate::workspace) module docs).
//!
//! ```
//! use road_core::prelude::*;
//! use road_network::generator::simple;
//!
//! let net = simple::grid(8, 8, 1.0);
//! let road = RoadFramework::builder(net).fanout(4).levels(2).build().unwrap();
//! let mut pois = AssociationDirectory::new(road.hierarchy());
//! let edge = road.network().edge_ids().next().unwrap();
//! pois.insert(road.network(), road.hierarchy(), Object::new(ObjectId(1), edge, 0.5, CategoryId(0)))
//!     .unwrap();
//!
//! let engine = QueryEngine::new(road, pois);
//! let queries: Vec<KnnQuery> = (0..16).map(|n| KnnQuery::new(NodeId(n), 1)).collect();
//! let answers = engine.batch_knn(&queries, 4).unwrap();
//! assert_eq!(answers.len(), 16);
//! ```

// roadlint: serving-path

use crate::association::AssociationDirectory;
use crate::framework::RoadFramework;
use crate::search::{
    AggregateKnnQuery, KnnQuery, RangeQuery, SearchHit, SearchResult, SearchStats,
};
use crate::workspace::SearchWorkspace;
use crate::RoadError;
use road_network::{NodeId, Weight};
use std::sync::Arc;

/// A shareable, thread-safe handle over one Route Overlay and one object
/// directory. Clone it into every serving thread; all clones answer
/// against the same index.
#[derive(Clone)]
pub struct QueryEngine {
    fw: Arc<RoadFramework>,
    ad: Arc<AssociationDirectory>,
}

// Serving from many threads only works if the shared state really is
// immutable-shareable; keep that a compile-time fact, not a convention.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
    assert_send_sync::<RoadFramework>();
    assert_send_sync::<AssociationDirectory>();
};

impl QueryEngine {
    /// Wraps a framework and a directory for concurrent serving.
    pub fn new(fw: RoadFramework, ad: AssociationDirectory) -> Self {
        QueryEngine { fw: Arc::new(fw), ad: Arc::new(ad) }
    }

    /// Builds from already-shared parts (e.g. a directory shared with a
    /// maintenance pipeline).
    pub fn from_shared(fw: Arc<RoadFramework>, ad: Arc<AssociationDirectory>) -> Self {
        QueryEngine { fw, ad }
    }

    /// The wrapped framework.
    pub fn framework(&self) -> &RoadFramework {
        &self.fw
    }

    /// The wrapped directory.
    pub fn directory(&self) -> &AssociationDirectory {
        &self.ad
    }

    /// kNN through the per-thread workspace pool.
    pub fn knn(&self, query: &KnnQuery) -> Result<SearchResult, RoadError> {
        self.fw.knn(&self.ad, query)
    }

    /// Range query through the per-thread workspace pool.
    pub fn range(&self, query: &RangeQuery) -> Result<SearchResult, RoadError> {
        self.fw.range(&self.ad, query)
    }

    /// Allocation-free kNN into caller-owned scratch; the serving-loop hot
    /// path. See [`RoadFramework::knn_with`].
    pub fn knn_with(
        &self,
        query: &KnnQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        self.fw.knn_with(&self.ad, query, ws, hits)
    }

    /// Allocation-free range query into caller-owned scratch.
    pub fn range_with(
        &self,
        query: &RangeQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        self.fw.range_with(&self.ad, query, ws, hits)
    }

    /// Aggregate kNN over a query group.
    pub fn aggregate_knn(&self, query: &AggregateKnnQuery) -> Result<Vec<SearchHit>, RoadError> {
        self.fw.aggregate_knn(&self.ad, query)
    }

    /// Point-to-point network distance through the overlay.
    pub fn network_distance(&self, from: NodeId, to: NodeId) -> Result<Option<Weight>, RoadError> {
        self.fw.network_distance(from, to)
    }

    /// Evaluates a batch of kNN queries on up to `threads` scoped worker
    /// threads (each with one workspace reused across its whole share) and
    /// returns the hit lists in query order. `threads <= 1` runs inline.
    ///
    /// On failure the error is deterministic regardless of thread timing:
    /// when several queries fail, the reported error is that of the
    /// **lowest query index** — workers own contiguous in-order chunks,
    /// all of them are joined, and results are scanned in query order,
    /// never in completion order.
    pub fn batch_knn(
        &self,
        queries: &[KnnQuery],
        threads: usize,
    ) -> Result<Vec<Vec<SearchHit>>, RoadError> {
        run_batch(queries, threads, |q, ws, hits| self.knn_with(q, ws, hits))
    }

    /// Evaluates a batch of range queries; see [`QueryEngine::batch_knn`].
    pub fn batch_range(
        &self,
        queries: &[RangeQuery],
        threads: usize,
    ) -> Result<Vec<Vec<SearchHit>>, RoadError> {
        run_batch(queries, threads, |q, ws, hits| self.range_with(q, ws, hits))
    }
}

/// Fans `queries` out over up to `threads` scoped workers, each with one
/// reused [`SearchWorkspace`], and returns the hit lists in query order —
/// the batch engine behind [`QueryEngine`] and the paged engine's batch
/// API.
///
/// **Error contract:** when several queries fail, the reported error is
/// that of the **lowest query index**, independent of which worker thread
/// finishes (or fails) first. Workers own contiguous, in-order chunks and
/// stop at their first failure, so the first failing chunk's error is the
/// globally lowest-index failure; all workers are joined before any error
/// is returned, and the chunk results are then scanned in query order —
/// never in completion order.
pub(crate) fn run_batch<Q: Sync>(
    queries: &[Q],
    threads: usize,
    run: impl Fn(&Q, &mut SearchWorkspace, &mut Vec<SearchHit>) -> Result<SearchStats, RoadError> + Sync,
) -> Result<Vec<Vec<SearchHit>>, RoadError> {
    let run_chunk = |chunk: &[Q]| -> Result<Vec<Vec<SearchHit>>, RoadError> {
        let mut ws = SearchWorkspace::new();
        chunk
            .iter()
            .map(|q| {
                let mut hits = Vec::new();
                run(q, &mut ws, &mut hits)?;
                Ok(hits)
            })
            .collect()
    };
    let threads = threads.clamp(1, queries.len().max(1));
    if threads == 1 {
        return run_chunk(queries);
    }
    let chunk_len = queries.len().div_ceil(threads);
    let run_chunk = &run_chunk;
    std::thread::scope(|scope| {
        let workers: Vec<_> =
            queries.chunks(chunk_len).map(|chunk| scope.spawn(move || run_chunk(chunk))).collect();
        // Join everything first, then scan chunk results in query order:
        // the reported error must not depend on worker completion order.
        let results: Vec<Result<Vec<Vec<SearchHit>>, RoadError>> = workers
            .into_iter()
            .map(|w| {
                w.join()
                    .unwrap_or_else(|_| Err(RoadError::Internal("batch worker panicked".into())))
            })
            .collect();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in results {
            out.extend(chunk?);
        }
        Ok(out)
    })
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("framework", &*self.fw)
            .field("objects", &self.ad.len())
            .finish()
    }
}
