//! Error type for the ROAD framework.

use crate::model::ObjectId;
use road_network::{EdgeId, NetworkError, NodeId};
use road_storage::StorageError;
use std::fmt;

/// Errors produced by framework construction, queries and maintenance.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadError {
    /// An underlying network operation failed.
    Network(NetworkError),
    /// Bad framework configuration (fanout/levels).
    InvalidConfig(String),
    /// The object id is already present in the directory.
    DuplicateObject(ObjectId),
    /// No object with this id exists in the directory.
    UnknownObject(ObjectId),
    /// An object placement was invalid (dead edge, fraction out of range).
    BadPlacement(String),
    /// A query referenced a node outside the network.
    NodeOutOfBounds(NodeId),
    /// An edge operation referenced a missing or deleted edge.
    EdgeUnavailable(EdgeId),
    /// The edge still carries objects in the given directory, so it cannot
    /// be removed without orphaning them.
    EdgeHasObjects(EdgeId, usize),
    /// The paged-storage layer failed (poisoned lock, corrupt page). The
    /// serving invariant: storage failures reach the caller as this
    /// variant, never as a panic unwinding a query thread.
    Storage(StorageError),
    /// An internal invariant did not hold (e.g. a worker thread panicked
    /// mid-batch); reported instead of propagating the panic.
    Internal(String),
}

impl fmt::Display for RoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadError::Network(e) => write!(f, "network error: {e}"),
            RoadError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RoadError::DuplicateObject(o) => write!(f, "object {o:?} already exists"),
            RoadError::UnknownObject(o) => write!(f, "object {o:?} does not exist"),
            RoadError::BadPlacement(msg) => write!(f, "bad object placement: {msg}"),
            RoadError::NodeOutOfBounds(n) => write!(f, "query node {n} is out of bounds"),
            RoadError::EdgeUnavailable(e) => write!(f, "edge {e} is missing or deleted"),
            RoadError::EdgeHasObjects(e, k) => {
                write!(f, "edge {e} still carries {k} object(s); relocate them first")
            }
            RoadError::Storage(e) => write!(f, "storage error: {e}"),
            RoadError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for RoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoadError::Network(e) => Some(e),
            RoadError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for RoadError {
    fn from(e: NetworkError) -> Self {
        RoadError::Network(e)
    }
}

impl From<StorageError> for RoadError {
    fn from(e: StorageError) -> Self {
        RoadError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RoadError::Network(NetworkError::SelfLoop(NodeId(3)));
        assert!(e.to_string().contains("n3"));
        assert!(std::error::Error::source(&e).is_some());
        let e = RoadError::EdgeHasObjects(EdgeId(1), 2);
        assert!(e.to_string().contains("2 object"));
        let e = RoadError::Storage(StorageError::LockPoisoned("buffer-pool stripe"));
        assert!(e.to_string().contains("stripe"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
