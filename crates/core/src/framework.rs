//! The ROAD framework facade: construction, queries and network
//! maintenance.
//!
//! `RoadFramework` owns the road network together with its Route Overlay
//! (Rnet hierarchy + shortcut store), keeping the two consistent across
//! edge-weight changes and topology changes (Section 5.2). Association
//! Directories are intentionally *not* owned: the clean separation between
//! network and objects is the framework's core design property, letting
//! several object sets share one overlay.

use crate::arena::QueryArena;
use crate::association::AssociationDirectory;
use crate::hierarchy::{HierarchyConfig, RnetHierarchy, RnetId};
use crate::search::{
    self, KnnQuery, NoopObserver, RangeQuery, SearchHit, SearchObserver, SearchResult, SearchStats,
};
use crate::shortcut::{BuildScratch, ShortcutOptions, ShortcutStore};
use crate::workspace::SearchWorkspace;
use crate::RoadError;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastSet;
use road_network::partition::PartitionOptions;
use road_network::{EdgeId, NodeId, Point, Weight};
use std::sync::Arc;

/// Framework configuration.
#[derive(Clone, Debug, Default)]
pub struct RoadConfig {
    /// The distance metric shortcuts are built for.
    pub metric: WeightKind,
    /// Rnet hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// Shortcut construction options.
    pub shortcuts: ShortcutOptions,
}

/// Counters describing one maintenance operation (Section 5.2).
///
/// Filter-and-refresh repairs are *local*: a weight change refreshes at
/// most one Rnet per hierarchy level, so `rnets_refreshed` staying far
/// below [`RnetHierarchy::num_rnets`] is the proof that maintenance never
/// degenerates into a full rebuild. Accumulate outcomes over an update
/// stream with [`UpdateOutcome::absorb`]:
///
/// ```
/// use road_core::UpdateOutcome;
///
/// let mut total = UpdateOutcome::default();
/// total.absorb(&UpdateOutcome { rnets_refreshed: 3, rnets_changed: 1, ..Default::default() });
/// total.absorb(&UpdateOutcome { rnets_refreshed: 2, borders_promoted: 1, ..Default::default() });
/// assert_eq!(total.rnets_refreshed, 5);
/// assert_eq!(total.rnets_changed, 1);
/// assert_eq!(total.borders_promoted, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Rnets whose shortcuts were recomputed ("refreshed").
    pub rnets_refreshed: usize,
    /// Refreshed Rnets whose shortcut set actually changed.
    pub rnets_changed: usize,
    /// Nodes promoted to border nodes.
    pub borders_promoted: usize,
    /// Nodes demoted from border nodes.
    pub borders_demoted: usize,
}

impl UpdateOutcome {
    /// Adds another operation's counters into this one (the accumulation
    /// the live engine's [`stats`](crate::live::LiveStats) and the
    /// maintenance experiments report).
    pub fn absorb(&mut self, other: &UpdateOutcome) {
        self.rnets_refreshed += other.rnets_refreshed;
        self.rnets_changed += other.rnets_changed;
        self.borders_promoted += other.borders_promoted;
        self.borders_demoted += other.borders_demoted;
    }
}

/// The ROAD framework over one road network.
///
/// Internally copy-on-write: the network, hierarchy and per-Rnet shortcut
/// maps live behind [`Arc`]s, so [`Clone`] is a cheap fork (`O(#Rnets)`
/// pointer bumps) that shares every payload with the original. Maintenance
/// methods un-share lazily — the first mutation after a fork copies only
/// the component it touches (weight updates copy the network's flat edge
/// arrays and the refreshed Rnets' shortcut maps; topology changes
/// additionally copy the hierarchy) — which is what makes the live
/// engine's snapshot publication affordable under a sustained update
/// stream (see [`crate::live`]).
pub struct RoadFramework {
    g: Arc<RoadNetwork>,
    cfg: RoadConfig,
    hier: Arc<RnetHierarchy>,
    shortcuts: ShortcutStore,
    /// Pre-joined flat adjacency for the query path (see [`crate::arena`]);
    /// kept current by every maintenance operation.
    arena: Arc<QueryArena>,
    scratch: BuildScratch,
}

impl Clone for RoadFramework {
    /// Forks the framework: both copies share the network, hierarchy and
    /// all shortcut data until one of them is mutated (standard `Clone`
    /// semantics — the copies never observe each other's later changes).
    fn clone(&self) -> Self {
        RoadFramework {
            g: Arc::clone(&self.g),
            cfg: self.cfg.clone(),
            hier: Arc::clone(&self.hier),
            shortcuts: self.shortcuts.clone(),
            arena: Arc::clone(&self.arena),
            scratch: BuildScratch::default(),
        }
    }
}

impl RoadFramework {
    /// Builds the framework: partitions the network into the Rnet
    /// hierarchy and computes all shortcuts bottom-up.
    pub fn build(g: RoadNetwork, cfg: RoadConfig) -> Result<Self, RoadError> {
        let hier = RnetHierarchy::build(&g, &cfg.hierarchy)?;
        let shortcuts = ShortcutStore::build(&g, &hier, cfg.metric, &cfg.shortcuts);
        let arena = Arc::new(QueryArena::build(&g, &hier, cfg.metric));
        Ok(RoadFramework {
            g: Arc::new(g),
            cfg,
            hier: Arc::new(hier),
            shortcuts,
            arena,
            scratch: BuildScratch::default(),
        })
    }

    /// Fluent construction helper.
    pub fn builder(g: RoadNetwork) -> RoadBuilder {
        RoadBuilder { g, cfg: RoadConfig::default() }
    }

    /// Assembles a framework from pre-built parts (persistence restore and
    /// custom-partition construction); validates the hierarchy against the
    /// network.
    pub(crate) fn from_parts(
        g: RoadNetwork,
        cfg: RoadConfig,
        hier: RnetHierarchy,
        shortcuts: ShortcutStore,
    ) -> Result<Self, RoadError> {
        hier.validate(&g).map_err(RoadError::InvalidConfig)?;
        let arena = Arc::new(QueryArena::build(&g, &hier, cfg.metric));
        Ok(RoadFramework {
            g: Arc::new(g),
            cfg,
            hier: Arc::new(hier),
            shortcuts,
            arena,
            scratch: BuildScratch::default(),
        })
    }

    /// [`RoadFramework::from_parts`] over already-shared network and
    /// hierarchy handles (the page-granular image keeps serving from the
    /// same parts it hands to the framework).
    pub(crate) fn from_shared_parts(
        g: Arc<RoadNetwork>,
        cfg: RoadConfig,
        hier: Arc<RnetHierarchy>,
        shortcuts: ShortcutStore,
    ) -> Result<Self, RoadError> {
        hier.validate(&g).map_err(RoadError::InvalidConfig)?;
        let arena = Arc::new(QueryArena::build(&g, &hier, cfg.metric));
        Ok(RoadFramework { g, cfg, hier, shortcuts, arena, scratch: BuildScratch::default() })
    }

    /// Builds the framework over a caller-supplied leaf partition (e.g.
    /// administrative boundaries — the paper's "partitioning based on
    /// network semantics"). `leaf_index_of(edge)` maps every live edge to
    /// a finest-Rnet index in `0..fanout^levels`; shortcuts are then
    /// computed as usual.
    pub fn build_with_partition(
        g: RoadNetwork,
        cfg: RoadConfig,
        leaf_index_of: impl Fn(EdgeId) -> u32,
    ) -> Result<Self, RoadError> {
        let hier = RnetHierarchy::from_leaf_assignment(
            &g,
            cfg.hierarchy.fanout,
            cfg.hierarchy.levels,
            leaf_index_of,
        )?;
        let shortcuts = ShortcutStore::build(&g, &hier, cfg.metric, &cfg.shortcuts);
        let arena = Arc::new(QueryArena::build(&g, &hier, cfg.metric));
        Ok(RoadFramework {
            g: Arc::new(g),
            cfg,
            hier: Arc::new(hier),
            shortcuts,
            arena,
            scratch: BuildScratch::default(),
        })
    }

    /// Serializes the framework (network + hierarchy + shortcuts); see
    /// [`crate::persist`] for the format and rationale.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::persist::to_bytes(self)
    }

    /// Restores a framework serialized with [`RoadFramework::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RoadError> {
        crate::persist::from_bytes(bytes)
    }

    /// The pre-joined query-path adjacency arena (see [`crate::arena`]).
    #[inline]
    pub(crate) fn arena(&self) -> &QueryArena {
        &self.arena
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        &self.g
    }

    /// The Rnet hierarchy.
    pub fn hierarchy(&self) -> &RnetHierarchy {
        &self.hier
    }

    /// The shared handle to the hierarchy (the search loop clones it so a
    /// borrow of the hierarchy can outlive mutable access to the source).
    pub(crate) fn hierarchy_arc(&self) -> &Arc<RnetHierarchy> {
        &self.hier
    }

    /// The shortcut store.
    pub fn shortcuts(&self) -> &ShortcutStore {
        &self.shortcuts
    }

    /// The metric this framework's shortcuts are built for.
    pub fn metric(&self) -> WeightKind {
        self.cfg.metric
    }

    /// The configuration.
    pub fn config(&self) -> &RoadConfig {
        &self.cfg
    }

    /// Modelled Route Overlay size in bytes: per-node records (adjacency +
    /// shortcut-tree entries) plus the shortcut store — the quantity the
    /// index-size experiments charge to ROAD's network side.
    pub fn overlay_size_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for n in self.g.node_ids() {
            bytes += 16; // node header + coordinates
            bytes += 8 * self.g.degree(n); // adjacency entries
            bytes += 8 * self.hier.bordered_rnets(n).len(); // shortcut-tree entries
        }
        bytes + self.shortcuts.size_bytes()
    }

    // ------------------------------------------------------------------
    // Queries (Section 4)
    // ------------------------------------------------------------------

    /// Evaluates a kNN query against a directory.
    pub fn knn(
        &self,
        ad: &AssociationDirectory,
        query: &KnnQuery,
    ) -> Result<SearchResult, RoadError> {
        self.knn_observed(ad, query, &mut NoopObserver)
    }

    /// kNN with an I/O-accounting observer.
    pub fn knn_observed(
        &self,
        ad: &AssociationDirectory,
        query: &KnnQuery,
        observer: &mut dyn SearchObserver,
    ) -> Result<SearchResult, RoadError> {
        search::execute(
            self,
            Some(ad),
            query.node,
            &query.filter,
            search::Mode::Knn(query.k, query.max_distance),
            observer,
        )
    }

    /// kNN into caller-owned scratch: the workspace and the hit buffer are
    /// reused across calls, so a steady-state serving loop performs **zero
    /// per-query container allocations**. Returns the work counters;
    /// answers land in `hits` (cleared first). This is the hot path behind
    /// [`crate::engine::QueryEngine`].
    pub fn knn_with(
        &self,
        ad: &AssociationDirectory,
        query: &KnnQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        search::execute_into(
            self,
            Some(ad),
            query.node,
            &query.filter,
            search::Mode::Knn(query.k, query.max_distance),
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Range query into caller-owned scratch; see [`RoadFramework::knn_with`].
    pub fn range_with(
        &self,
        ad: &AssociationDirectory,
        query: &RangeQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        search::execute_into(
            self,
            Some(ad),
            query.node,
            &query.filter,
            search::Mode::Range(query.radius),
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Evaluates a range query against a directory.
    pub fn range(
        &self,
        ad: &AssociationDirectory,
        query: &RangeQuery,
    ) -> Result<SearchResult, RoadError> {
        self.range_observed(ad, query, &mut NoopObserver)
    }

    /// Range query with an I/O-accounting observer.
    pub fn range_observed(
        &self,
        ad: &AssociationDirectory,
        query: &RangeQuery,
        observer: &mut dyn SearchObserver,
    ) -> Result<SearchResult, RoadError> {
        search::execute(
            self,
            Some(ad),
            query.node,
            &query.filter,
            search::Mode::Range(query.radius),
            observer,
        )
    }

    /// Aggregate kNN over a query group (ref \[19\]'s ANN queries on the
    /// ROAD overlay): find the k objects minimising the aggregate of their
    /// network distances from every group member. Objects unreachable from
    /// *any* group member are excluded (their aggregate is undefined).
    pub fn aggregate_knn(
        &self,
        ad: &AssociationDirectory,
        query: &crate::search::AggregateKnnQuery,
    ) -> Result<Vec<SearchHit>, RoadError> {
        Ok(self.aggregate_knn_with_stats(ad, query)?.0)
    }

    /// [`RoadFramework::aggregate_knn`] plus the summed work counters of
    /// every expansion it ran (tests use them to check that the bounded
    /// expansions actually prune).
    ///
    /// Evaluation strategy: the first member runs one unbounded discovery
    /// expansion (every answer must be reachable from it). Each later
    /// member's expansion is then bounded by an *upper bound on the k-th
    /// best aggregate*, derived from the triangle inequality on network
    /// distance: `d_j(o) <= d_0(o) + ||q_0, q_j||`, so
    /// `combine_j(d_0(o) + ||q_0, q_j||)` over-estimates any object's
    /// final aggregate, and the k-th smallest over-estimate bounds the
    /// k-th best answer. Pruning against that bound is sound for both
    /// `Sum` and `Max` because every per-member distance lower-bounds the
    /// combined aggregate — an object outside the bound for *any* member
    /// cannot make the top k. (The previous implementation ran an
    /// unbounded `Range(∞)` expansion per member, exhausting the whole
    /// component each time.)
    pub fn aggregate_knn_with_stats(
        &self,
        ad: &AssociationDirectory,
        query: &crate::search::AggregateKnnQuery,
    ) -> Result<(Vec<SearchHit>, SearchStats), RoadError> {
        // The algorithm lives in `search::aggregate_knn_backend`, shared
        // verbatim with the disk-resident engine
        // (`PagedEngine::aggregate_knn`), so the two cannot drift apart.
        struct MemoryBackend<'a> {
            fw: &'a RoadFramework,
            ad: &'a AssociationDirectory,
        }
        impl search::AggregateBackend for MemoryBackend<'_> {
            fn expand(
                &mut self,
                node: NodeId,
                filter: &crate::model::ObjectFilter,
                mode: search::Mode,
                with_directory: bool,
            ) -> Result<SearchResult, RoadError> {
                search::execute(
                    self.fw,
                    with_directory.then_some(self.ad),
                    node,
                    filter,
                    mode,
                    &mut NoopObserver,
                )
            }
        }
        search::aggregate_knn_backend(&mut MemoryBackend { fw: self, ad }, query)
    }

    /// Point-to-point network distance through the overlay: with no
    /// objects to find, every Rnet not containing the target is bypassed
    /// via shortcuts, so this is hierarchical routing in the style of
    /// HEPV/HiTi — a capability ROAD gets for free.
    pub fn network_distance(&self, from: NodeId, to: NodeId) -> Result<Option<Weight>, RoadError> {
        let res = search::execute(
            self,
            None,
            from,
            &crate::model::ObjectFilter::Any,
            search::Mode::ToNode(to),
            &mut NoopObserver,
        )?;
        Ok(res.distance_to_node(to))
    }

    /// Point-to-point shortest path through the overlay, fully expanded to
    /// physical edges.
    pub fn shortest_path(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<Option<road_network::Path>, RoadError> {
        let res = search::execute(
            self,
            None,
            from,
            &crate::model::ObjectFilter::Any,
            search::Mode::ToNode(to),
            &mut NoopObserver,
        )?;
        Ok(res.path_to_node(self, to))
    }

    // ------------------------------------------------------------------
    // Maintenance (Section 5.2)
    // ------------------------------------------------------------------

    /// Changes the (framework-metric) weight of an edge and repairs the
    /// affected shortcuts by filter-and-refresh: the enclosing finest Rnet
    /// is recomputed, and the update propagates to the parent level only
    /// while shortcut sets keep changing (Lemma 2).
    pub fn set_edge_weight(
        &mut self,
        e: EdgeId,
        weight: Weight,
    ) -> Result<UpdateOutcome, RoadError> {
        self.set_edge_weights(&[(e, weight)])
    }

    /// Applies a batch of weight updates and repairs every affected Rnet
    /// once, level by level.  Same-level Rnets are independent (Lemma 2:
    /// a level reads only the level below), so each level's refreshes fan
    /// out across [`ShortcutOptions::threads`] workers; a parent joins the
    /// next frontier only while its children's shortcut sets keep changing,
    /// exactly the per-edge early-break of [`RoadFramework::set_edge_weight`].
    ///
    /// The whole batch is validated before any weight is written: one bad
    /// edge rejects the batch with the network untouched.  Updates that
    /// leave a weight unchanged are skipped (they must not un-share a
    /// forked network); duplicate edges apply in order, last one winning.
    pub fn set_edge_weights(
        &mut self,
        updates: &[(EdgeId, Weight)],
    ) -> Result<UpdateOutcome, RoadError> {
        let mut outcome = UpdateOutcome::default();
        for &(e, _) in updates {
            if e.index() >= self.g.edge_slots() {
                return Err(road_network::error::NetworkError::EdgeOutOfBounds(e).into());
            }
            if self.g.edge(e).is_deleted() {
                return Err(road_network::error::NetworkError::EdgeDeleted(e).into());
            }
        }
        let mut frontier: Vec<RnetId> = Vec::new();
        for &(e, weight) in updates {
            if self.g.weight(e, self.cfg.metric) == weight {
                continue;
            }
            Arc::make_mut(&mut self.g).set_weight(e, self.cfg.metric, weight)?;
            Arc::make_mut(&mut self.arena).patch_weight(&self.g, e, weight);
            let leaf = self.hier.leaf_of_edge(e);
            if leaf.is_valid() {
                frontier.push(leaf);
            }
        }
        frontier.sort_by_key(|r| r.0);
        frontier.dedup();
        // Leaves all sit at the finest level and parents of a level share
        // the next-coarser one, so each frontier is a single level and the
        // loop walks the hierarchy finest-first.
        while !frontier.is_empty() {
            outcome.rnets_refreshed += frontier.len();
            let changed = self.shortcuts.refresh_rnets(
                &self.g,
                &self.hier,
                self.cfg.metric,
                &frontier,
                &self.cfg.shortcuts,
                &mut self.scratch,
            );
            let mut next: Vec<RnetId> = frontier
                .iter()
                .zip(&changed)
                .filter(|&(_, &c)| c)
                .map(|(&r, _)| self.hier.parent(r))
                .filter(|p| p.is_valid())
                .collect();
            outcome.rnets_changed += changed.iter().filter(|&&c| c).count();
            next.sort_by_key(|r| r.0);
            next.dedup();
            frontier = next;
        }
        Ok(outcome)
    }

    /// Adds a new intersection (used when road construction introduces new
    /// nodes); connect it with [`RoadFramework::add_edge`].
    pub fn add_node(&mut self, at: Point) -> NodeId {
        let n = Arc::make_mut(&mut self.g).add_node(at);
        // The arena's offset table must cover the new node id; an isolated
        // node has no arcs, so a rebuild here is cheap and keeps `arcs`
        // in-range without special cases.
        self.arena = Arc::new(QueryArena::build(&self.g, &self.hier, self.cfg.metric));
        n
    }

    /// Adds a road segment (Section 5.2.2, "addition of a new edge").
    ///
    /// The edge joins the finest Rnet of one of its endpoints' existing
    /// edges; endpoints whose incident edges now span several Rnets are
    /// promoted to border nodes and all affected Rnets' shortcuts are
    /// refreshed.
    ///
    /// Fallback: when *both* endpoints are isolated (no incident edges
    /// anywhere), no Rnet is implied by the topology, so the edge is
    /// hosted in the finest Rnet geometrically nearest the endpoints —
    /// the leaf containing the edge endpoint closest to the new segment's
    /// midpoint. Only a network with no edges at all falls back to the
    /// first leaf.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        weights: (Weight, Weight, Weight),
    ) -> Result<(EdgeId, UpdateOutcome), RoadError> {
        // Choose the host leaf Rnet before mutating anything: prefer a leaf
        // shared by both endpoints (Case 1), then a's side, then b's
        // (Case 2 promotes the far endpoint to a border node).
        let leaf_candidates = |n: NodeId| -> Vec<RnetId> {
            self.g
                .neighbors(n)
                .map(|(e, _)| self.hier.leaf_of_edge(e))
                .filter(|r| r.is_valid())
                .collect()
        };
        let leaves_a = leaf_candidates(a);
        let leaves_b = leaf_candidates(b);
        let leaf = leaves_a
            .iter()
            .find(|r| leaves_b.contains(r))
            .or(leaves_a.first())
            .or(leaves_b.first())
            .copied()
            .unwrap_or_else(|| self.nearest_leaf_rnet(a, b));
        let e = Arc::make_mut(&mut self.g).add_edge(a, b, weights.0, weights.1, weights.2)?;
        Arc::make_mut(&mut self.hier).assign_edge(e, leaf);
        Ok((e, self.repair_after_topology_change(&[a, b], leaf)))
    }

    /// The finest Rnet whose edges come geometrically closest to the
    /// midpoint of `a` and `b` — the host for an edge between two isolated
    /// nodes, where no existing edge implies a leaf. Falls back to the
    /// first leaf only when every leaf is empty.
    fn nearest_leaf_rnet(&self, a: NodeId, b: NodeId) -> RnetId {
        let (pa, pb) = (self.g.coord(a), self.g.coord(b));
        let mid = Point::new((pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0);
        let Some(first) = self.hier.rnets_at_level(self.hier.levels()).next() else {
            // A hierarchy with no leaves is degenerate; nothing to pick.
            return RnetId(0);
        };
        let mut best: (f64, RnetId) = (f64::INFINITY, first);
        for r in self.hier.rnets_at_level(self.hier.levels()) {
            for &e in self.hier.leaf_edge_list(r) {
                let (u, v) = self.g.edge(e).endpoints();
                for n in [u, v] {
                    let d = mid.distance(self.g.coord(n));
                    if d < best.0 {
                        best = (d, r);
                    }
                }
            }
        }
        best.1
    }

    /// Removes a road segment (Section 5.2.2, "deletion of an existing
    /// edge"). Fails if any of the given directories still has objects on
    /// the edge (they would silently become unreachable).
    pub fn remove_edge(
        &mut self,
        e: EdgeId,
        directories: &[&AssociationDirectory],
    ) -> Result<UpdateOutcome, RoadError> {
        for ad in directories {
            let count = ad.objects_on_edge(e).count();
            if count > 0 {
                return Err(RoadError::EdgeHasObjects(e, count));
            }
        }
        if e.index() >= self.g.edge_slots() || self.g.edge(e).is_deleted() {
            return Err(RoadError::EdgeUnavailable(e));
        }
        let (a, b) = self.g.edge(e).endpoints();
        let leaf = self.hier.leaf_of_edge(e);
        Arc::make_mut(&mut self.g).remove_edge(e)?;
        Arc::make_mut(&mut self.hier).unassign_edge(e);
        Ok(self.repair_after_topology_change(&[a, b], leaf))
    }

    /// After a topology change touching `nodes` and leaf Rnet `leaf`:
    /// refresh border bookkeeping, then recompute shortcuts for the
    /// ancestor closure of every affected Rnet, finest level first.
    fn repair_after_topology_change(&mut self, nodes: &[NodeId], leaf: RnetId) -> UpdateOutcome {
        fn add_chain(hier: &RnetHierarchy, mut r: RnetId, set: &mut FastSet<u32>) {
            while r.is_valid() {
                set.insert(r.0);
                r = hier.parent(r);
            }
        }
        let mut outcome = UpdateOutcome::default();
        let mut affected: FastSet<u32> = FastSet::default();
        // Topology changed: re-join the query arena (edge set and leaf
        // assignments moved). O(V + E), dwarfed by the shortcut refreshes
        // below.
        self.arena = Arc::new(QueryArena::build(&self.g, &self.hier, self.cfg.metric));
        // Border bookkeeping mutates the hierarchy; un-share it once here
        // (a no-op unless a snapshot fork still references it).
        let hier = Arc::make_mut(&mut self.hier);
        if leaf.is_valid() {
            add_chain(hier, leaf, &mut affected);
        }
        for &n in nodes {
            let (gained, lost) = hier.refresh_node_borders(&self.g, n);
            outcome.borders_promoted += usize::from(!gained.is_empty());
            outcome.borders_demoted += usize::from(!lost.is_empty());
            for r in gained.into_iter().chain(lost) {
                add_chain(hier, r, &mut affected);
            }
            // Every Rnet the node still borders may gain/lose shortcuts
            // through the changed edge set.
            for &r in hier.bordered_rnets(n) {
                add_chain(hier, r, &mut affected);
            }
        }
        // Refresh finest-first so parents see up-to-date child shortcuts;
        // the id tiebreak keeps the commit order (and thus the store's
        // byte layout) independent of hash-set iteration order.
        // `refresh_rnets` fans same-level Rnets out across workers.
        let mut order: Vec<RnetId> = affected.iter().map(|&r| RnetId(r)).collect();
        order.sort_by_key(|&r| (std::cmp::Reverse(self.hier.level_of(r)), r.0));
        outcome.rnets_refreshed += order.len();
        let changed = self.shortcuts.refresh_rnets(
            &self.g,
            &self.hier,
            self.cfg.metric,
            &order,
            &self.cfg.shortcuts,
            &mut self.scratch,
        );
        outcome.rnets_changed += changed.iter().filter(|&&c| c).count();
        outcome
    }

    /// Full consistency check against fresh rebuilds (tests only — this is
    /// as expensive as constructing the framework).
    pub fn verify(&self) -> Result<(), String> {
        self.hier.validate(&self.g)?;
        self.shortcuts.verify_against_rebuild(
            &self.g,
            &self.hier,
            self.cfg.metric,
            &self.cfg.shortcuts,
        )
    }
}

impl std::fmt::Debug for RoadFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoadFramework")
            .field("nodes", &self.g.num_nodes())
            .field("edges", &self.g.num_edges())
            .field("levels", &self.hier.levels())
            .field("fanout", &self.hier.fanout())
            .field("shortcuts", &self.shortcuts.num_shortcuts())
            .finish()
    }
}

/// Fluent builder returned by [`RoadFramework::builder`].
pub struct RoadBuilder {
    g: RoadNetwork,
    cfg: RoadConfig,
}

impl RoadBuilder {
    /// Sets the partition fanout `p` (power of two; paper default 4).
    pub fn fanout(mut self, p: usize) -> Self {
        self.cfg.hierarchy.fanout = p;
        self
    }

    /// Sets the number of hierarchy levels `l`.
    pub fn levels(mut self, l: u32) -> Self {
        self.cfg.hierarchy.levels = l;
        self
    }

    /// Sets the distance metric.
    pub fn metric(mut self, kind: WeightKind) -> Self {
        self.cfg.metric = kind;
        self
    }

    /// Enables or disables Lemma-4 shortcut pruning.
    pub fn prune_transitive_shortcuts(mut self, on: bool) -> Self {
        self.cfg.shortcuts.prune_transitive = on;
        self
    }

    /// Sets the worker-thread count for shortcut construction and
    /// multi-Rnet repair (`0` = all hardware threads, `1` = inline). A
    /// pure speed knob: it never changes a single output byte.
    pub fn shortcut_threads(mut self, threads: usize) -> Self {
        self.cfg.shortcuts.threads = threads;
        self
    }

    /// Overrides partitioner tuning.
    pub fn partition_options(mut self, opts: PartitionOptions) -> Self {
        self.cfg.hierarchy.partition = opts;
        self
    }

    /// Builds the framework.
    pub fn build(self) -> Result<RoadFramework, RoadError> {
        RoadFramework::build(self.g, self.cfg)
    }
}
