//! The Rnet hierarchy (Definitions 1 and 4, Section 3.3).
//!
//! The whole network (the implicit level-0 Rnet) is partitioned into `p`
//! Rnets, each recursively partitioned into `p` children, for `l` levels.
//! Edges belong to exactly one Rnet per level (Definition 4 condition 1);
//! nodes incident to edges of two different Rnets at some level are the
//! *border nodes* of those Rnets — the only entrances and exits a traversal
//! can use.
//!
//! We materialise edge membership only at the finest level: the Rnet ids
//! are numbered so a leaf's ancestor at any level is integer arithmetic
//! (`index / p^(l - level)`), which is also what makes the Route Overlay's
//! "flattened" storage possible. Border-node sets are maintained per Rnet,
//! and per node we keep the list of Rnets it borders ordered by level —
//! exactly the *shortcut tree* shape of Figure 6.

use road_network::graph::RoadNetwork;
use road_network::hash::{FastMap, FastSet};
use road_network::partition::{partition_edges, PartitionOptions};
use road_network::{EdgeId, NodeId};
use std::fmt;

/// Identifier of an Rnet in the hierarchy (level-order numbering).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RnetId(pub u32);

impl RnetId {
    /// Sentinel for "no Rnet".
    pub const NONE: RnetId = RnetId(u32::MAX);

    /// `true` unless this is the sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "R{}", self.0)
        } else {
            write!(f, "R<none>")
        }
    }
}

/// Configuration of the hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Partition fanout `p` (a power of two; the paper uses 4).
    pub fanout: usize,
    /// Number of levels `l` (the paper uses 4 for CA, 8 for NA/SF).
    pub levels: u32,
    /// Partitioner tuning.
    pub partition: PartitionOptions,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig { fanout: 4, levels: 4, partition: PartitionOptions::default() }
    }
}

/// The Rnet hierarchy over a road network.
///
/// `Clone` is a deep copy; the framework only pays it on the first
/// *topology* change after a snapshot fork (weight updates never touch
/// the hierarchy), via [`std::sync::Arc::make_mut`].
#[derive(Clone)]
pub struct RnetHierarchy {
    fanout: u32,
    levels: u32,
    /// `level_offsets[lv - 1]` = id of the first Rnet at level `lv`;
    /// a trailing entry holds the total count.
    level_offsets: Vec<u32>,
    /// Edge lists of the finest-level Rnets, indexed by leaf *index*.
    leaf_edges: Vec<Vec<EdgeId>>,
    /// Finest Rnet of each edge slot (NONE for deleted edges).
    leaf_of_edge: Vec<RnetId>,
    /// Border nodes per Rnet id.
    borders: Vec<Vec<NodeId>>,
    /// For each border node: the Rnets it borders, sorted by level asc.
    node_rnets: FastMap<u32, Vec<RnetId>>,
}

impl RnetHierarchy {
    /// Builds the hierarchy by recursive geometric + KL partitioning.
    pub fn build(g: &RoadNetwork, cfg: &HierarchyConfig) -> Result<Self, crate::RoadError> {
        if !cfg.fanout.is_power_of_two() || cfg.fanout < 2 {
            return Err(crate::RoadError::InvalidConfig(format!(
                "fanout must be a power of two >= 2, got {}",
                cfg.fanout
            )));
        }
        if cfg.levels == 0 || cfg.levels > 12 {
            return Err(crate::RoadError::InvalidConfig(format!(
                "levels must be in [1, 12], got {}",
                cfg.levels
            )));
        }
        let p = cfg.fanout as u32;
        let l = cfg.levels;

        // Level offsets: level lv has p^lv Rnets.
        let mut level_offsets = Vec::with_capacity(l as usize + 1);
        let mut acc = 0u64;
        for lv in 1..=l {
            level_offsets.push(acc as u32);
            acc += (p as u64).pow(lv);
            if acc > u32::MAX as u64 {
                return Err(crate::RoadError::InvalidConfig(format!(
                    "hierarchy too large: {acc} Rnets"
                )));
            }
        }
        level_offsets.push(acc as u32);

        // Recursive edge partitioning; group order defines child indexes.
        let mut groups: Vec<Vec<EdgeId>> = vec![g.edge_ids().collect()];
        for _lv in 1..=l {
            let mut next = Vec::with_capacity(groups.len() * cfg.fanout);
            for group in &groups {
                let assignment = partition_edges(g, group, cfg.fanout, &cfg.partition);
                let mut parts: Vec<Vec<EdgeId>> = vec![Vec::new(); cfg.fanout];
                for (i, &e) in group.iter().enumerate() {
                    parts[assignment[i] as usize].push(e);
                }
                next.extend(parts);
            }
            groups = next;
        }
        let leaf_edges = groups;
        debug_assert_eq!(leaf_edges.len() as u64, (p as u64).pow(l));

        let leaf_base = level_offsets[l as usize - 1];
        let mut leaf_of_edge = vec![RnetId::NONE; g.edge_slots()];
        for (leaf_idx, edges) in leaf_edges.iter().enumerate() {
            for &e in edges {
                leaf_of_edge[e.index()] = RnetId(leaf_base + leaf_idx as u32);
            }
        }

        let mut hier = RnetHierarchy {
            fanout: p,
            levels: l,
            level_offsets,
            leaf_edges,
            leaf_of_edge,
            borders: vec![Vec::new(); acc as usize],
            node_rnets: FastMap::default(),
        };
        for n in g.node_ids() {
            hier.install_node_borders(g, n);
        }
        Ok(hier)
    }

    /// Builds a hierarchy from an *explicit* leaf assignment instead of the
    /// built-in partitioner: `leaf_index_of(edge)` gives each live edge's
    /// finest-Rnet index in `0..fanout^levels`.
    ///
    /// This enables the paper's "partitioning based on network semantics"
    /// (country → state → county → township) and is also how a persisted
    /// framework restores its hierarchy without re-partitioning.
    pub fn from_leaf_assignment(
        g: &RoadNetwork,
        fanout: usize,
        levels: u32,
        leaf_index_of: impl Fn(EdgeId) -> u32,
    ) -> Result<Self, crate::RoadError> {
        if !fanout.is_power_of_two() || fanout < 2 {
            return Err(crate::RoadError::InvalidConfig(format!(
                "fanout must be a power of two >= 2, got {fanout}"
            )));
        }
        if levels == 0 || levels > 12 {
            return Err(crate::RoadError::InvalidConfig(format!(
                "levels must be in [1, 12], got {levels}"
            )));
        }
        let p = fanout as u32;
        let mut level_offsets = Vec::with_capacity(levels as usize + 1);
        let mut acc = 0u64;
        for lv in 1..=levels {
            level_offsets.push(acc as u32);
            acc += (p as u64).pow(lv);
            if acc > u32::MAX as u64 {
                return Err(crate::RoadError::InvalidConfig(format!(
                    "hierarchy too large: {acc} Rnets"
                )));
            }
        }
        level_offsets.push(acc as u32);
        let num_leaves = (p as u64).pow(levels) as usize;
        let mut leaf_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); num_leaves];
        let mut leaf_of_edge = vec![RnetId::NONE; g.edge_slots()];
        let leaf_base = level_offsets[levels as usize - 1];
        for e in g.edge_ids() {
            let idx = leaf_index_of(e);
            if idx as usize >= num_leaves {
                return Err(crate::RoadError::InvalidConfig(format!(
                    "edge {e} assigned to leaf {idx}, but only {num_leaves} leaves exist"
                )));
            }
            leaf_edges[idx as usize].push(e);
            leaf_of_edge[e.index()] = RnetId(leaf_base + idx);
        }
        let mut hier = RnetHierarchy {
            fanout: p,
            levels,
            level_offsets,
            leaf_edges,
            leaf_of_edge,
            borders: vec![Vec::new(); acc as usize],
            node_rnets: FastMap::default(),
        };
        for n in g.node_ids() {
            hier.install_node_borders(g, n);
        }
        Ok(hier)
    }

    /// Leaf index (within the finest level) of a live edge; used by
    /// persistence to round-trip the assignment.
    pub fn leaf_index_of_edge(&self, e: EdgeId) -> Option<u32> {
        let leaf = self.leaf_of_edge(e);
        if leaf.is_valid() {
            Some(leaf.0 - self.level_offsets[self.levels as usize - 1])
        } else {
            None
        }
    }

    /// Partition fanout `p`.
    pub fn fanout(&self) -> usize {
        self.fanout as usize
    }

    /// Number of levels `l`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of Rnets across all levels.
    pub fn num_rnets(&self) -> usize {
        self.level_offsets.last().copied().unwrap_or(0) as usize
    }

    /// All Rnet ids at `level` (1-based).
    pub fn rnets_at_level(&self, level: u32) -> impl Iterator<Item = RnetId> {
        assert!(level >= 1 && level <= self.levels);
        let lo = self.level_offsets[level as usize - 1];
        let hi = self.level_offsets[level as usize];
        (lo..hi).map(RnetId)
    }

    /// The level (1-based) of an Rnet.
    pub fn level_of(&self, r: RnetId) -> u32 {
        debug_assert!(r.is_valid());
        match self.level_offsets.binary_search(&r.0) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// Index of `r` within its level.
    fn index_in_level(&self, r: RnetId) -> u32 {
        r.0 - self.level_offsets[self.level_of(r) as usize - 1]
    }

    /// The parent Rnet (NONE for level-1 Rnets).
    pub fn parent(&self, r: RnetId) -> RnetId {
        let lv = self.level_of(r);
        if lv <= 1 {
            return RnetId::NONE;
        }
        let idx = self.index_in_level(r) / self.fanout;
        RnetId(self.level_offsets[lv as usize - 2] + idx)
    }

    /// Child Rnets (empty for finest-level Rnets).
    pub fn children(&self, r: RnetId) -> Vec<RnetId> {
        let lv = self.level_of(r);
        if lv >= self.levels {
            return Vec::new();
        }
        let idx = self.index_in_level(r);
        let base = self.level_offsets[lv as usize] + idx * self.fanout;
        (base..base + self.fanout).map(RnetId).collect()
    }

    /// `true` for finest-level Rnets.
    pub fn is_leaf(&self, r: RnetId) -> bool {
        self.level_of(r) == self.levels
    }

    /// The finest Rnet an edge belongs to.
    pub fn leaf_of_edge(&self, e: EdgeId) -> RnetId {
        self.leaf_of_edge.get(e.index()).copied().unwrap_or(RnetId::NONE)
    }

    /// The Rnet containing `e` at the given level.
    pub fn rnet_of_edge_at(&self, e: EdgeId, level: u32) -> RnetId {
        let leaf = self.leaf_of_edge(e);
        if !leaf.is_valid() {
            return RnetId::NONE;
        }
        self.ancestor_at(leaf, level)
    }

    /// Ancestor of `r` at `level` (≤ its own level).
    pub fn ancestor_at(&self, r: RnetId, level: u32) -> RnetId {
        let lv = self.level_of(r);
        assert!(level >= 1 && level <= lv);
        let idx = self.index_in_level(r) / self.fanout.pow(lv - level);
        RnetId(self.level_offsets[level as usize - 1] + idx)
    }

    /// Edges of a finest-level Rnet.
    pub fn leaf_edge_list(&self, r: RnetId) -> &[EdgeId] {
        debug_assert!(self.is_leaf(r));
        let idx = self.index_in_level(r) as usize;
        &self.leaf_edges[idx]
    }

    /// Border nodes of an Rnet.
    pub fn borders(&self, r: RnetId) -> &[NodeId] {
        &self.borders[r.index()]
    }

    /// The Rnets `n` borders, **sorted by level ascending** (the shape of
    /// the node's shortcut tree); empty for interior nodes.
    ///
    /// The ordering is a load-bearing invariant, not a convenience:
    /// `ChoosePath` seeds its top-down descent from the *first* entry's
    /// level, so a list not led by the coarsest level would silently skip
    /// entire subtrees. [`RnetHierarchy::validate`] checks it for every
    /// node; here it is asserted in debug builds on every access.
    pub fn bordered_rnets(&self, n: NodeId) -> &[RnetId] {
        let rnets = self.node_rnets.get(&n.0).map(Vec::as_slice).unwrap_or(&[]);
        debug_assert!(
            rnets.windows(2).all(|w| self.level_of(w[0]) <= self.level_of(w[1])),
            "bordered_rnets({n}) not sorted by level ascending: {rnets:?}"
        );
        rnets
    }

    /// `true` if `n` is a border node of `r`.
    pub fn is_border_of(&self, n: NodeId, r: RnetId) -> bool {
        self.bordered_rnets(n).contains(&r)
    }

    /// The coarsest level at which `n` is a border node (`None` = interior).
    pub fn border_level(&self, n: NodeId) -> Option<u32> {
        self.bordered_rnets(n).first().map(|&r| self.level_of(r))
    }

    /// Distinct Rnets at `level` containing edges incident to `n`.
    pub fn node_rnets_at_level(&self, g: &RoadNetwork, n: NodeId, level: u32) -> Vec<RnetId> {
        let mut out = Vec::new();
        for (e, _) in g.neighbors(n) {
            let r = self.rnet_of_edge_at(e, level);
            if r.is_valid() && !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// Computes the Rnets `n` should border from its current incident
    /// edges: for each level from the coarsest where its edges span two
    /// Rnets down to the finest, every Rnet containing one of its edges.
    fn compute_node_borders(&self, g: &RoadNetwork, n: NodeId) -> Vec<RnetId> {
        // Distinct leaves of incident edges.
        let mut leaves: Vec<u32> = Vec::new();
        for (e, _) in g.neighbors(n) {
            let r = self.leaf_of_edge(e);
            if r.is_valid() {
                let idx = r.0 - self.level_offsets[self.levels as usize - 1];
                if !leaves.contains(&idx) {
                    leaves.push(idx);
                }
            }
        }
        if leaves.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for lv in 1..=self.levels {
            let shift = self.fanout.pow(self.levels - lv);
            let mut at_level: Vec<u32> = leaves.iter().map(|&i| i / shift).collect();
            at_level.sort_unstable();
            at_level.dedup();
            if at_level.len() < 2 {
                continue; // not yet a border at this coarse level
            }
            let base = self.level_offsets[lv as usize - 1];
            out.extend(at_level.into_iter().map(|i| RnetId(base + i)));
        }
        out
    }

    fn install_node_borders(&mut self, g: &RoadNetwork, n: NodeId) {
        let rnets = self.compute_node_borders(g, n);
        if rnets.is_empty() {
            return;
        }
        for &r in &rnets {
            self.borders[r.index()].push(n);
        }
        self.node_rnets.insert(n.0, rnets);
    }

    // -----------------------------------------------------------------
    // Maintenance hooks (Section 5.2): the framework mutates edge
    // membership and refreshes border bookkeeping through these.
    // -----------------------------------------------------------------

    /// Registers a new edge slot as belonging to leaf Rnet `leaf`.
    pub(crate) fn assign_edge(&mut self, e: EdgeId, leaf: RnetId) {
        debug_assert!(self.is_leaf(leaf));
        if e.index() >= self.leaf_of_edge.len() {
            self.leaf_of_edge.resize(e.index() + 1, RnetId::NONE);
        }
        debug_assert!(!self.leaf_of_edge[e.index()].is_valid(), "edge already assigned");
        self.leaf_of_edge[e.index()] = leaf;
        let idx = self.index_in_level(leaf) as usize;
        self.leaf_edges[idx].push(e);
    }

    /// Unregisters a deleted edge from its leaf Rnet.
    pub(crate) fn unassign_edge(&mut self, e: EdgeId) {
        let leaf = self.leaf_of_edge[e.index()];
        if !leaf.is_valid() {
            return;
        }
        self.leaf_of_edge[e.index()] = RnetId::NONE;
        let idx = self.index_in_level(leaf) as usize;
        self.leaf_edges[idx].retain(|&x| x != e);
    }

    /// Recomputes which Rnets `n` borders after its incident edges changed.
    /// Returns `(gained, lost)` Rnet lists (promotion / demotion).
    pub(crate) fn refresh_node_borders(
        &mut self,
        g: &RoadNetwork,
        n: NodeId,
    ) -> (Vec<RnetId>, Vec<RnetId>) {
        let new = self.compute_node_borders(g, n);
        let old = self.node_rnets.get(&n.0).cloned().unwrap_or_default();
        let gained: Vec<RnetId> = new.iter().copied().filter(|r| !old.contains(r)).collect();
        let lost: Vec<RnetId> = old.iter().copied().filter(|r| !new.contains(r)).collect();
        for &r in &lost {
            self.borders[r.index()].retain(|&m| m != n);
        }
        for &r in &gained {
            self.borders[r.index()].push(n);
        }
        if new.is_empty() {
            self.node_rnets.remove(&n.0);
        } else {
            self.node_rnets.insert(n.0, new);
        }
        (gained, lost)
    }

    /// Checks Definition 4 and the border-node derivation. Test helper.
    pub fn validate(&self, g: &RoadNetwork) -> Result<(), String> {
        // 1. Every live edge belongs to exactly one leaf Rnet; leaf lists
        //    partition the live edges.
        let mut seen: FastSet<u32> = FastSet::default();
        for edges in &self.leaf_edges {
            for &e in edges {
                if g.edge(e).is_deleted() {
                    return Err(format!("leaf list holds deleted edge {e}"));
                }
                if !seen.insert(e.0) {
                    return Err(format!("edge {e} in two leaf Rnets"));
                }
            }
        }
        for e in g.edge_ids() {
            if !seen.contains(&e.0) {
                return Err(format!("edge {e} not assigned to any leaf Rnet"));
            }
            if !self.leaf_of_edge(e).is_valid() {
                return Err(format!("edge {e} has no leaf pointer"));
            }
        }
        // 2. leaf_of_edge agrees with leaf lists.
        let leaf_base = self.level_offsets[self.levels as usize - 1];
        for (idx, edges) in self.leaf_edges.iter().enumerate() {
            let id = RnetId(leaf_base + idx as u32);
            for &e in edges {
                if self.leaf_of_edge(e) != id {
                    return Err(format!("edge {e} leaf pointer mismatch"));
                }
            }
        }
        // 3. Border derivation matches Definition 1/4 at every level.
        for n in g.node_ids() {
            let expect = self.compute_node_borders(g, n);
            let got = self.bordered_rnets(n);
            if got != expect.as_slice() {
                return Err(format!("node {n} border list mismatch: {got:?} vs {expect:?}"));
            }
            // The list must be level-ascending — ChoosePath seeds its
            // descent from the first entry's (topmost) level and would
            // skip subtrees otherwise.
            let levels: Vec<u32> = got.iter().map(|&r| self.level_of(r)).collect();
            if !levels.windows(2).all(|w| w[0] <= w[1]) {
                return Err(format!(
                    "node {n} border list not level-ascending: {got:?} (levels {levels:?})"
                ));
            }
            for &r in got {
                if !self.borders(r).contains(&n) {
                    return Err(format!("border list of {r:?} is missing {n}"));
                }
            }
        }
        // 4. Rnet border lists contain only genuine borders.
        for (ri, list) in self.borders.iter().enumerate() {
            for &n in list {
                if !self.bordered_rnets(n).contains(&RnetId(ri as u32)) {
                    return Err(format!("{n} listed as border of R{ri} but does not border it"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::generator::simple;

    fn build_grid(w: usize, h: usize, fanout: usize, levels: u32) -> (RoadNetwork, RnetHierarchy) {
        let g = simple::grid(w, h, 1.0);
        let cfg = HierarchyConfig { fanout, levels, partition: PartitionOptions::default() };
        let hier = RnetHierarchy::build(&g, &cfg).unwrap();
        (g, hier)
    }

    #[test]
    fn builds_and_validates_on_grids() {
        for (fanout, levels) in [(2, 3), (4, 2), (4, 3)] {
            let (g, hier) = build_grid(10, 10, fanout, levels);
            hier.validate(&g).unwrap();
            assert_eq!(hier.fanout(), fanout);
            assert_eq!(hier.levels(), levels);
            let expect: usize = (1..=levels).map(|lv| fanout.pow(lv)).sum();
            assert_eq!(hier.num_rnets(), expect);
        }
    }

    #[test]
    fn id_arithmetic_roundtrips() {
        let (_, hier) = build_grid(8, 8, 4, 3);
        for lv in 1..=3 {
            for r in hier.rnets_at_level(lv) {
                assert_eq!(hier.level_of(r), lv);
                if lv > 1 {
                    let p = hier.parent(r);
                    assert_eq!(hier.level_of(p), lv - 1);
                    assert!(hier.children(p).contains(&r));
                    assert_eq!(hier.ancestor_at(r, lv - 1), p);
                    assert_eq!(hier.ancestor_at(r, lv), r);
                }
                if lv < 3 {
                    for c in hier.children(r) {
                        assert_eq!(hier.parent(c), r);
                    }
                } else {
                    assert!(hier.is_leaf(r));
                    assert!(hier.children(r).is_empty());
                }
            }
        }
        let top = hier.rnets_at_level(1).next().unwrap();
        assert_eq!(hier.parent(top), RnetId::NONE);
    }

    #[test]
    fn every_edge_has_a_leaf_and_consistent_ancestors() {
        let (g, hier) = build_grid(9, 9, 4, 3);
        for e in g.edge_ids() {
            let leaf = hier.leaf_of_edge(e);
            assert!(leaf.is_valid());
            assert!(hier.is_leaf(leaf));
            assert!(hier.leaf_edge_list(leaf).contains(&e));
            for lv in 1..=3 {
                assert_eq!(hier.rnet_of_edge_at(e, lv), hier.ancestor_at(leaf, lv));
            }
        }
    }

    #[test]
    fn border_levels_are_upward_closed() {
        let (g, hier) = build_grid(12, 12, 4, 3);
        let mut border_count = 0;
        for n in g.node_ids() {
            let rnets = hier.bordered_rnets(n);
            if rnets.is_empty() {
                continue;
            }
            border_count += 1;
            let bl = hier.border_level(n).unwrap();
            // Once a border, a border at every finer level.
            for lv in bl..=hier.levels() {
                assert!(
                    rnets.iter().any(|&r| hier.level_of(r) == lv),
                    "{n} border at {bl} but not at {lv}"
                );
            }
            // Levels are sorted ascending.
            let levels: Vec<u32> = rnets.iter().map(|&r| hier.level_of(r)).collect();
            assert!(levels.windows(2).all(|w| w[0] <= w[1]));
            // It borders at least two Rnets at its border level.
            let at_bl = rnets.iter().filter(|&&r| hier.level_of(r) == bl).count();
            assert!(at_bl >= 2, "{n} borders only {at_bl} Rnet at level {bl}");
        }
        assert!(border_count > 0, "a partitioned grid must have border nodes");
        assert!(border_count < g.num_nodes(), "not every node should be a border node");
    }

    #[test]
    fn chain_borders_are_cut_points() {
        // A chain partitioned into 2 at one level: exactly 1 border node.
        let g = simple::chain(32, 1.0);
        let cfg = HierarchyConfig { fanout: 2, levels: 1, partition: PartitionOptions::default() };
        let hier = RnetHierarchy::build(&g, &cfg).unwrap();
        hier.validate(&g).unwrap();
        let all_borders: FastSet<u32> =
            hier.rnets_at_level(1).flat_map(|r| hier.borders(r).iter().map(|n| n.0)).collect();
        assert_eq!(all_borders.len(), 1, "one cut point expected: {all_borders:?}");
    }

    #[test]
    fn rejects_bad_config() {
        let g = simple::grid(4, 4, 1.0);
        let bad = HierarchyConfig { fanout: 3, levels: 2, partition: PartitionOptions::default() };
        assert!(RnetHierarchy::build(&g, &bad).is_err());
        let bad = HierarchyConfig { fanout: 4, levels: 0, partition: PartitionOptions::default() };
        assert!(RnetHierarchy::build(&g, &bad).is_err());
    }

    #[test]
    fn deeper_than_meaningful_levels_still_validate() {
        // 3 edges, 2 levels of fanout 4: most leaves are empty.
        let g = simple::chain(4, 1.0);
        let cfg = HierarchyConfig { fanout: 4, levels: 2, partition: PartitionOptions::default() };
        let hier = RnetHierarchy::build(&g, &cfg).unwrap();
        hier.validate(&g).unwrap();
    }

    #[test]
    fn maintenance_hooks_keep_validity() {
        let (mut g, mut hier) = build_grid(6, 6, 2, 2);
        // Delete an edge and unassign it.
        let e = g.edge_ids().next().unwrap();
        let (a, b) = g.edge(e).endpoints();
        g.remove_edge(e).unwrap();
        hier.unassign_edge(e);
        hier.refresh_node_borders(&g, a);
        hier.refresh_node_borders(&g, b);
        hier.validate(&g).unwrap();
        // Add a fresh edge far away and assign it to the leaf of a
        // neighbouring edge.
        let (u, v) = (NodeId(30), NodeId(25)); // not adjacent in a 6-grid
        let ew = road_network::Weight::new(3.0);
        let new_e = g.add_edge(u, v, ew, ew, road_network::Weight::ZERO).unwrap();
        let leaf = hier.leaf_of_edge(g.neighbors(u).next().unwrap().0);
        hier.assign_edge(new_e, leaf);
        hier.refresh_node_borders(&g, u);
        hier.refresh_node_borders(&g, v);
        hier.validate(&g).unwrap();
    }
}
