//! # road-core — the ROAD framework
//!
//! A faithful implementation of **ROAD** (Lee, Lee & Zheng, *Fast Object
//! Search on Road Networks*, EDBT 2009): a general framework for
//! evaluating location-dependent spatial queries — range and k-nearest-
//! neighbour search over objects living on a road network — under network
//! distance.
//!
//! The framework organises a road network as a hierarchy of regional
//! sub-networks (**Rnets**), augments it with **shortcuts** (precomputed
//! shortest paths between Rnet border nodes) and **object abstracts**
//! (per-Rnet object summaries), and evaluates queries by network expansion
//! that *bypasses* object-free Rnets instead of crawling through them.
//! The two index components give the framework its name:
//!
//! * the **Route Overlay** ([`hierarchy`] + [`shortcut`]) manages the
//!   network side — Rnets, border nodes, shortcut trees;
//! * the **Association Directory** ([`association`]) maps objects and
//!   object abstracts onto nodes and Rnets, fully decoupled from the
//!   network so several object sets can share one overlay.
//!
//! ## Quick start
//!
//! ```
//! use road_core::prelude::*;
//! use road_network::generator::simple;
//!
//! // A 12x12 street grid with unit-length edges.
//! let net = simple::grid(12, 12, 1.0);
//! let road = RoadFramework::builder(net).fanout(4).levels(2).build().unwrap();
//!
//! // Map a couple of cafes onto the network.
//! let mut cafes = AssociationDirectory::new(road.hierarchy());
//! let edge = road.network().edge_ids().next().unwrap();
//! cafes
//!     .insert(
//!         road.network(),
//!         road.hierarchy(),
//!         Object::new(ObjectId(1), edge, 0.5, CategoryId(0)),
//!     )
//!     .unwrap();
//!
//! // Nearest cafe from node 77.
//! let res = road.knn(&cafes, &KnnQuery::new(NodeId(77), 1)).unwrap();
//! assert_eq!(res.hits.len(), 1);
//! ```

pub mod abstracts;
pub(crate) mod arena;
pub mod association;
pub mod engine;
pub mod error;
pub mod framework;
pub mod hierarchy;
pub mod live;
pub mod model;
pub mod paged;
pub mod persist;
pub mod search;
pub mod shortcut;
pub mod workspace;

pub use abstracts::{AbstractKind, ObjectAbstract};
pub use association::AssociationDirectory;
pub use engine::QueryEngine;
pub use error::RoadError;
pub use framework::{RoadConfig, RoadFramework, UpdateOutcome};
pub use hierarchy::{HierarchyConfig, RnetHierarchy, RnetId};
pub use live::{LiveEngine, LiveStats, Snapshot, UpdateHandle};
pub use model::{CategoryId, Object, ObjectFilter, ObjectId};
pub use paged::{PagedEngine, PagedOptions};
pub use persist::PagedImage;
pub use search::{
    KnnQuery, NoopObserver, RangeQuery, SearchHit, SearchObserver, SearchResult, SearchStats,
};
pub use shortcut::{ShortcutEdge, ShortcutOptions, ShortcutStore};
pub use workspace::SearchWorkspace;

/// Convenient glob-import of the public API.
pub mod prelude {
    pub use crate::association::AssociationDirectory;
    pub use crate::engine::QueryEngine;
    pub use crate::framework::{RoadConfig, RoadFramework};
    pub use crate::live::{LiveEngine, Snapshot, UpdateHandle};
    pub use crate::model::{CategoryId, Object, ObjectFilter, ObjectId};
    pub use crate::paged::{PagedEngine, PagedOptions};
    pub use crate::persist::PagedImage;
    pub use crate::search::{KnnQuery, RangeQuery, SearchHit};
    pub use crate::workspace::SearchWorkspace;
    pub use road_network::graph::WeightKind;
    pub use road_network::{NodeId, Weight};
}
