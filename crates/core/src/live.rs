//! Live-update serving: a writer/reader split over atomically published
//! snapshots.
//!
//! ROAD's maintenance story (Section 5.2) says the Route Overlay survives
//! edge-weight changes and topology edits by repairing only the affected
//! Rnets — but every repair method on [`RoadFramework`] takes `&mut self`,
//! so a deployment serving concurrent kNN traffic could not absorb a
//! single traffic update without tearing its engine down. This module
//! closes that gap with copy-on-write snapshot publication:
//!
//! * **One writer.** An [`UpdateHandle`] (not `Clone`; every mutator takes
//!   `&mut self`) owns the master framework and directory. It applies
//!   edge-weight changes, topology edits and object updates through the
//!   ordinary §5.2 filter-and-refresh repairs — each update refreshes only
//!   the affected Rnets' shortcut maps, never rebuilding the overlay —
//!   and makes a batch of updates visible with
//!   [`publish`](UpdateHandle::publish).
//! * **Any number of readers.** A [`LiveEngine`] handle is cheaply
//!   clonable; [`snapshot`](LiveEngine::snapshot) hands back an
//!   `Arc<`[`Snapshot`]`>` — an immutable framework + directory pair that
//!   keeps answering on exactly the state it was published with, no
//!   matter what the writer does next. Readers drive the same zero-alloc
//!   [`knn_with`](Snapshot::knn_with) / [`range_with`](Snapshot::range_with)
//!   hot path as [`QueryEngine`].
//!
//! Publication swaps an `Arc` behind a mutex held only for the pointer
//! exchange: readers never wait on a repair in progress, and the writer
//! never waits for readers to finish (old snapshots are freed by the last
//! reader dropping them). The swap is cheap because the framework is
//! internally copy-on-write ([`RoadFramework`] docs): publishing clones
//! `O(#Rnets)` `Arc` pointers, and the *next* update after a publish
//! un-shares only the component it touches. A weight update therefore
//! costs: one lazy copy of the network's flat edge arrays per publish
//! cycle, plus fresh maps for the handful of refreshed Rnets — every
//! other Rnet's shortcut data is physically shared across all live
//! snapshots (asserted by `ShortcutStore::shared_rnet_count` in the test
//! suite and reported by the `exp_live` benchmark).
//!
//! ```
//! use road_core::prelude::*;
//! use road_network::generator::simple;
//!
//! let net = simple::grid(8, 8, 1.0);
//! let fw = RoadFramework::builder(net).fanout(4).levels(2).build().unwrap();
//! let mut pois = AssociationDirectory::new(fw.hierarchy());
//! let edge = fw.network().edge_ids().next().unwrap();
//! pois.insert(fw.network(), fw.hierarchy(), Object::new(ObjectId(1), edge, 0.5, CategoryId(0)))
//!     .unwrap();
//!
//! let (live, mut writer) = LiveEngine::new(fw, pois);
//! let before = live.snapshot(); // clone into any number of reader threads
//!
//! writer.set_edge_weight(edge, Weight::new(40.0)).unwrap();
//! let version = writer.publish();
//! let after = live.snapshot();
//!
//! assert_eq!(after.version(), version);
//! // The held snapshot still answers on pre-update weights...
//! assert_eq!(before.framework().network().weight(edge, WeightKind::Distance), Weight::new(1.0));
//! // ...while new snapshots see the congestion.
//! assert_eq!(after.framework().network().weight(edge, WeightKind::Distance), Weight::new(40.0));
//! ```

// roadlint: serving-path

use crate::association::AssociationDirectory;
use crate::engine::QueryEngine;
use crate::framework::{RoadFramework, UpdateOutcome};
use crate::model::{CategoryId, Object, ObjectId};
use crate::search::{KnnQuery, RangeQuery, SearchHit, SearchResult, SearchStats};
use crate::workspace::SearchWorkspace;
use crate::RoadError;
use road_network::{EdgeId, NodeId, Point, Weight};
use std::sync::{Arc, Mutex, MutexGuard};

/// One published, immutable state of the road network and its objects.
///
/// A snapshot answers queries on exactly the state it was published with,
/// for as long as any reader holds it; later publications never mutate it.
/// Obtain one from [`LiveEngine::snapshot`] and hold it for the duration
/// of a request (or a batch of requests) — re-acquiring per query is
/// cheap, but holding one guarantees a consistent view across several
/// queries.
pub struct Snapshot {
    version: u64,
    fw: Arc<RoadFramework>,
    ad: Arc<AssociationDirectory>,
}

impl Snapshot {
    /// Monotonically increasing publication number (the initial state is
    /// version 0).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The framework as of this publication.
    pub fn framework(&self) -> &RoadFramework {
        &self.fw
    }

    /// The object directory as of this publication.
    pub fn directory(&self) -> &AssociationDirectory {
        &self.ad
    }

    /// kNN through the per-thread workspace pool.
    pub fn knn(&self, query: &KnnQuery) -> Result<SearchResult, RoadError> {
        self.fw.knn(&self.ad, query)
    }

    /// Range query through the per-thread workspace pool.
    pub fn range(&self, query: &RangeQuery) -> Result<SearchResult, RoadError> {
        self.fw.range(&self.ad, query)
    }

    /// Allocation-free kNN into caller-owned scratch; the serving-loop hot
    /// path. See [`RoadFramework::knn_with`].
    pub fn knn_with(
        &self,
        query: &KnnQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        self.fw.knn_with(&self.ad, query, ws, hits)
    }

    /// Allocation-free range query into caller-owned scratch.
    pub fn range_with(
        &self,
        query: &RangeQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        self.fw.range_with(&self.ad, query, ws, hits)
    }

    /// Point-to-point network distance through the overlay.
    pub fn network_distance(&self, from: NodeId, to: NodeId) -> Result<Option<Weight>, RoadError> {
        self.fw.network_distance(from, to)
    }

    /// A [`QueryEngine`] pinned to this snapshot — for handing a frozen
    /// state to the batch fan-out entry points (`batch_knn` /
    /// `batch_range`). Shares the snapshot's framework and directory.
    pub fn query_engine(&self) -> QueryEngine {
        QueryEngine::from_shared(Arc::clone(&self.fw), Arc::clone(&self.ad))
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("framework", &*self.fw)
            .field("objects", &self.ad.len())
            .finish()
    }
}

/// State shared between the reader handles and the writer: the currently
/// published snapshot, swapped atomically under a briefly-held mutex.
struct Shared {
    current: Mutex<Arc<Snapshot>>,
}

impl Shared {
    /// The mutex is held only to clone or store an `Arc`, so a poisoned
    /// lock (a reader panicking mid-clone) leaves the pointer itself
    /// intact; recover the guard instead of propagating the panic.
    fn lock(&self) -> MutexGuard<'_, Arc<Snapshot>> {
        self.current.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Cumulative counters of one [`UpdateHandle`]'s lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiveStats {
    /// Maintenance operations applied (weight changes, topology edits,
    /// object updates).
    pub updates: u64,
    /// Snapshots published.
    pub publishes: u64,
    /// Summed §5.2 repair counters of every network-side update. The
    /// ratio `outcome.rnets_refreshed / updates` staying near the
    /// hierarchy depth — not near [`num_rnets`](crate::RnetHierarchy::num_rnets)
    /// — is the evidence that live maintenance repairs locally instead of
    /// rebuilding.
    pub outcome: UpdateOutcome,
}

/// The shareable reader side of a live deployment: clone it into every
/// serving thread; each clone hands out the currently published
/// [`Snapshot`].
///
/// Created together with the unique writer by [`LiveEngine::new`]. See the
/// [module docs](self) for the full writer/reader contract and an example.
#[derive(Clone)]
pub struct LiveEngine {
    shared: Arc<Shared>,
}

impl LiveEngine {
    /// Wraps a built framework and directory for live serving, publishing
    /// their current state as snapshot version 0. Returns the shareable
    /// reader handle and the unique writer.
    pub fn new(fw: RoadFramework, ad: AssociationDirectory) -> (LiveEngine, UpdateHandle) {
        let ad = Arc::new(ad);
        let snapshot =
            Arc::new(Snapshot { version: 0, fw: Arc::new(fw.clone()), ad: Arc::clone(&ad) });
        let shared = Arc::new(Shared { current: Mutex::new(snapshot) });
        let writer = UpdateHandle {
            shared: Arc::clone(&shared),
            fw,
            ad,
            published_version: 0,
            dirty: false,
            stats: LiveStats::default(),
        };
        (LiveEngine { shared }, writer)
    }

    /// The currently published snapshot. Briefly locks to clone the `Arc`
    /// — never waits on a repair in progress, only (at worst) on another
    /// pointer exchange.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.lock())
    }

    /// Version of the currently published snapshot.
    pub fn version(&self) -> u64 {
        self.shared.lock().version
    }
}

impl std::fmt::Debug for LiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEngine").field("published", &*self.snapshot()).finish()
    }
}

/// The unique writer of a live deployment.
///
/// Mutators apply to the writer's private working state through the
/// ordinary [`RoadFramework`] / [`AssociationDirectory`] maintenance
/// paths; readers observe nothing until [`publish`](UpdateHandle::publish)
/// swaps the working state in as the new current [`Snapshot`]. Batching
/// several updates per publish amortises the copy-on-write costs and
/// gives readers coherent multi-edge updates (e.g. re-weighting a whole
/// congested route at once).
///
/// The handle is deliberately not `Clone` and every mutator takes
/// `&mut self`: single-writer discipline is enforced by ownership, not by
/// locking on the query path.
pub struct UpdateHandle {
    shared: Arc<Shared>,
    /// Working framework; shares payloads with published snapshots until
    /// a mutation un-shares the touched component.
    fw: RoadFramework,
    /// Working directory, same copy-on-write discipline.
    ad: Arc<AssociationDirectory>,
    published_version: u64,
    dirty: bool,
    stats: LiveStats,
}

impl UpdateHandle {
    // ------------------------------------------------------------------
    // Network maintenance (Section 5.2 against the working state)
    // ------------------------------------------------------------------

    /// Changes an edge weight and repairs the affected shortcuts; visible
    /// to readers after the next [`publish`](UpdateHandle::publish). See
    /// [`RoadFramework::set_edge_weight`]. Setting the weight an edge
    /// already has mutates nothing and leaves the pending/stats state
    /// untouched (no spurious snapshot version on the next publish).
    ///
    /// Repair cost is dominated by the contraction-based Rnet refreshes
    /// (`ShortcutStore::refresh_rnet`); the query arena is patched in place
    /// (`O(deg)`), so published snapshots keep serving from flat adjacency
    /// without a rebuild.
    pub fn set_edge_weight(
        &mut self,
        e: EdgeId,
        weight: Weight,
    ) -> Result<UpdateOutcome, RoadError> {
        let outcome = self.fw.set_edge_weight(e, weight)?;
        // A default outcome means the weight was already `weight`: a
        // genuine change always refreshes at least the enclosing leaf.
        if outcome != UpdateOutcome::default() {
            self.note(outcome);
        }
        Ok(outcome)
    }

    /// Applies a batch of weight updates in one repair pass; see
    /// [`RoadFramework::set_edge_weights`]. A traffic-feed storm that
    /// touches many Rnets repairs each affected Rnet once, with same-level
    /// Rnets refreshed concurrently — far cheaper than per-edge
    /// [`set_edge_weight`](UpdateHandle::set_edge_weight) calls, and the
    /// resulting store is byte-identical to applying the batch edge by
    /// edge. A batch of pure no-ops leaves the pending/stats state
    /// untouched.
    pub fn set_edge_weights(
        &mut self,
        updates: &[(EdgeId, Weight)],
    ) -> Result<UpdateOutcome, RoadError> {
        let outcome = self.fw.set_edge_weights(updates)?;
        if outcome != UpdateOutcome::default() {
            self.note(outcome);
        }
        Ok(outcome)
    }

    /// Adds a new intersection to the working network.
    pub fn add_node(&mut self, at: Point) -> NodeId {
        self.bump();
        self.fw.add_node(at)
    }

    /// Adds a road segment; see [`RoadFramework::add_edge`].
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        weights: (Weight, Weight, Weight),
    ) -> Result<(EdgeId, UpdateOutcome), RoadError> {
        let (e, outcome) = self.fw.add_edge(a, b, weights)?;
        self.note(outcome);
        Ok((e, outcome))
    }

    /// Removes a road segment; fails while the working directory still has
    /// objects on it. See [`RoadFramework::remove_edge`].
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<UpdateOutcome, RoadError> {
        let outcome = self.fw.remove_edge(e, &[&self.ad])?;
        self.note(outcome);
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Object maintenance (Section 5.1 against the working state)
    // ------------------------------------------------------------------

    /// Inserts an object into the working directory.
    pub fn insert_object(&mut self, object: Object) -> Result<(), RoadError> {
        let fw = &self.fw;
        Arc::make_mut(&mut self.ad).insert(fw.network(), fw.hierarchy(), object)?;
        self.bump();
        Ok(())
    }

    /// Removes an object from the working directory, returning it.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<Object, RoadError> {
        let fw = &self.fw;
        let object = Arc::make_mut(&mut self.ad).remove(fw.network(), fw.hierarchy(), id)?;
        self.bump();
        Ok(object)
    }

    /// Moves an object to a new position (the paper's "change of object
    /// location": deletion at the old position, insertion at the new one,
    /// atomically within this update — readers never see the object
    /// absent). Restores the original placement if the new one is invalid.
    pub fn move_object(
        &mut self,
        id: ObjectId,
        edge: EdgeId,
        fraction: f64,
    ) -> Result<(), RoadError> {
        let fw = &self.fw;
        let ad = Arc::make_mut(&mut self.ad);
        let old = ad.remove(fw.network(), fw.hierarchy(), id)?;
        let mut moved = old.clone();
        moved.edge = edge;
        moved.fraction = fraction;
        if let Err(err) = ad.insert(fw.network(), fw.hierarchy(), moved) {
            if ad.insert(fw.network(), fw.hierarchy(), old).is_err() {
                // Rollback of a just-removed object cannot fail unless the
                // directory itself is inconsistent; report, don't panic.
                return Err(RoadError::Internal(
                    "move_object rollback failed; directory lost the object".into(),
                ));
            }
            return Err(err);
        }
        self.bump();
        Ok(())
    }

    /// Updates an object's category attribute.
    pub fn update_category(
        &mut self,
        id: ObjectId,
        category: CategoryId,
    ) -> Result<CategoryId, RoadError> {
        let fw = &self.fw;
        let old = Arc::make_mut(&mut self.ad).update_category(fw.hierarchy(), id, category)?;
        self.bump();
        Ok(old)
    }

    // ------------------------------------------------------------------
    // Publication
    // ------------------------------------------------------------------

    /// Atomically publishes the working state as the new current snapshot
    /// and returns its version. Readers holding earlier snapshots are
    /// unaffected; new [`LiveEngine::snapshot`] calls observe every update
    /// applied since the previous publish. A no-op (returning the current
    /// version) when nothing changed.
    pub fn publish(&mut self) -> u64 {
        if !self.dirty {
            return self.published_version;
        }
        self.published_version += 1;
        let snapshot = Arc::new(Snapshot {
            version: self.published_version,
            fw: Arc::new(self.fw.clone()),
            ad: Arc::clone(&self.ad),
        });
        *self.shared.lock() = snapshot;
        self.dirty = false;
        self.stats.publishes += 1;
        self.published_version
    }

    /// `true` while updates applied since the last publish are not yet
    /// visible to readers.
    pub fn has_pending(&self) -> bool {
        self.dirty
    }

    /// Version of the most recent publication (0 = initial state).
    pub fn published_version(&self) -> u64 {
        self.published_version
    }

    /// Cumulative update/publish counters.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// The writer's working framework — includes unpublished updates.
    pub fn framework(&self) -> &RoadFramework {
        &self.fw
    }

    /// The writer's working directory — includes unpublished updates.
    pub fn directory(&self) -> &AssociationDirectory {
        &self.ad
    }

    /// A fresh reader handle for the deployment this writer publishes to.
    pub fn reader(&self) -> LiveEngine {
        LiveEngine { shared: Arc::clone(&self.shared) }
    }

    fn note(&mut self, outcome: UpdateOutcome) {
        self.stats.outcome.absorb(&outcome);
        self.bump();
    }

    fn bump(&mut self) {
        self.stats.updates += 1;
        self.dirty = true;
    }
}

impl std::fmt::Debug for UpdateHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateHandle")
            .field("published_version", &self.published_version)
            .field("pending", &self.dirty)
            .field("stats", &self.stats)
            .finish()
    }
}

// Readers clone `LiveEngine` into threads and ship `Arc<Snapshot>`s across
// them; the writer may live on yet another thread. Keep all of that a
// compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<LiveEngine>();
    assert_send_sync::<Snapshot>();
    assert_send::<UpdateHandle>();
};
