//! Spatial objects and query predicates.
//!
//! Section 3.1 of the paper: objects reside on edges; an object `o` on edge
//! `(n, n')` has distances `δ(o, n)` and `δ(o, n')` to the endpoints, and an
//! attribute predicate `A` filters which objects a query is interested in.
//! We place objects at a *fraction* `t ∈ [0, 1]` of the edge so `δ` is
//! defined consistently under every weight metric (`δ(o,n) = t·|n,n'|`).

use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, NodeId, Point, Weight};
use std::fmt;

/// Identifier of a spatial object; unique within one directory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Object category (restaurant, hotel, bus station, ...). The paper's
/// attribute predicates (e.g. `o.type = 'seafood'`) are modelled as
/// categories, which is what object abstracts summarise.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CategoryId(pub u16);

impl fmt::Debug for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat{}", self.0)
    }
}

/// A spatial object living on a network edge.
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// Unique id.
    pub id: ObjectId,
    /// The edge the object resides on.
    pub edge: EdgeId,
    /// Position along the edge: 0 at the first endpoint, 1 at the second.
    pub fraction: f64,
    /// The object's category (attribute).
    pub category: CategoryId,
}

impl Object {
    /// Creates an object at fraction `t` of `edge`.
    pub fn new(id: ObjectId, edge: EdgeId, fraction: f64, category: CategoryId) -> Self {
        Object { id, edge, fraction, category }
    }

    /// `δ(o, n)` — the object's offset from endpoint `n` of its edge under
    /// the given metric.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of the object's edge.
    pub fn offset_from(&self, g: &RoadNetwork, kind: WeightKind, n: NodeId) -> Weight {
        let (a, b) = g.edge(self.edge).endpoints();
        let w = g.weight(self.edge, kind).get();
        if n == a {
            Weight::new(w * self.fraction)
        } else {
            assert_eq!(n, b, "{n} is not an endpoint of {:?}", self.edge);
            Weight::new(w * (1.0 - self.fraction))
        }
    }

    /// The object's planar position (interpolated along its edge).
    pub fn position(&self, g: &RoadNetwork) -> Point {
        let (a, b) = g.edge(self.edge).endpoints();
        g.coord(a).lerp(g.coord(b), self.fraction)
    }
}

/// The attribute predicate `A` of an LDSQ.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ObjectFilter {
    /// Accept every object.
    #[default]
    Any,
    /// Accept only the given category.
    Category(CategoryId),
    /// Accept any of the listed categories.
    AnyOf(Vec<CategoryId>),
}

impl ObjectFilter {
    /// Does `object` satisfy the predicate?
    #[inline]
    pub fn matches(&self, object: &Object) -> bool {
        match self {
            ObjectFilter::Any => true,
            ObjectFilter::Category(c) => object.category == *c,
            ObjectFilter::AnyOf(cs) => cs.contains(&object.category),
        }
    }

    /// Does the predicate accept the given category?
    #[inline]
    pub fn accepts_category(&self, category: CategoryId) -> bool {
        match self {
            ObjectFilter::Any => true,
            ObjectFilter::Category(c) => *c == category,
            ObjectFilter::AnyOf(cs) => cs.contains(&category),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::geometry::Point;

    fn two_node_net() -> (RoadNetwork, EdgeId) {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let e = b.add_edge(a, c, 20.0).unwrap();
        (b.build(), e)
    }

    #[test]
    fn offsets_split_the_edge_weight() {
        let (g, e) = two_node_net();
        let o = Object::new(ObjectId(1), e, 0.25, CategoryId(0));
        assert_eq!(o.offset_from(&g, WeightKind::Distance, NodeId(0)), Weight::new(5.0));
        assert_eq!(o.offset_from(&g, WeightKind::Distance, NodeId(1)), Weight::new(15.0));
        let total = o.offset_from(&g, WeightKind::Distance, NodeId(0))
            + o.offset_from(&g, WeightKind::Distance, NodeId(1));
        assert_eq!(total, g.weight(e, WeightKind::Distance));
    }

    #[test]
    fn position_interpolates() {
        let (g, e) = two_node_net();
        let o = Object::new(ObjectId(1), e, 0.5, CategoryId(0));
        assert_eq!(o.position(&g), Point::new(5.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn offset_from_foreign_node_panics() {
        let (g, e) = two_node_net();
        let mut b2 = RoadNetwork::builder();
        b2.add_node(Point::new(0.0, 0.0));
        let o = Object::new(ObjectId(1), e, 0.5, CategoryId(0));
        let _ = o.offset_from(&g, WeightKind::Distance, NodeId(7));
    }

    #[test]
    fn filters() {
        let (_, e) = two_node_net();
        let o = Object::new(ObjectId(1), e, 0.5, CategoryId(3));
        assert!(ObjectFilter::Any.matches(&o));
        assert!(ObjectFilter::Category(CategoryId(3)).matches(&o));
        assert!(!ObjectFilter::Category(CategoryId(4)).matches(&o));
        assert!(ObjectFilter::AnyOf(vec![CategoryId(1), CategoryId(3)]).matches(&o));
        assert!(!ObjectFilter::AnyOf(vec![]).matches(&o));
        assert!(ObjectFilter::Any.accepts_category(CategoryId(9)));
    }
}
