//! Disk-resident serving: [`PagedEngine`].
//!
//! The paper evaluates ROAD as a **disk-resident** index — its headline
//! numbers count 4 KB page accesses through a 50-page LRU buffer, not CPU
//! time. The in-memory [`QueryEngine`](crate::engine::QueryEngine) cannot
//! reproduce that cost model: it serves from deserialized hash maps. This
//! module lays the same data onto real pages and serves queries through
//! the buffer pool of the [`road_storage`] crate, reproducing the paper's
//! storage stack (Section 3.4 + Section 6 methodology):
//!
//! * **Node records** — adjacency entries (edge, neighbour, leaf-Rnet,
//!   weight) packed into CCAM-clustered pages
//!   ([`road_storage::NodeClustering`], ref \[18\]): BFS-adjacent nodes
//!   share pages, so network expansion faults far less than a scattered
//!   layout would.
//! * **Shortcut records** — each border node's outgoing shortcuts within
//!   one Rnet `(target, distance)`, co-clustered with the node record
//!   when built eagerly, or paged in per Rnet on first touch when opened
//!   from a persisted image (see below). Shortcut `via` waypoints are
//!   cold path-reconstruction data and deliberately stay out of the hot
//!   records, mirroring the paper's storage discussion.
//! * **Association Directory records** — per-node object associations
//!   `(id, category, offset)` and per-Rnet object abstracts, indexed by
//!   two paged **B+-trees** keyed by node id and Rnet id — the paper's
//!   "also adopts B+-tree with unique node IDs or Rnet IDs as the search
//!   key". B+-tree pages live in the same buffer pool, so index descents
//!   cost realistic page accesses too.
//!
//! The Rnet hierarchy itself (parents, levels, border lists) stays
//! RAM-resident: it is the search skeleton, small and touched on every
//! hop.
//!
//! ## Concurrent serving
//!
//! Queries take `&self`: one engine serves any number of threads at once,
//! like the in-memory `QueryEngine`. Three pieces make that safe without a
//! wrapper mutex (the rejected baseline `exp_disk` measures against):
//!
//! * the **lock-striped buffer pool**
//!   ([`road_storage::StripedBufferPool`]) — the LRU sharded by page id
//!   into independently locked stripes, so cache-warm readers rarely
//!   contend; every access is charged both to atomic global counters and
//!   to the query's private [`IoTally`], which is what keeps per-query
//!   [`SearchStats`] exact under concurrency (tallies sum to the pool's
//!   cumulative stats);
//! * **once-only lazy Rnet decode** — each Rnet's shortcut-record
//!   locations live in a `OnceLock`, initialized under a per-Rnet mutex
//!   (double-checked: the fast path is a lock-free `get`). Two threads
//!   never decode the same section twice, and readers never observe a
//!   half-decoded Rnet because the locations publish only after every
//!   record is on its page;
//! * **per-thread scratch** — record buffers and
//!   [`SearchWorkspace`]s come from thread-local pools, exactly like the
//!   in-memory engine's hot path.
//!
//! ## Oracle agreement
//!
//! `PagedEngine` runs the **same** expansion loop as the in-memory engine
//! — [`crate::search`]'s loop is generic over a `SearchSource`, and this
//! module only swaps the storage behind it. Record visit order matches the
//! in-memory iteration order and distances are stored as exact `f64` bits,
//! so results are byte-for-byte identical (distances, ids, tie order) at
//! *every* buffer size, including a pathological 1-page-per-stripe pool,
//! from any number of threads. The `paged_tests` proptest harness pins
//! this down.
//!
//! ## Page-granular open
//!
//! [`PagedEngine::open`] serves straight from a persisted `ROADFW01` image
//! ([`PagedImage`]) without ever materializing the in-memory shortcut
//! store: an Rnet's shortcut section is decoded and laid onto pages the
//! first time a query touches the Rnet. A cold server reaches its first
//! answer after paging in only the Rnets that query actually crossed. A
//! section that no longer decodes (image bytes corrupted after `open`)
//! surfaces as `Err` through the query path instead of a silent wrong
//! answer.
//!
//! ```
//! use road_core::paged::{PagedEngine, PagedOptions};
//! use road_core::prelude::*;
//! use road_network::generator::simple;
//!
//! let net = simple::grid(8, 8, 1.0);
//! let road = RoadFramework::builder(net).fanout(4).levels(2).build().unwrap();
//! let mut pois = AssociationDirectory::new(road.hierarchy());
//! let edge = road.network().edge_ids().next().unwrap();
//! pois.insert(road.network(), road.hierarchy(), Object::new(ObjectId(1), edge, 0.5, CategoryId(0)))
//!     .unwrap();
//!
//! let disk = PagedEngine::new(&road, &pois, PagedOptions::default()).unwrap();
//! // `knn` takes `&self`: share the engine across serving threads.
//! let res = disk.knn(&KnnQuery::new(NodeId(12), 1)).unwrap();
//! assert_eq!(res.hits.len(), 1);
//! assert!(res.stats.pages_read > 0, "served from pages");
//! ```
// roadlint: serving-path

use crate::association::AssociationDirectory;
use crate::framework::RoadFramework;
use crate::hierarchy::{RnetHierarchy, RnetId};
use crate::model::{CategoryId, Object, ObjectFilter};
use crate::persist::PagedImage;
use crate::search::{
    self, AggregateKnnQuery, KnnQuery, Mode, NoopObserver, RangeQuery, SearchHit, SearchResult,
    SearchSource, SearchStats,
};
use crate::workspace::SearchWorkspace;
use crate::{AbstractKind, RoadError};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId, Weight};
use road_storage::{
    BPlusTree, BufferStats, IoTally, NodeClustering, PageId, PageStore, StorageError,
    StripedBufferPool, TalliedPool, DEFAULT_BUFFER_PAGES, DEFAULT_BUFFER_STRIPES, PAGE_SIZE,
};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Record locations: (page, offset, length) packed into one u64
// ---------------------------------------------------------------------------

const LOC_PAGE_BITS: u32 = 28; // 2^28 pages x 4 KB = 1 TB per store
const LOC_OFFSET_BITS: u32 = 12; // offsets within a 4 KB page
const LOC_LEN_BITS: u32 = 24; // records up to 16 MB
const LOC_NONE: u64 = u64::MAX;

fn pack_loc(page: u32, offset: u32, len: usize) -> Result<u64, RoadError> {
    if (page as u64) >= (1 << LOC_PAGE_BITS)
        || (offset as u64) >= (1 << LOC_OFFSET_BITS)
        || (len as u64) >= (1 << LOC_LEN_BITS)
    {
        return Err(RoadError::InvalidConfig(format!(
            "paged record does not fit a location descriptor \
             (page {page}, offset {offset}, len {len})"
        )));
    }
    Ok(((page as u64) << (LOC_OFFSET_BITS + LOC_LEN_BITS))
        | ((offset as u64) << LOC_LEN_BITS)
        | len as u64)
}

fn unpack_loc(loc: u64) -> (u32, u32, usize) {
    let page = (loc >> (LOC_OFFSET_BITS + LOC_LEN_BITS)) as u32;
    let offset = ((loc >> LOC_LEN_BITS) & ((1 << LOC_OFFSET_BITS) - 1)) as u32;
    let len = (loc & ((1 << LOC_LEN_BITS) - 1)) as usize;
    (page, offset, len)
}

// ---------------------------------------------------------------------------
// Record encodings (little-endian throughout)
// ---------------------------------------------------------------------------

/// Adjacency entry: edge id, neighbour id, leaf-Rnet id, weight bits.
const ADJ_ENTRY: usize = 4 + 4 + 4 + 8;
/// Shortcut entry: target border node, distance bits.
const SC_ENTRY: usize = 4 + 8;
/// Association entry: object id, category, offset-from-this-node bits.
const OBJ_ENTRY: usize = 8 + 2 + 8;
/// Abstract entry: category, count.
const CAT_ENTRY: usize = 2 + 4;

fn encode_node_record(
    g: &RoadNetwork,
    hier: &RnetHierarchy,
    kind: WeightKind,
    n: NodeId,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&[0; 4]); // count patched below
    let mut count = 0u32;
    // Every live neighbour entry is stored, *including* infinite-weight
    // (closed) edges: the expansion skips them at read time exactly like
    // the in-memory source, and `rnet_contains_node` must see the same
    // edge set as `MemorySource` or ToNode routing counters diverge.
    for (e, v) in g.neighbors(n) {
        let w = g.weight(e, kind);
        out.extend_from_slice(&e.0.to_le_bytes());
        out.extend_from_slice(&v.0.to_le_bytes());
        out.extend_from_slice(&hier.leaf_of_edge(e).0.to_le_bytes());
        out.extend_from_slice(&w.get().to_le_bytes());
        count += 1;
    }
    if let Some(header) = out.first_chunk_mut::<4>() {
        *header = count.to_le_bytes();
    }
}

fn encode_shortcut_record(list: &[crate::shortcut::ShortcutEdge], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for sc in list {
        out.extend_from_slice(&sc.to.0.to_le_bytes());
        out.extend_from_slice(&sc.dist.get().to_le_bytes());
    }
}

fn encode_assoc_record<'a>(
    objects: impl Iterator<Item = &'a Object>,
    g: &RoadNetwork,
    kind: WeightKind,
    n: NodeId,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&[0; 4]);
    let mut count = 0u32;
    for o in objects {
        out.extend_from_slice(&o.id.0.to_le_bytes());
        out.extend_from_slice(&o.category.0.to_le_bytes());
        out.extend_from_slice(&o.offset_from(g, kind, n).get().to_le_bytes());
        count += 1;
    }
    if let Some(header) = out.first_chunk_mut::<4>() {
        *header = count.to_le_bytes();
    }
}

fn encode_abstract_record(total: u32, counts: &[(u16, u32)], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
    for &(cat, cnt) in counts {
        out.extend_from_slice(&cat.to_le_bytes());
        out.extend_from_slice(&cnt.to_le_bytes());
    }
}

// The fixed-width readers index the record buffer directly; every caller
// first validates the record's entry count against its byte length (see
// `record_count`), which bounds all the offsets derived from it.

#[inline]
// roadlint: allow(panic-fn) reason="offset bounded by the caller's record_count validation"
fn read_u32_at(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

#[inline]
// roadlint: allow(panic-fn) reason="offset bounded by the caller's record_count validation"
fn read_u16_at(buf: &[u8], at: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&buf[at..at + 2]);
    u16::from_le_bytes(b)
}

#[inline]
// roadlint: allow(panic-fn) reason="offset bounded by the caller's record_count validation"
fn read_u64_at(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

#[inline]
// roadlint: allow(panic-fn) reason="offset bounded by the caller's record_count validation"
fn read_f64_at(buf: &[u8], at: usize) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    f64::from_le_bytes(b)
}

/// Reads a record's leading `u32` entry count and validates it against the
/// record's byte length (`4`-byte header + `count * entry` bytes) before
/// any offset arithmetic or allocation is sized from it. A record that
/// fails the check decoded from corrupt pages.
// roadlint: decode-fn
fn record_count(buf: &[u8], entry: usize) -> Result<usize, RoadError> {
    if buf.len() < 4 {
        return Err(StorageError::CorruptPage("record shorter than its count header").into());
    }
    let count = read_u32_at(buf, 0) as usize;
    if count > (buf.len() - 4) / entry {
        return Err(StorageError::CorruptPage("record entry count exceeds record length").into());
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Per-thread scratch buffers for record reads
// ---------------------------------------------------------------------------

/// Cap on pooled record buffers per thread (mirrors the workspace pool).
const SCRATCH_POOL_CAP: usize = 8;

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch() -> Vec<u8> {
    SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

fn put_scratch(buf: Vec<u8>) {
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(buf);
        }
    });
}

// ---------------------------------------------------------------------------
// Options and the engine
// ---------------------------------------------------------------------------

/// Configuration of a [`PagedEngine`].
#[derive(Clone, Copy, Debug)]
pub struct PagedOptions {
    /// LRU buffer-pool capacity in 4 KB pages (the paper's default is 50).
    /// Rounded up to at least one page per stripe.
    pub buffer_pages: usize,
    /// Lock stripes of the concurrent buffer pool: the LRU is sharded by
    /// `page % stripes`, each shard behind its own mutex, so serving
    /// threads touching different pages rarely contend. Clamped to
    /// `buffer_pages` so the pool's capacity stays exactly as requested —
    /// the paper's cost model counts every frame.
    pub buffer_stripes: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions { buffer_pages: DEFAULT_BUFFER_PAGES, buffer_stripes: DEFAULT_BUFFER_STRIPES }
    }
}

impl PagedOptions {
    /// Options with an explicit buffer size (default stripe count).
    pub fn with_buffer_pages(buffer_pages: usize) -> Self {
        PagedOptions { buffer_pages, ..PagedOptions::default() }
    }

    /// Overrides the stripe count.
    pub fn with_stripes(mut self, buffer_stripes: usize) -> Self {
        self.buffer_stripes = buffer_stripes;
        self
    }
}

/// The lazy-open state: the retained image plus the bookkeeping that makes
/// first-touch Rnet decoding safe under concurrency.
struct LazyBacking {
    /// The retained image, dropped (set to `None`) once every Rnet is
    /// resident — a fully loaded replica must not keep a second copy of
    /// the overlay in RAM. `Arc` so a decode can run outside the lock.
    image: Mutex<Option<Arc<PagedImage>>>,
    /// One lock per Rnet: the writer side of the double-checked
    /// `OnceLock` init, so two threads never decode the same section
    /// twice while *different* Rnets decode in parallel.
    rnet_locks: Vec<Mutex<()>>,
    /// How many Rnets are resident (monotone, saturates at the total).
    rnets_loaded: AtomicUsize,
}

/// A disk-resident ROAD engine: serves `knn`/`range` by reading node,
/// shortcut and directory records through a lock-striped LRU buffer pool
/// over 4 KB pages, mirroring [`QueryEngine`](crate::engine::QueryEngine)'s
/// query API. Queries take `&self` — share one engine (by reference or in
/// an `Arc`) across any number of serving threads. See the
/// [module docs](crate::paged) for the layout and the concurrency design.
pub struct PagedEngine {
    hier: Arc<RnetHierarchy>,
    kind: WeightKind,
    num_nodes: usize,
    pool: StripedBufferPool,
    /// Per node: packed location of its adjacency record (immutable after
    /// build).
    node_loc: Vec<u64>,
    /// Per Rnet: `border node -> shortcut-record location`. Set exactly
    /// once — at build time for eager engines, under the per-Rnet lock on
    /// first query touch for lazily opened ones. Readers go through the
    /// lock-free `get`; a `Some` map is always complete.
    rnet_shortcuts: Vec<OnceLock<FastMap<u32, u64>>>,
    /// Node id -> association-record location.
    assoc_index: BPlusTree,
    /// Rnet id -> abstract-record location.
    abstract_index: BPlusTree,
    /// `Some` iff the engine was opened page-granularly from an image.
    lazy: Option<LazyBacking>,
    /// Sequential-append cursor `(page, fill)` for directory records and
    /// lazily paged-in shortcut records. The mutex also serializes
    /// multi-page allocation runs (consecutive page ids).
    append: Mutex<Option<(u32, usize)>>,
    node_region_pages: usize,
}

// One engine, many serving threads — keep it a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PagedEngine>();
};

impl PagedEngine {
    /// Lays a built framework + directory onto pages **eagerly**: node and
    /// shortcut records CCAM-co-clustered, directory records B+-tree
    /// indexed. The framework and directory are *not* retained — after
    /// construction every query is answered from the page store.
    pub fn new(
        fw: &RoadFramework,
        ad: &AssociationDirectory,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        let mut eng = Self::empty(
            Arc::clone(fw.hierarchy_arc()),
            fw.metric(),
            fw.network().num_nodes(),
            opts,
        )?;
        let per_rnet = eng.lay_node_region(fw.network(), Some(fw.shortcuts()))?;
        for (slot, map) in eng.rnet_shortcuts.iter().zip(per_rnet) {
            slot.set(map).map_err(|_| StorageError::Internal("fresh OnceLock set twice"))?;
        }
        eng.lay_directory_region(fw.network(), ad)?;
        eng.finish_build()?;
        Ok(eng)
    }

    /// Opens a persisted image **page-granularly** and maps `objects` onto
    /// it: node and directory records are laid out up front (cheap), but
    /// an Rnet's shortcut section is decoded from the image and paged in
    /// only when a query first touches that Rnet.
    pub fn open(
        image: PagedImage,
        objects: Vec<Object>,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        let mut ad = AssociationDirectory::new(image.hierarchy());
        for o in objects {
            ad.insert(image.network(), image.hierarchy(), o)?;
        }
        let mut eng = Self::empty(
            Arc::clone(image.hierarchy_arc()),
            image.metric(),
            image.network().num_nodes(),
            opts,
        )?;
        eng.lay_node_region(image.network(), None)?;
        eng.lay_directory_region(image.network(), &ad)?;
        let num_rnets = image.num_rnets();
        eng.lazy = Some(LazyBacking {
            image: Mutex::new(Some(Arc::new(image))),
            rnet_locks: (0..num_rnets).map(|_| Mutex::new(())).collect(),
            rnets_loaded: AtomicUsize::new(0),
        });
        eng.finish_build()?;
        Ok(eng)
    }

    fn empty(
        hier: Arc<RnetHierarchy>,
        kind: WeightKind,
        num_nodes: usize,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        if opts.buffer_pages == 0 {
            return Err(RoadError::InvalidConfig("buffer pool needs at least one page".into()));
        }
        if opts.buffer_stripes == 0 {
            return Err(RoadError::InvalidConfig("buffer pool needs at least one stripe".into()));
        }
        // Clamp stripes to the page budget: a 2-page pool with 8 stripes
        // would round up to 8 frames and break the paper's capacity
        // accounting (and the faults-vs-buffer-size sweeps).
        let stripes = opts.buffer_stripes.min(opts.buffer_pages);
        let pool = StripedBufferPool::new(PageStore::new(), opts.buffer_pages, stripes);
        let mut tally = IoTally::default();
        let assoc_index = BPlusTree::new(&mut TalliedPool { pool: &pool, tally: &mut tally })?;
        let abstract_index = BPlusTree::new(&mut TalliedPool { pool: &pool, tally: &mut tally })?;
        let num_rnets = hier.num_rnets();
        Ok(PagedEngine {
            hier,
            kind,
            num_nodes,
            pool,
            node_loc: Vec::new(),
            rnet_shortcuts: (0..num_rnets).map(|_| OnceLock::new()).collect(),
            assoc_index,
            abstract_index,
            lazy: None,
            append: Mutex::new(None),
            node_region_pages: 0,
        })
    }

    /// Lays the node region: every node's adjacency record, plus (eagerly)
    /// its outgoing shortcut records, CCAM-clustered so that BFS-adjacent
    /// nodes share pages. Returns the per-Rnet shortcut-record locations
    /// (empty maps when `shortcuts` is `None` — the lazy path fills them
    /// at first touch instead).
    fn lay_node_region(
        &mut self,
        g: &RoadNetwork,
        shortcuts: Option<&crate::shortcut::ShortcutStore>,
    ) -> Result<Vec<FastMap<u32, u64>>, RoadError> {
        let hier = Arc::clone(&self.hier);
        let kind = self.kind;
        let mut tally = IoTally::default();
        let mut rec = Vec::new();
        let mut per_rnet: Vec<FastMap<u32, u64>> = vec![FastMap::default(); hier.num_rnets()];
        // Blob size = node record + (eager only) its shortcut records.
        let blob_size = |n: NodeId| -> usize {
            let mut bytes = 4 + ADJ_ENTRY * g.neighbors(n).count();
            if let Some(sc) = shortcuts {
                for &r in hier.bordered_rnets(n) {
                    let list = sc.from(r, n);
                    if !list.is_empty() {
                        bytes += 4 + SC_ENTRY * list.len();
                    }
                }
            }
            bytes
        };
        let clustering = NodeClustering::build(g, blob_size);
        let base = self.pool.num_pages() as u32;
        for _ in 0..clustering.num_pages() {
            self.pool.alloc()?;
        }
        self.node_region_pages = clustering.num_pages();
        self.node_loc = vec![LOC_NONE; g.num_nodes()];
        for n in g.node_ids() {
            let loc = clustering.locate(n);
            let (page, mut offset) = (base + loc.page, loc.offset);
            encode_node_record(g, &hier, kind, n, &mut rec);
            self.write_bytes(page, offset as usize, &rec, &mut tally)?;
            if let Some(slot) = self.node_loc.get_mut(n.index()) {
                *slot = pack_loc(page, offset, rec.len())?;
            }
            offset += rec.len() as u32;
            if let Some(sc) = shortcuts {
                for &r in hier.bordered_rnets(n) {
                    let list = sc.from(r, n);
                    if list.is_empty() {
                        continue;
                    }
                    encode_shortcut_record(list, &mut rec);
                    // A multi-page blob crosses page boundaries; recompute
                    // the page/offset split for this record's start.
                    let (p, o) = (page + offset / PAGE_SIZE as u32, offset % PAGE_SIZE as u32);
                    self.write_bytes(p, o as usize, &rec, &mut tally)?;
                    if let Some(map) = per_rnet.get_mut(r.0 as usize) {
                        map.insert(n.0, pack_loc(p, o, rec.len())?);
                    }
                    offset += rec.len() as u32;
                }
            }
        }
        Ok(per_rnet)
    }

    /// Lays the directory region (association + abstract records) and
    /// builds the two B+-tree indexes over it.
    fn lay_directory_region(
        &mut self,
        g: &RoadNetwork,
        ad: &AssociationDirectory,
    ) -> Result<(), RoadError> {
        if ad.abstract_kind() != AbstractKind::Counts {
            return Err(RoadError::InvalidConfig(
                "paged serving requires exact-count abstracts (AbstractKind::Counts)".into(),
            ));
        }
        let hier = Arc::clone(&self.hier);
        let kind = self.kind;
        let mut tally = IoTally::default();
        let mut rec = Vec::new();
        // Association records in node order; only nodes carrying objects.
        let mut assoc_entries = Vec::new();
        for i in 0..self.num_nodes {
            let n = NodeId(i as u32);
            if ad.objects_at_node(n).next().is_none() {
                continue;
            }
            encode_assoc_record(ad.objects_at_node(n), g, kind, n, &mut rec);
            let loc = self.append_record(&rec, &mut tally)?;
            assoc_entries.push((n.0 as u64, loc));
        }
        // Abstract records in Rnet order; only non-empty abstracts (an
        // absent record answers "cannot match", same as an empty abstract).
        let mut abstract_entries = Vec::new();
        for r in 0..hier.num_rnets() {
            let a = ad.abstract_of(RnetId(r as u32));
            if a.is_empty() {
                continue;
            }
            let counts = a.sorted_counts().ok_or_else(|| {
                RoadError::Internal("abstract kind changed between check and layout".into())
            })?;
            encode_abstract_record(a.total(), &counts, &mut rec);
            let loc = self.append_record(&rec, &mut tally)?;
            abstract_entries.push((r as u64, loc));
        }
        // Index both regions (keys inserted in ascending order for a
        // deterministic tree shape).
        for (k, v) in assoc_entries {
            self.assoc_index.insert(
                &mut TalliedPool { pool: &self.pool, tally: &mut tally },
                k,
                v,
            )?;
        }
        for (k, v) in abstract_entries {
            self.abstract_index.insert(
                &mut TalliedPool { pool: &self.pool, tally: &mut tally },
                k,
                v,
            )?;
        }
        Ok(())
    }

    /// Build epilogue: flush everything to the store and start cold, the
    /// paper's measurement discipline.
    fn finish_build(&mut self) -> Result<(), RoadError> {
        self.pool.clear_cache()?;
        self.pool.reset_stats();
        Ok(())
    }

    /// Appends a record into the sequential region (directory records and
    /// lazily paged-in shortcut records), first-fit within pages. The
    /// cursor mutex makes concurrent appends (two Rnets decoding in
    /// parallel) claim disjoint byte ranges; the page writes themselves
    /// happen outside the cursor lock, synchronized by the pool's stripe
    /// locks.
    fn append_record(&self, bytes: &[u8], tally: &mut IoTally) -> Result<u64, RoadError> {
        let len = bytes.len();
        if len > PAGE_SIZE {
            // Multi-page record: needs consecutive page ids, so the whole
            // allocation run stays under the cursor lock (every
            // query-time allocation goes through this method).
            let first = {
                let mut cursor =
                    self.append.lock().map_err(|_| StorageError::LockPoisoned("append cursor"))?;
                // roadlint: allow(io-under-lock) reason="consecutive page ids require the whole allocation run under the cursor; alloc extends the store tail, it never faults a cold page in"
                let first = self.pool.alloc()?;
                for _ in 1..len.div_ceil(PAGE_SIZE) {
                    // roadlint: allow(io-under-lock) reason="same allocation run as above"
                    self.pool.alloc()?;
                }
                *cursor = None;
                first
            };
            self.write_bytes(first.0, 0, bytes, tally)?;
            return pack_loc(first.0, 0, len);
        }
        let (page, fill) = {
            let mut cursor =
                self.append.lock().map_err(|_| StorageError::LockPoisoned("append cursor"))?;
            let (page, fill) = match *cursor {
                Some((page, fill)) if fill + len <= PAGE_SIZE => (page, fill),
                // roadlint: allow(io-under-lock) reason="claiming the next append page must be atomic with the cursor update; alloc extends the store tail, it never faults a cold page in"
                _ => (self.pool.alloc()?.0, 0),
            };
            *cursor = Some((page, fill + len));
            (page, fill)
        };
        self.write_bytes(page, fill, bytes, tally)?;
        pack_loc(page, fill as u32, len)
    }

    /// Writes `bytes` starting at (`page`, `offset`), walking page
    /// boundaries for multi-page records.
    // roadlint: allow(panic-fn) reason="slice arithmetic clamped by take = min(rest, page remainder)"
    fn write_bytes(
        &self,
        page: u32,
        offset: usize,
        bytes: &[u8],
        tally: &mut IoTally,
    ) -> Result<(), RoadError> {
        let mut p = page;
        let mut off = offset;
        let mut rest = bytes;
        while !rest.is_empty() {
            let take = rest.len().min(PAGE_SIZE - off);
            self.pool.with_page_mut(PageId(p), tally, |pg| {
                pg.bytes_mut()[off..off + take].copy_from_slice(&rest[..take]);
            })?;
            rest = &rest[take..];
            off = 0;
            p += 1;
        }
        Ok(())
    }

    /// Pages Rnet `r`'s shortcut records in from the retained image if
    /// this engine is lazy and has not touched `r` yet — the
    /// double-checked per-Rnet init described in the module docs. Once
    /// the last Rnet lands on pages the image is dropped: a fully
    /// resident replica must not keep a second copy of the overlay in
    /// RAM.
    ///
    /// A section that fails to decode (image corrupted after `open`)
    /// returns `Err` and leaves the Rnet unloaded, so the failure
    /// surfaces on every query that needs the Rnet instead of silently
    /// serving it as "no shortcuts".
    fn ensure_rnet_loaded(&self, r: RnetId, tally: &mut IoTally) -> Result<(), RoadError> {
        let Some(lazy) = &self.lazy else {
            return Ok(()); // eager: everything resident since build
        };
        let idx = r.0 as usize;
        let slot = self
            .rnet_shortcuts
            .get(idx)
            .ok_or(StorageError::Internal("Rnet id outside the hierarchy"))?;
        // Fast path: lock-free, and the common case after warm-up.
        if slot.get().is_some() {
            return Ok(());
        }
        let _guard = lazy
            .rnet_locks
            .get(idx)
            .ok_or(StorageError::Internal("Rnet id outside the lazy lock table"))?
            .lock()
            .map_err(|_| StorageError::LockPoisoned("per-Rnet decode"))?;
        // Double-check under the lock: another thread may have just won.
        if slot.get().is_some() {
            return Ok(());
        }
        let image = self.lock_image(lazy)?.clone().ok_or_else(|| {
            RoadError::InvalidConfig("lazy image dropped while Rnets were still unloaded".into())
        })?;
        // Decode outside the image lock so other Rnets can load in
        // parallel; the per-Rnet guard already excludes duplicate work.
        let map = image.shortcuts_of_rnet(idx)?;
        let mut sources: Vec<u32> = map.keys().copied().collect();
        sources.sort_unstable();
        let mut rec = Vec::new();
        let mut locs = FastMap::default();
        for from in sources {
            let Some(list) = map.get(&from) else { continue };
            encode_shortcut_record(list, &mut rec);
            // roadlint: allow(io-under-lock) reason="the per-Rnet decode guard exists precisely to serialize this one-time page-in; only queries for the same unloaded Rnet wait on it"
            let loc = self.append_record(&rec, tally)?;
            locs.insert(from, loc);
        }
        // Publish only after every record is on its page: readers that
        // win the `get` race see a complete map or none at all. The
        // per-Rnet guard excludes a concurrent set; a lost race would
        // mean the guard is broken, so it surfaces as an error.
        slot.set(locs)
            .map_err(|_| StorageError::Internal("per-Rnet decode raced despite the lock"))?;
        let loaded = lazy.rnets_loaded.fetch_add(1, Ordering::AcqRel) + 1;
        if loaded == self.rnet_shortcuts.len() {
            *self.lock_image(lazy)? = None;
        }
        Ok(())
    }

    /// Locks the lazy image slot; `Err` if a decode thread panicked while
    /// holding it.
    fn lock_image<'a>(
        &self,
        lazy: &'a LazyBacking,
    ) -> Result<std::sync::MutexGuard<'a, Option<Arc<PagedImage>>>, RoadError> {
        Ok(lazy.image.lock().map_err(|_| StorageError::LockPoisoned("lazy image"))?)
    }

    // ------------------------------------------------------------------
    // Queries — mirrors `QueryEngine` (all take `&self`)
    // ------------------------------------------------------------------

    /// Evaluates a kNN query from pages.
    pub fn knn(&self, query: &KnnQuery) -> Result<SearchResult, RoadError> {
        let mode = Mode::Knn(query.k, query.max_distance);
        let mut src = PagedSource::new(self, true);
        search::execute_source(&mut src, query.node, &query.filter, mode, &mut NoopObserver)
    }

    /// Evaluates a range query from pages.
    pub fn range(&self, query: &RangeQuery) -> Result<SearchResult, RoadError> {
        let mode = Mode::Range(query.radius);
        let mut src = PagedSource::new(self, true);
        search::execute_source(&mut src, query.node, &query.filter, mode, &mut NoopObserver)
    }

    /// Allocation-free kNN into caller-owned scratch; see
    /// [`RoadFramework::knn_with`](crate::framework::RoadFramework::knn_with).
    pub fn knn_with(
        &self,
        query: &KnnQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        let mode = Mode::Knn(query.k, query.max_distance);
        let mut src = PagedSource::new(self, true);
        search::execute_source_into(
            &mut src,
            query.node,
            &query.filter,
            mode,
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Allocation-free range query into caller-owned scratch.
    pub fn range_with(
        &self,
        query: &RangeQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        let mode = Mode::Range(query.radius);
        let mut src = PagedSource::new(self, true);
        search::execute_source_into(
            &mut src,
            query.node,
            &query.filter,
            mode,
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Evaluates a batch of kNN queries on up to `threads` scoped worker
    /// threads sharing this engine, returning hit lists in query order —
    /// same contract as [`QueryEngine::batch_knn`](crate::engine::QueryEngine::batch_knn),
    /// including the deterministic lowest-query-index error.
    pub fn batch_knn(
        &self,
        queries: &[KnnQuery],
        threads: usize,
    ) -> Result<Vec<Vec<SearchHit>>, RoadError> {
        crate::engine::run_batch(queries, threads, |q, ws, hits| self.knn_with(q, ws, hits))
    }

    /// Evaluates a batch of range queries; see [`PagedEngine::batch_knn`].
    pub fn batch_range(
        &self,
        queries: &[RangeQuery],
        threads: usize,
    ) -> Result<Vec<Vec<SearchHit>>, RoadError> {
        crate::engine::run_batch(queries, threads, |q, ws, hits| self.range_with(q, ws, hits))
    }

    /// Aggregate kNN over a query group, evaluated from pages — the same
    /// algorithm as
    /// [`RoadFramework::aggregate_knn`](crate::framework::RoadFramework::aggregate_knn)
    /// (one shared implementation), so paged and in-memory answers are
    /// identical by construction.
    pub fn aggregate_knn(&self, query: &AggregateKnnQuery) -> Result<Vec<SearchHit>, RoadError> {
        Ok(self.aggregate_knn_with_stats(query)?.0)
    }

    /// [`PagedEngine::aggregate_knn`] plus the summed work counters
    /// (including the page traffic of every expansion).
    pub fn aggregate_knn_with_stats(
        &self,
        query: &AggregateKnnQuery,
    ) -> Result<(Vec<SearchHit>, SearchStats), RoadError> {
        struct PagedBackend<'a>(&'a PagedEngine);
        impl search::AggregateBackend for PagedBackend<'_> {
            fn expand(
                &mut self,
                node: NodeId,
                filter: &ObjectFilter,
                mode: Mode,
                with_directory: bool,
            ) -> Result<SearchResult, RoadError> {
                let mut src = PagedSource::new(self.0, with_directory);
                search::execute_source(&mut src, node, filter, mode, &mut NoopObserver)
            }
        }
        search::aggregate_knn_backend(&mut PagedBackend(self), query)
    }

    /// Point-to-point network distance through the paged overlay.
    pub fn network_distance(&self, from: NodeId, to: NodeId) -> Result<Option<Weight>, RoadError> {
        let mut src = PagedSource::new(self, false);
        let res = search::execute_source(
            &mut src,
            from,
            &ObjectFilter::Any,
            Mode::ToNode(to),
            &mut NoopObserver,
        )?;
        Ok(res.distance_to_node(to))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The served hierarchy.
    pub fn hierarchy(&self) -> &RnetHierarchy {
        &self.hier
    }

    /// The metric the paged records were written for.
    pub fn metric(&self) -> WeightKind {
        self.kind
    }

    /// Number of nodes in the served network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Cumulative buffer-pool counters since the last reset. Under
    /// concurrency this equals the sum of every query's `SearchStats`
    /// page deltas (plus any prefetch traffic) — a property the paged
    /// tests assert.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Zeroes the cumulative pool counters (cache contents unchanged;
    /// in-flight queries keep their own exact tallies).
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Flushes and empties the buffer pool — the paper initialises every
    /// measured query with an empty cache. `Err` when a pool lock was
    /// poisoned by a panicked serving thread.
    pub fn clear_cache(&self) -> Result<(), RoadError> {
        Ok(self.pool.clear_cache()?)
    }

    /// Buffer-pool capacity in pages (requested size rounded up to one
    /// page per stripe).
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Lock stripes of the buffer pool.
    pub fn buffer_stripes(&self) -> usize {
        self.pool.num_stripes()
    }

    /// Pages the engine's records occupy on the simulated disk.
    pub fn num_disk_pages(&self) -> usize {
        self.pool.num_pages()
    }

    /// On-disk size in bytes (pages x 4 KB).
    pub fn disk_size_bytes(&self) -> usize {
        self.pool.size_bytes()
    }

    /// Pages of the CCAM-clustered node region.
    pub fn node_region_pages(&self) -> usize {
        self.node_region_pages
    }

    /// `true` while this engine still pages shortcut Rnets in lazily from
    /// a retained image; becomes `false` once every Rnet is resident (the
    /// image is dropped at that point).
    pub fn is_lazy(&self) -> bool {
        // Introspection: recover a poisoned image lock (the Option inside
        // stays coherent) so diagnostics work after a thread died.
        self.lazy
            .as_ref()
            .is_some_and(|l| l.image.lock().unwrap_or_else(|p| p.into_inner()).is_some())
    }

    /// How many Rnets' shortcut sections have been paged in so far
    /// (equals the Rnet count for eager engines).
    pub fn rnets_loaded(&self) -> usize {
        match &self.lazy {
            None => self.hier.num_rnets(),
            Some(l) => l.rnets_loaded.load(Ordering::Acquire),
        }
    }

    /// Pages every remaining Rnet in (prefetch): a lazy engine becomes
    /// fully resident on disk, drops the retained image, and behaves like
    /// an eagerly built one from then on. The prefetch I/O appears in the
    /// cumulative [`PagedEngine::buffer_stats`] but in no query's stats.
    pub fn load_all_rnets(&self) -> Result<(), RoadError> {
        let mut tally = IoTally::default();
        for r in 0..self.hier.num_rnets() {
            self.ensure_rnet_loaded(RnetId(r as u32), &mut tally)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for PagedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedEngine")
            .field("nodes", &self.num_nodes)
            .field("disk_pages", &self.num_disk_pages())
            .field("buffer_pages", &self.buffer_capacity())
            .field("stripes", &self.buffer_stripes())
            .field("lazy", &self.is_lazy())
            .field("rnets_loaded", &self.rnets_loaded())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The SearchSource implementation: records in, visits out
// ---------------------------------------------------------------------------

/// One query's private view of the engine: a shared engine reference plus
/// the query's own I/O tally and a pooled record buffer. Creating one is
/// what makes `&self` queries possible — all mutable state is here, not in
/// the engine.
struct PagedSource<'a> {
    eng: &'a PagedEngine,
    /// `false` for point-to-point routing: the directory is not consulted,
    /// matching the in-memory engine's `ad: None` behaviour.
    use_directory: bool,
    /// This query's exact I/O deltas (never polluted by other threads).
    tally: IoTally,
    /// Reusable record read buffer (thread-local pool).
    scratch: Vec<u8>,
}

impl<'a> PagedSource<'a> {
    fn new(eng: &'a PagedEngine, use_directory: bool) -> Self {
        PagedSource { eng, use_directory, tally: IoTally::default(), scratch: take_scratch() }
    }

    /// Reads the record at `loc` through the buffer pool into the scratch
    /// buffer. Every page the record touches costs one logical pool read
    /// (and a fault when cold), charged to this query's tally. `Err` when
    /// a pool lock is poisoned.
    // roadlint: allow(panic-fn) reason="page slice bounded by take = min(left, page remainder); offset < PAGE_SIZE by unpack_loc's 12-bit field"
    fn read_record(&mut self, loc: u64) -> Result<(), RoadError> {
        let (page, offset, len) = unpack_loc(loc);
        let eng = self.eng;
        let buf = &mut self.scratch;
        buf.clear();
        buf.reserve(len);
        let mut p = page;
        let mut off = offset as usize;
        let mut left = len;
        while left > 0 {
            let take = left.min(PAGE_SIZE - off);
            eng.pool.with_page(PageId(p), &mut self.tally, |pg| {
                buf.extend_from_slice(&pg.bytes()[off..off + take]);
            })?;
            left -= take;
            off = 0;
            p += 1;
        }
        Ok(())
    }
}

impl Drop for PagedSource<'_> {
    fn drop(&mut self) {
        put_scratch(std::mem::take(&mut self.scratch));
    }
}

// Per-query record accessors: called once per settled node / consulted
// Rnet, so fresh heap allocations are banned here — every buffer is the
// pooled scratch and every map lookup is lock-free.
// roadlint: hot-path
impl SearchSource for PagedSource<'_> {
    fn num_nodes(&self) -> usize {
        self.eng.num_nodes
    }

    fn hierarchy(&self) -> &Arc<RnetHierarchy> {
        &self.eng.hier
    }

    fn has_directory(&self) -> bool {
        self.use_directory
    }

    fn objects_at(
        &mut self,
        n: NodeId,
        visit: &mut dyn FnMut(u64, CategoryId, Weight),
    ) -> Result<(), RoadError> {
        let eng = self.eng;
        let Some(loc) = eng
            .assoc_index
            .get(&mut TalliedPool { pool: &eng.pool, tally: &mut self.tally }, n.0 as u64)?
        else {
            return Ok(());
        };
        self.read_record(loc)?;
        let buf = &self.scratch;
        let count = record_count(buf, OBJ_ENTRY)?;
        for i in 0..count {
            let at = 4 + i * OBJ_ENTRY;
            let id = read_u64_at(buf, at);
            let category = CategoryId(read_u16_at(buf, at + 8));
            let offset = Weight::new(read_f64_at(buf, at + 10));
            visit(id, category, offset);
        }
        Ok(())
    }

    fn rnet_may_match(&mut self, r: RnetId, filter: &ObjectFilter) -> Result<bool, RoadError> {
        let eng = self.eng;
        let Some(loc) = eng
            .abstract_index
            .get(&mut TalliedPool { pool: &eng.pool, tally: &mut self.tally }, r.0 as u64)?
        else {
            return Ok(false); // no record = empty abstract = cannot match
        };
        self.read_record(loc)?;
        let buf = &self.scratch;
        if buf.len() < 8 {
            return Err(StorageError::CorruptPage("abstract record shorter than header").into());
        }
        let total = read_u32_at(buf, 0);
        let ncats = read_u32_at(buf, 4) as usize;
        if ncats > (buf.len() - 8) / CAT_ENTRY {
            return Err(StorageError::CorruptPage("abstract category count exceeds record").into());
        }
        let has_cat = |c: CategoryId| -> bool {
            (0..ncats).any(|i| read_u16_at(buf, 8 + i * CAT_ENTRY) == c.0)
        };
        Ok(total > 0
            && match filter {
                ObjectFilter::Any => true,
                ObjectFilter::Category(c) => has_cat(*c),
                ObjectFilter::AnyOf(cs) => cs.iter().any(|&c| has_cat(c)),
            })
    }

    fn edges_at(
        &mut self,
        n: NodeId,
        leaf: Option<RnetId>,
        visit: &mut dyn FnMut(EdgeId, u32, Weight),
    ) -> Result<(), RoadError> {
        let loc = self
            .eng
            .node_loc
            .get(n.index())
            .copied()
            .ok_or(StorageError::Internal("node id outside the node-record table"))?;
        self.read_record(loc)?;
        let buf = &self.scratch;
        let count = record_count(buf, ADJ_ENTRY)?;
        for i in 0..count {
            let at = 4 + i * ADJ_ENTRY;
            if let Some(r) = leaf {
                if read_u32_at(buf, at + 8) != r.0 {
                    continue;
                }
            }
            let w = Weight::new(read_f64_at(buf, at + 12));
            if w.is_infinite() {
                continue; // closed edge: stored for containment, never relaxed
            }
            let e = EdgeId(read_u32_at(buf, at));
            let v = read_u32_at(buf, at + 4);
            visit(e, v, w);
        }
        Ok(())
    }

    fn shortcuts_at(
        &mut self,
        r: RnetId,
        n: NodeId,
        visit: &mut dyn FnMut(u32, Weight),
    ) -> Result<(), RoadError> {
        let eng = self.eng;
        eng.ensure_rnet_loaded(r, &mut self.tally)?;
        let Some(&loc) = eng
            .rnet_shortcuts
            .get(r.0 as usize)
            .and_then(|slot| slot.get())
            .and_then(|locs| locs.get(&n.0))
        else {
            return Ok(());
        };
        self.read_record(loc)?;
        let buf = &self.scratch;
        let count = record_count(buf, SC_ENTRY)?;
        for i in 0..count {
            let at = 4 + i * SC_ENTRY;
            visit(read_u32_at(buf, at), Weight::new(read_f64_at(buf, at + 4)));
        }
        Ok(())
    }

    fn rnet_contains_node(&mut self, r: RnetId, t: NodeId) -> Result<bool, RoadError> {
        let hier = &self.eng.hier;
        if hier.is_border_of(t, r) {
            return Ok(true);
        }
        let lv = hier.level_of(r);
        let loc = self
            .eng
            .node_loc
            .get(t.index())
            .copied()
            .ok_or(StorageError::Internal("node id outside the node-record table"))?;
        self.read_record(loc)?;
        let hier = &self.eng.hier;
        let buf = &self.scratch;
        let count = record_count(buf, ADJ_ENTRY)?;
        for i in 0..count {
            let leaf = RnetId(read_u32_at(buf, 4 + i * ADJ_ENTRY + 8));
            if leaf.is_valid() && hier.level_of(leaf) >= lv && hier.ancestor_at(leaf, lv) == r {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn io_counters(&self) -> (u64, u64) {
        (self.tally.logical_reads, self.tally.page_faults)
    }
}
// roadlint: end hot-path

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::model::ObjectId;
    use road_network::generator::simple;

    fn setup(objects: usize) -> (RoadFramework, AssociationDirectory) {
        let g = simple::grid(8, 8, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
        for i in 0..objects {
            let e = edges[(i * 13) % edges.len()];
            let o = Object::new(
                ObjectId(i as u64),
                e,
                (i % 10) as f64 / 10.0,
                CategoryId((i % 3) as u16),
            );
            ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
        }
        (fw, ad)
    }

    #[test]
    fn loc_packing_roundtrips() {
        for (p, o, l) in [(0u32, 0u32, 0usize), (1, 4095, 1), (123_456, 17, 900_000)] {
            let (p2, o2, l2) = unpack_loc(pack_loc(p, o, l).unwrap());
            assert_eq!((p, o, l), (p2, o2, l2));
        }
        assert!(pack_loc(0, 0, 1 << LOC_LEN_BITS).is_err());
    }

    #[test]
    fn paged_agrees_with_memory_engine() {
        let (fw, ad) = setup(12);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for n in 0..64u32 {
            let q = KnnQuery::new(NodeId(n), 3);
            let mem = engine.knn(&q).unwrap();
            let paged = disk.knn(&q).unwrap();
            assert_eq!(mem.hits, paged.hits, "kNN diverged at node {n}");
            let rq = RangeQuery::new(NodeId(n), Weight::new(3.0));
            assert_eq!(engine.range(&rq).unwrap().hits, disk.range(&rq).unwrap().hits);
        }
    }

    #[test]
    fn paged_reports_page_traffic() {
        let (fw, ad) = setup(8);
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        let res = disk.knn(&KnnQuery::new(NodeId(0), 2)).unwrap();
        assert!(res.stats.pages_read > 0);
        assert!(res.stats.page_faults > 0, "cold pool must fault");
        assert!(res.stats.buffer_hit_rate() <= 1.0);
        // Warm repeat: same answer, fewer faults.
        let warm = disk.knn(&KnnQuery::new(NodeId(0), 2)).unwrap();
        assert_eq!(res.hits, warm.hits);
        assert!(warm.stats.page_faults <= res.stats.page_faults);
    }

    #[test]
    fn network_distance_matches_framework() {
        let (fw, ad) = setup(4);
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for (a, b) in [(0u32, 63u32), (5, 40), (17, 18)] {
            assert_eq!(
                disk.network_distance(NodeId(a), NodeId(b)).unwrap(),
                fw.network_distance(NodeId(a), NodeId(b)).unwrap(),
            );
        }
    }

    #[test]
    fn lazy_open_pages_rnets_on_first_touch() {
        let (fw, ad) = setup(10);
        let objects: Vec<Object> = ad.objects().cloned().collect();
        let image = PagedImage::open(fw.to_bytes()).unwrap();
        let disk = PagedEngine::open(image, objects, PagedOptions::default()).unwrap();
        assert!(disk.is_lazy());
        assert_eq!(disk.rnets_loaded(), 0, "nothing paged in before the first query");
        let engine = QueryEngine::new(fw.clone(), ad);
        let q = KnnQuery::new(NodeId(27), 4);
        assert_eq!(disk.knn(&q).unwrap().hits, engine.knn(&q).unwrap().hits);
        let after_first = disk.rnets_loaded();
        assert!(after_first > 0, "the query must have paged Rnets in");
        assert!(after_first <= disk.hierarchy().num_rnets());
        disk.load_all_rnets().unwrap();
        assert_eq!(disk.rnets_loaded(), disk.hierarchy().num_rnets());
        assert!(!disk.is_lazy(), "a fully resident replica must drop the retained image");
        // Still serves correctly without the image.
        assert_eq!(disk.knn(&q).unwrap().hits, engine.knn(&q).unwrap().hits);
    }

    /// Satellite regression: a lazily opened image whose bytes are
    /// corrupted *after* `open` (so open-time validation passed) must
    /// surface the decode failure as `Err` through the query path — never
    /// as a silently empty shortcut set, which would be indistinguishable
    /// from "Rnet has no shortcuts" and produce wrong answers.
    #[test]
    fn corrupted_after_open_surfaces_as_query_error() {
        let (fw, ad) = setup(1); // one object: most Rnets bypass via shortcuts
        let objects: Vec<Object> = ad.objects().cloned().collect();
        let mut image = PagedImage::open(fw.to_bytes()).unwrap();
        // Corrupt every section that actually carries a shortcut record:
        // overwrite the first record's node-id field with an id far
        // outside the network, which open-time validation would have
        // rejected had it been there.
        let mut corrupted = 0;
        for r in 0..image.num_rnets() {
            let (start, end) = image.rnet_range(r);
            if end - start > 12 {
                image.bytes_mut()[start + 12..start + 16].copy_from_slice(&u32::MAX.to_le_bytes());
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "world must have shortcut sections to corrupt");
        let engine = QueryEngine::new(fw.clone(), ad);
        let disk = PagedEngine::open(image, objects, PagedOptions::default()).unwrap();
        let mut failures = 0;
        for n in 0..64u32 {
            let q = KnnQuery::new(NodeId(n), 2);
            match disk.knn(&q) {
                // A query that never needed a corrupt section must still
                // answer correctly.
                Ok(res) => assert_eq!(res.hits, engine.knn(&q).unwrap().hits),
                Err(e) => {
                    assert!(e.to_string().contains("shortcut section"), "unexpected error: {e}");
                    failures += 1;
                }
            }
        }
        assert!(failures > 0, "no query touched a corrupt section — test is vacuous");
        // The corrupt Rnets must not be marked resident.
        assert!(disk.rnets_loaded() < disk.hierarchy().num_rnets());
        assert!(disk.load_all_rnets().is_err(), "prefetch must also surface the corruption");
    }

    /// Closed roads (infinite weight) must not change the paged engine's
    /// traversal relative to the in-memory one — including ToNode
    /// routing, whose Rnet-containment test must see closed edges.
    #[test]
    fn closed_edges_keep_paged_and_memory_in_lockstep() {
        let (mut fw, ad) = setup(10);
        for i in [3usize, 17, 40] {
            let e = fw.network().edge_ids().nth(i).unwrap();
            if ad.objects_on_edge(e).next().is_none() {
                fw.set_edge_weight(e, Weight::INFINITY).unwrap();
            }
        }
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for n in (0..64u32).step_by(5) {
            let q = KnnQuery::new(NodeId(n), 4);
            let mem = engine.knn(&q).unwrap();
            let paged = disk.knn(&q).unwrap();
            assert_eq!(mem.hits, paged.hits);
            assert_eq!(mem.stats.edges_relaxed, paged.stats.edges_relaxed);
            assert_eq!(mem.stats.rnets_bypassed, paged.stats.rnets_bypassed);
            assert_eq!(mem.stats.rnets_descended, paged.stats.rnets_descended);
            assert_eq!(
                disk.network_distance(NodeId(n), NodeId(63 - n)).unwrap(),
                fw.network_distance(NodeId(n), NodeId(63 - n)).unwrap(),
            );
        }
    }

    /// A quick in-crate concurrency smoke (the heavy sweeps live in the
    /// `paged_tests` harness): four threads on one shared engine, answers
    /// byte-identical to the in-memory engine.
    #[test]
    fn shared_engine_serves_threads() {
        let (fw, ad) = setup(12);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(8)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let disk = &disk;
                let engine = &engine;
                scope.spawn(move || {
                    let mut ws = SearchWorkspace::new();
                    let mut hits = Vec::new();
                    for i in 0..32u32 {
                        let q = KnnQuery::new(NodeId((i * 7 + t * 13) % 64), 3);
                        disk.knn_with(&q, &mut ws, &mut hits).unwrap();
                        assert_eq!(hits, engine.knn(&q).unwrap().hits, "thread {t} query {i}");
                    }
                });
            }
        });
    }

    #[test]
    fn aggregate_knn_matches_memory_engine() {
        let (fw, ad) = setup(14);
        let disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for (nodes, k) in [
            (vec![NodeId(0), NodeId(63)], 3),
            (vec![NodeId(5), NodeId(40), NodeId(22)], 2),
            (vec![NodeId(12)], 4),
        ] {
            for agg in [crate::search::Aggregate::Sum, crate::search::Aggregate::Max] {
                let q = AggregateKnnQuery::new(nodes.clone(), k).with_aggregate(agg);
                let mem = fw.aggregate_knn(&ad, &q).unwrap();
                let paged = disk.aggregate_knn(&q).unwrap();
                assert_eq!(mem, paged, "aggregate diverged ({nodes:?}, k={k}, {agg:?})");
            }
        }
    }

    #[test]
    fn bloom_directories_are_rejected() {
        let g = simple::grid(4, 4, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(1).build().unwrap();
        let ad = AssociationDirectory::with_kind(fw.hierarchy(), AbstractKind::Bloom);
        assert!(matches!(
            PagedEngine::new(&fw, &ad, PagedOptions::default()),
            Err(RoadError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_buffer_rejected() {
        let (fw, ad) = setup(1);
        assert!(PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(0)).is_err());
        assert!(
            PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(4).with_stripes(0)).is_err()
        );
    }

    /// Satellite regression: a stripe mutex poisoned by a panicking reader
    /// must surface to later queries as `Err(Storage(LockPoisoned))` —
    /// the serving thread itself must not panic.
    #[test]
    fn poisoned_stripe_surfaces_as_query_error() {
        use road_storage::{IoTally, PageId};
        let (fw, ad) = setup(8);
        // One stripe so every page shares the mutex we are about to poison.
        let disk =
            PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(8).with_stripes(1)).unwrap();
        disk.knn(&KnnQuery::new(NodeId(0), 2)).unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut tally = IoTally::default();
            let _ = disk.pool.with_page(PageId(0), &mut tally, |_| panic!("poison the stripe"));
        }));
        let Err(err) = disk.knn(&KnnQuery::new(NodeId(0), 2)) else {
            panic!("query on a poisoned pool must fail");
        };
        assert_eq!(err, RoadError::Storage(StorageError::LockPoisoned("buffer-pool stripe")));
        // Batch serving reports the same error instead of tearing down.
        let queries = [KnnQuery::new(NodeId(1), 1), KnnQuery::new(NodeId(2), 1)];
        assert!(disk.batch_knn(&queries, 2).is_err());
    }
}
