//! Disk-resident serving: [`PagedEngine`].
//!
//! The paper evaluates ROAD as a **disk-resident** index — its headline
//! numbers count 4 KB page accesses through a 50-page LRU buffer, not CPU
//! time. The in-memory [`QueryEngine`](crate::engine::QueryEngine) cannot
//! reproduce that cost model: it serves from deserialized hash maps. This
//! module lays the same data onto real pages and serves queries through
//! the buffer pool of the [`road_storage`] crate, reproducing the paper's
//! storage stack (Section 3.4 + Section 6 methodology):
//!
//! * **Node records** — adjacency entries (edge, neighbour, leaf-Rnet,
//!   weight) packed into CCAM-clustered pages
//!   ([`road_storage::NodeClustering`], ref \[18\]): BFS-adjacent nodes
//!   share pages, so network expansion faults far less than a scattered
//!   layout would.
//! * **Shortcut records** — each border node's outgoing shortcuts within
//!   one Rnet `(target, distance)`, co-clustered with the node record
//!   when built eagerly, or paged in per Rnet on first touch when opened
//!   from a persisted image (see below). Shortcut `via` waypoints are
//!   cold path-reconstruction data and deliberately stay out of the hot
//!   records, mirroring the paper's storage discussion.
//! * **Association Directory records** — per-node object associations
//!   `(id, category, offset)` and per-Rnet object abstracts, indexed by
//!   two paged **B+-trees** keyed by node id and Rnet id — the paper's
//!   "also adopts B+-tree with unique node IDs or Rnet IDs as the search
//!   key". B+-tree pages live in the same buffer pool, so index descents
//!   cost realistic page accesses too.
//!
//! The Rnet hierarchy itself (parents, levels, border lists) stays
//! RAM-resident: it is the search skeleton, small and touched on every
//! hop.
//!
//! ## Oracle agreement
//!
//! `PagedEngine` runs the **same** expansion loop as the in-memory engine
//! — [`crate::search`]'s loop is generic over a `SearchSource`, and this
//! module only swaps the storage behind it. Record visit order matches the
//! in-memory iteration order and distances are stored as exact `f64` bits,
//! so results are byte-for-byte identical (distances, ids, tie order) at
//! *every* buffer size, including a pathological 1-page pool. The
//! `paged_tests` proptest harness pins this down.
//!
//! ## Page-granular open
//!
//! [`PagedEngine::open`] serves straight from a persisted `ROADFW01` image
//! ([`PagedImage`]) without ever materializing the in-memory shortcut
//! store: an Rnet's shortcut section is decoded and laid onto pages the
//! first time a query touches the Rnet. A cold server reaches its first
//! answer after paging in only the Rnets that query actually crossed.
//!
//! ```
//! use road_core::paged::{PagedEngine, PagedOptions};
//! use road_core::prelude::*;
//! use road_network::generator::simple;
//!
//! let net = simple::grid(8, 8, 1.0);
//! let road = RoadFramework::builder(net).fanout(4).levels(2).build().unwrap();
//! let mut pois = AssociationDirectory::new(road.hierarchy());
//! let edge = road.network().edge_ids().next().unwrap();
//! pois.insert(road.network(), road.hierarchy(), Object::new(ObjectId(1), edge, 0.5, CategoryId(0)))
//!     .unwrap();
//!
//! let mut disk = PagedEngine::new(&road, &pois, PagedOptions::default()).unwrap();
//! let res = disk.knn(&KnnQuery::new(NodeId(12), 1)).unwrap();
//! assert_eq!(res.hits.len(), 1);
//! assert!(res.stats.pages_read > 0, "served from pages");
//! ```

use crate::association::AssociationDirectory;
use crate::framework::RoadFramework;
use crate::hierarchy::{RnetHierarchy, RnetId};
use crate::model::{CategoryId, Object, ObjectFilter};
use crate::persist::PagedImage;
use crate::search::{
    self, KnnQuery, Mode, NoopObserver, RangeQuery, SearchHit, SearchResult, SearchSource,
    SearchStats,
};
use crate::workspace::SearchWorkspace;
use crate::{AbstractKind, RoadError};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::{EdgeId, NodeId, Weight};
use road_storage::{
    BPlusTree, BufferPool, BufferStats, NodeClustering, PageId, PageStore, DEFAULT_BUFFER_PAGES,
    PAGE_SIZE,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Record locations: (page, offset, length) packed into one u64
// ---------------------------------------------------------------------------

const LOC_PAGE_BITS: u32 = 28; // 2^28 pages x 4 KB = 1 TB per store
const LOC_OFFSET_BITS: u32 = 12; // offsets within a 4 KB page
const LOC_LEN_BITS: u32 = 24; // records up to 16 MB
const LOC_NONE: u64 = u64::MAX;

fn pack_loc(page: u32, offset: u32, len: usize) -> Result<u64, RoadError> {
    if (page as u64) >= (1 << LOC_PAGE_BITS)
        || (offset as u64) >= (1 << LOC_OFFSET_BITS)
        || (len as u64) >= (1 << LOC_LEN_BITS)
    {
        return Err(RoadError::InvalidConfig(format!(
            "paged record does not fit a location descriptor \
             (page {page}, offset {offset}, len {len})"
        )));
    }
    Ok(((page as u64) << (LOC_OFFSET_BITS + LOC_LEN_BITS))
        | ((offset as u64) << LOC_LEN_BITS)
        | len as u64)
}

fn unpack_loc(loc: u64) -> (u32, u32, usize) {
    let page = (loc >> (LOC_OFFSET_BITS + LOC_LEN_BITS)) as u32;
    let offset = ((loc >> LOC_LEN_BITS) & ((1 << LOC_OFFSET_BITS) - 1)) as u32;
    let len = (loc & ((1 << LOC_LEN_BITS) - 1)) as usize;
    (page, offset, len)
}

fn shortcut_key(r: RnetId, n: u32) -> u64 {
    ((r.0 as u64) << 32) | n as u64
}

// ---------------------------------------------------------------------------
// Record encodings (little-endian throughout)
// ---------------------------------------------------------------------------

/// Adjacency entry: edge id, neighbour id, leaf-Rnet id, weight bits.
const ADJ_ENTRY: usize = 4 + 4 + 4 + 8;
/// Shortcut entry: target border node, distance bits.
const SC_ENTRY: usize = 4 + 8;
/// Association entry: object id, category, offset-from-this-node bits.
const OBJ_ENTRY: usize = 8 + 2 + 8;
/// Abstract entry: category, count.
const CAT_ENTRY: usize = 2 + 4;

fn encode_node_record(
    g: &RoadNetwork,
    hier: &RnetHierarchy,
    kind: WeightKind,
    n: NodeId,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&[0; 4]); // count patched below
    let mut count = 0u32;
    // Every live neighbour entry is stored, *including* infinite-weight
    // (closed) edges: the expansion skips them at read time exactly like
    // the in-memory source, and `rnet_contains_node` must see the same
    // edge set as `MemorySource` or ToNode routing counters diverge.
    for (e, v) in g.neighbors(n) {
        let w = g.weight(e, kind);
        out.extend_from_slice(&e.0.to_le_bytes());
        out.extend_from_slice(&v.0.to_le_bytes());
        out.extend_from_slice(&hier.leaf_of_edge(e).0.to_le_bytes());
        out.extend_from_slice(&w.get().to_le_bytes());
        count += 1;
    }
    out[0..4].copy_from_slice(&count.to_le_bytes());
}

fn encode_shortcut_record(list: &[crate::shortcut::ShortcutEdge], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(list.len() as u32).to_le_bytes());
    for sc in list {
        out.extend_from_slice(&sc.to.0.to_le_bytes());
        out.extend_from_slice(&sc.dist.get().to_le_bytes());
    }
}

fn encode_assoc_record<'a>(
    objects: impl Iterator<Item = &'a Object>,
    g: &RoadNetwork,
    kind: WeightKind,
    n: NodeId,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&[0; 4]);
    let mut count = 0u32;
    for o in objects {
        out.extend_from_slice(&o.id.0.to_le_bytes());
        out.extend_from_slice(&o.category.0.to_le_bytes());
        out.extend_from_slice(&o.offset_from(g, kind, n).get().to_le_bytes());
        count += 1;
    }
    out[0..4].copy_from_slice(&count.to_le_bytes());
}

fn encode_abstract_record(total: u32, counts: &[(u16, u32)], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
    for &(cat, cnt) in counts {
        out.extend_from_slice(&cat.to_le_bytes());
        out.extend_from_slice(&cnt.to_le_bytes());
    }
}

#[inline]
fn read_u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

#[inline]
fn read_u16_at(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().unwrap())
}

#[inline]
fn read_f64_at(buf: &[u8], at: usize) -> f64 {
    f64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

// ---------------------------------------------------------------------------
// Options and the engine
// ---------------------------------------------------------------------------

/// Configuration of a [`PagedEngine`].
#[derive(Clone, Copy, Debug)]
pub struct PagedOptions {
    /// LRU buffer-pool capacity in 4 KB pages (the paper's default is 50).
    pub buffer_pages: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions { buffer_pages: DEFAULT_BUFFER_PAGES }
    }
}

impl PagedOptions {
    /// Options with an explicit buffer size.
    pub fn with_buffer_pages(buffer_pages: usize) -> Self {
        PagedOptions { buffer_pages }
    }
}

/// Where a paged engine's shortcut records come from.
enum ShortcutBacking {
    /// Everything was laid onto pages at construction.
    Eager,
    /// Rnets are decoded from the retained image on first touch.
    Lazy { image: PagedImage, loaded: Vec<bool>, rnets_loaded: usize },
}

/// A disk-resident ROAD engine: serves `knn`/`range` by reading node,
/// shortcut and directory records through an LRU buffer pool over 4 KB
/// pages, mirroring [`QueryEngine`](crate::engine::QueryEngine)'s query
/// API (methods take `&mut self` because every read moves the pool's LRU
/// state). See the [module docs](crate::paged) for the layout.
pub struct PagedEngine {
    hier: Arc<RnetHierarchy>,
    kind: WeightKind,
    num_nodes: usize,
    pool: BufferPool,
    /// Per node: packed location of its adjacency record.
    node_loc: Vec<u64>,
    /// `(rnet, border node) -> location` of the shortcut record.
    shortcut_loc: FastMap<u64, u64>,
    /// Node id -> association-record location.
    assoc_index: BPlusTree,
    /// Rnet id -> abstract-record location.
    abstract_index: BPlusTree,
    backing: ShortcutBacking,
    /// Sequential-append cursor `(page, fill)` for directory records and
    /// lazily paged-in shortcut records.
    append: Option<(u32, usize)>,
    /// Reusable record read/write buffer.
    scratch: Vec<u8>,
    node_region_pages: usize,
}

impl PagedEngine {
    /// Lays a built framework + directory onto pages **eagerly**: node and
    /// shortcut records CCAM-co-clustered, directory records B+-tree
    /// indexed. The framework and directory are *not* retained — after
    /// construction every query is answered from the page store.
    pub fn new(
        fw: &RoadFramework,
        ad: &AssociationDirectory,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        let mut eng = Self::empty(
            Arc::clone(fw.hierarchy_arc()),
            fw.metric(),
            fw.network().num_nodes(),
            opts,
        )?;
        eng.lay_node_region(fw.network(), Some(fw.shortcuts()))?;
        eng.lay_directory_region(fw.network(), ad)?;
        eng.finish_build();
        Ok(eng)
    }

    /// Opens a persisted image **page-granularly** and maps `objects` onto
    /// it: node and directory records are laid out up front (cheap), but
    /// an Rnet's shortcut section is decoded from the image and paged in
    /// only when a query first touches that Rnet.
    pub fn open(
        image: PagedImage,
        objects: Vec<Object>,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        let mut ad = AssociationDirectory::new(image.hierarchy());
        for o in objects {
            ad.insert(image.network(), image.hierarchy(), o)?;
        }
        let mut eng = Self::empty(
            Arc::clone(image.hierarchy_arc()),
            image.metric(),
            image.network().num_nodes(),
            opts,
        )?;
        eng.lay_node_region(image.network(), None)?;
        eng.lay_directory_region(image.network(), &ad)?;
        let loaded = vec![false; image.num_rnets()];
        eng.backing = ShortcutBacking::Lazy { image, loaded, rnets_loaded: 0 };
        eng.finish_build();
        Ok(eng)
    }

    fn empty(
        hier: Arc<RnetHierarchy>,
        kind: WeightKind,
        num_nodes: usize,
        opts: PagedOptions,
    ) -> Result<Self, RoadError> {
        if opts.buffer_pages == 0 {
            return Err(RoadError::InvalidConfig("buffer pool needs at least one page".into()));
        }
        let mut pool = BufferPool::new(PageStore::new(), opts.buffer_pages);
        let assoc_index = BPlusTree::new(&mut pool);
        let abstract_index = BPlusTree::new(&mut pool);
        Ok(PagedEngine {
            hier,
            kind,
            num_nodes,
            pool,
            node_loc: Vec::new(),
            shortcut_loc: FastMap::default(),
            assoc_index,
            abstract_index,
            backing: ShortcutBacking::Eager,
            append: None,
            scratch: Vec::new(),
            node_region_pages: 0,
        })
    }

    /// Lays the node region: every node's adjacency record, plus (eagerly)
    /// its outgoing shortcut records, CCAM-clustered so that BFS-adjacent
    /// nodes share pages.
    fn lay_node_region(
        &mut self,
        g: &RoadNetwork,
        shortcuts: Option<&crate::shortcut::ShortcutStore>,
    ) -> Result<(), RoadError> {
        let hier = Arc::clone(&self.hier);
        let kind = self.kind;
        let mut rec = Vec::new();
        // Blob size = node record + (eager only) its shortcut records.
        let blob_size = |n: NodeId| -> usize {
            let mut bytes = 4 + ADJ_ENTRY * g.neighbors(n).count();
            if let Some(sc) = shortcuts {
                for &r in hier.bordered_rnets(n) {
                    let list = sc.from(r, n);
                    if !list.is_empty() {
                        bytes += 4 + SC_ENTRY * list.len();
                    }
                }
            }
            bytes
        };
        let clustering = NodeClustering::build(g, blob_size);
        let base = self.pool.store().num_pages() as u32;
        for _ in 0..clustering.num_pages() {
            self.pool.alloc();
        }
        self.node_region_pages = clustering.num_pages();
        self.node_loc = vec![LOC_NONE; g.num_nodes()];
        for n in g.node_ids() {
            let loc = clustering.locate(n);
            let (page, mut offset) = (base + loc.page, loc.offset);
            encode_node_record(g, &hier, kind, n, &mut rec);
            self.write_bytes(page, offset as usize, &rec);
            self.node_loc[n.index()] = pack_loc(page, offset, rec.len())?;
            offset += rec.len() as u32;
            if let Some(sc) = shortcuts {
                for &r in hier.bordered_rnets(n) {
                    let list = sc.from(r, n);
                    if list.is_empty() {
                        continue;
                    }
                    encode_shortcut_record(list, &mut rec);
                    // A multi-page blob crosses page boundaries; recompute
                    // the page/offset split for this record's start.
                    let (p, o) = (page + offset / PAGE_SIZE as u32, offset % PAGE_SIZE as u32);
                    self.write_bytes(p, o as usize, &rec);
                    self.shortcut_loc.insert(shortcut_key(r, n.0), pack_loc(p, o, rec.len())?);
                    offset += rec.len() as u32;
                }
            }
        }
        Ok(())
    }

    /// Lays the directory region (association + abstract records) and
    /// builds the two B+-tree indexes over it.
    fn lay_directory_region(
        &mut self,
        g: &RoadNetwork,
        ad: &AssociationDirectory,
    ) -> Result<(), RoadError> {
        if ad.abstract_kind() != AbstractKind::Counts {
            return Err(RoadError::InvalidConfig(
                "paged serving requires exact-count abstracts (AbstractKind::Counts)".into(),
            ));
        }
        let hier = Arc::clone(&self.hier);
        let kind = self.kind;
        let mut rec = Vec::new();
        // Association records in node order; only nodes carrying objects.
        let mut assoc_entries = Vec::new();
        for i in 0..self.num_nodes {
            let n = NodeId(i as u32);
            if ad.objects_at_node(n).next().is_none() {
                continue;
            }
            encode_assoc_record(ad.objects_at_node(n), g, kind, n, &mut rec);
            let loc = self.append_record(&rec)?;
            assoc_entries.push((n.0 as u64, loc));
        }
        // Abstract records in Rnet order; only non-empty abstracts (an
        // absent record answers "cannot match", same as an empty abstract).
        let mut abstract_entries = Vec::new();
        for r in 0..hier.num_rnets() {
            let a = ad.abstract_of(RnetId(r as u32));
            if a.is_empty() {
                continue;
            }
            let counts = a.sorted_counts().expect("Counts kind checked above");
            encode_abstract_record(a.total(), &counts, &mut rec);
            let loc = self.append_record(&rec)?;
            abstract_entries.push((r as u64, loc));
        }
        // Index both regions (keys inserted in ascending order for a
        // deterministic tree shape).
        for (k, v) in assoc_entries {
            self.assoc_index.insert(&mut self.pool, k, v);
        }
        for (k, v) in abstract_entries {
            self.abstract_index.insert(&mut self.pool, k, v);
        }
        Ok(())
    }

    /// Build epilogue: flush everything to the store and start cold, the
    /// paper's measurement discipline.
    fn finish_build(&mut self) {
        self.pool.clear_cache();
        self.pool.reset_stats();
    }

    /// Appends a record into the sequential region (directory records and
    /// lazily paged-in shortcut records), first-fit within pages.
    fn append_record(&mut self, bytes: &[u8]) -> Result<u64, RoadError> {
        let len = bytes.len();
        if len > PAGE_SIZE {
            // Multi-page record: spans fresh consecutive pages.
            let first = self.pool.alloc();
            for _ in 1..len.div_ceil(PAGE_SIZE) {
                self.pool.alloc();
            }
            self.append = None;
            self.write_bytes(first.0, 0, bytes);
            return pack_loc(first.0, 0, len);
        }
        let (page, fill) = match self.append {
            Some((page, fill)) if fill + len <= PAGE_SIZE => (page, fill),
            _ => (self.pool.alloc().0, 0),
        };
        self.write_bytes(page, fill, bytes);
        self.append = Some((page, fill + len));
        pack_loc(page, fill as u32, len)
    }

    /// Writes `bytes` starting at (`page`, `offset`), walking page
    /// boundaries for multi-page records.
    fn write_bytes(&mut self, page: u32, offset: usize, bytes: &[u8]) {
        let mut p = page;
        let mut off = offset;
        let mut rest = bytes;
        while !rest.is_empty() {
            let take = rest.len().min(PAGE_SIZE - off);
            self.pool.with_page_mut(PageId(p), |pg| {
                pg.bytes_mut()[off..off + take].copy_from_slice(&rest[..take]);
            });
            rest = &rest[take..];
            off = 0;
            p += 1;
        }
    }

    /// Reads the record at `loc` through the buffer pool into the scratch
    /// buffer and hands the buffer out (return it by assigning
    /// `self.scratch` back). Every page the record touches costs one
    /// logical pool read (and a fault when cold).
    fn take_record(&mut self, loc: u64) -> Vec<u8> {
        let (page, offset, len) = unpack_loc(loc);
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.reserve(len);
        let mut p = page;
        let mut off = offset as usize;
        let mut left = len;
        while left > 0 {
            let take = left.min(PAGE_SIZE - off);
            self.pool.with_page(PageId(p), |pg| {
                buf.extend_from_slice(&pg.bytes()[off..off + take]);
            });
            left -= take;
            off = 0;
            p += 1;
        }
        buf
    }

    /// Pages Rnet `r`'s shortcut records in from the retained image if
    /// this engine is lazy and has not touched `r` yet. Once the last
    /// Rnet lands on pages the image is dropped — a fully resident
    /// replica must not keep a second copy of the overlay in RAM.
    fn ensure_rnet_loaded(&mut self, r: RnetId) -> bool {
        let ShortcutBacking::Lazy { image, loaded, rnets_loaded } = &mut self.backing else {
            return false;
        };
        let idx = r.0 as usize;
        if loaded[idx] {
            return false;
        }
        loaded[idx] = true;
        *rnets_loaded += 1;
        let fully_loaded = *rnets_loaded == loaded.len();
        let map = image.shortcuts_of_rnet(idx); // owned; ends the backing borrow
        let mut sources: Vec<u32> = map.keys().copied().collect();
        sources.sort_unstable();
        let mut rec = Vec::new();
        for from in sources {
            encode_shortcut_record(&map[&from], &mut rec);
            let loc = self
                .append_record(&rec)
                .expect("shortcut records are far below the record size cap");
            self.shortcut_loc.insert(shortcut_key(r, from), loc);
        }
        if fully_loaded {
            self.backing = ShortcutBacking::Eager;
        }
        true
    }

    // ------------------------------------------------------------------
    // Queries — mirrors `QueryEngine`
    // ------------------------------------------------------------------

    /// Evaluates a kNN query from pages.
    pub fn knn(&mut self, query: &KnnQuery) -> Result<SearchResult, RoadError> {
        let mode = Mode::Knn(query.k, query.max_distance);
        let mut src = PagedSource { eng: self, use_directory: true };
        search::execute_source(&mut src, query.node, &query.filter, mode, &mut NoopObserver)
    }

    /// Evaluates a range query from pages.
    pub fn range(&mut self, query: &RangeQuery) -> Result<SearchResult, RoadError> {
        let mode = Mode::Range(query.radius);
        let mut src = PagedSource { eng: self, use_directory: true };
        search::execute_source(&mut src, query.node, &query.filter, mode, &mut NoopObserver)
    }

    /// Allocation-free kNN into caller-owned scratch; see
    /// [`RoadFramework::knn_with`](crate::framework::RoadFramework::knn_with).
    pub fn knn_with(
        &mut self,
        query: &KnnQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        let mode = Mode::Knn(query.k, query.max_distance);
        let mut src = PagedSource { eng: self, use_directory: true };
        search::execute_source_into(
            &mut src,
            query.node,
            &query.filter,
            mode,
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Allocation-free range query into caller-owned scratch.
    pub fn range_with(
        &mut self,
        query: &RangeQuery,
        ws: &mut SearchWorkspace,
        hits: &mut Vec<SearchHit>,
    ) -> Result<SearchStats, RoadError> {
        let mode = Mode::Range(query.radius);
        let mut src = PagedSource { eng: self, use_directory: true };
        search::execute_source_into(
            &mut src,
            query.node,
            &query.filter,
            mode,
            &mut NoopObserver,
            ws,
            hits,
        )
    }

    /// Point-to-point network distance through the paged overlay.
    pub fn network_distance(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Result<Option<Weight>, RoadError> {
        let mut src = PagedSource { eng: self, use_directory: false };
        let res = search::execute_source(
            &mut src,
            from,
            &ObjectFilter::Any,
            Mode::ToNode(to),
            &mut NoopObserver,
        )?;
        Ok(res.distance_to_node(to))
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The served hierarchy.
    pub fn hierarchy(&self) -> &RnetHierarchy {
        &self.hier
    }

    /// The metric the paged records were written for.
    pub fn metric(&self) -> WeightKind {
        self.kind
    }

    /// Number of nodes in the served network.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Cumulative buffer-pool counters since the last reset.
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Zeroes the pool counters (cache contents unchanged).
    pub fn reset_io_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Flushes and empties the buffer pool — the paper initialises every
    /// measured query with an empty cache.
    pub fn clear_cache(&mut self) {
        self.pool.clear_cache();
    }

    /// Buffer-pool capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Pages the engine's records occupy on the simulated disk.
    pub fn num_disk_pages(&self) -> usize {
        self.pool.store().num_pages()
    }

    /// On-disk size in bytes (pages x 4 KB).
    pub fn disk_size_bytes(&self) -> usize {
        self.pool.store().size_bytes()
    }

    /// Pages of the CCAM-clustered node region.
    pub fn node_region_pages(&self) -> usize {
        self.node_region_pages
    }

    /// `true` while this engine still pages shortcut Rnets in lazily from
    /// a retained image; becomes `false` once every Rnet is resident (the
    /// image is dropped at that point).
    pub fn is_lazy(&self) -> bool {
        matches!(self.backing, ShortcutBacking::Lazy { .. })
    }

    /// How many Rnets' shortcut sections have been paged in so far
    /// (equals the Rnet count for eager engines).
    pub fn rnets_loaded(&self) -> usize {
        match &self.backing {
            ShortcutBacking::Eager => self.hier.num_rnets(),
            ShortcutBacking::Lazy { rnets_loaded, .. } => *rnets_loaded,
        }
    }

    /// Pages every remaining Rnet in (prefetch): a lazy engine becomes
    /// fully resident on disk, drops the retained image, and behaves like
    /// an eagerly built one from then on.
    pub fn load_all_rnets(&mut self) {
        for r in 0..self.hier.num_rnets() {
            self.ensure_rnet_loaded(RnetId(r as u32));
        }
    }
}

impl std::fmt::Debug for PagedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedEngine")
            .field("nodes", &self.num_nodes)
            .field("disk_pages", &self.num_disk_pages())
            .field("buffer_pages", &self.buffer_capacity())
            .field("lazy", &self.is_lazy())
            .field("rnets_loaded", &self.rnets_loaded())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The SearchSource implementation: records in, visits out
// ---------------------------------------------------------------------------

struct PagedSource<'a> {
    eng: &'a mut PagedEngine,
    /// `false` for point-to-point routing: the directory is not consulted,
    /// matching the in-memory engine's `ad: None` behaviour.
    use_directory: bool,
}

impl SearchSource for PagedSource<'_> {
    fn num_nodes(&self) -> usize {
        self.eng.num_nodes
    }

    fn hierarchy(&self) -> &Arc<RnetHierarchy> {
        &self.eng.hier
    }

    fn has_directory(&self) -> bool {
        self.use_directory
    }

    fn objects_at(&mut self, n: NodeId, visit: &mut dyn FnMut(u64, CategoryId, Weight)) {
        let Some(loc) = self.eng.assoc_index.get(&mut self.eng.pool, n.0 as u64) else {
            return;
        };
        let buf = self.eng.take_record(loc);
        let count = read_u32_at(&buf, 0) as usize;
        for i in 0..count {
            let at = 4 + i * OBJ_ENTRY;
            let id = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            let category = CategoryId(read_u16_at(&buf, at + 8));
            let offset = Weight::new(read_f64_at(&buf, at + 10));
            visit(id, category, offset);
        }
        self.eng.scratch = buf;
    }

    fn rnet_may_match(&mut self, r: RnetId, filter: &ObjectFilter) -> bool {
        let Some(loc) = self.eng.abstract_index.get(&mut self.eng.pool, r.0 as u64) else {
            return false; // no record = empty abstract = cannot match
        };
        let buf = self.eng.take_record(loc);
        let total = read_u32_at(&buf, 0);
        let ncats = read_u32_at(&buf, 4) as usize;
        let has_cat = |c: CategoryId| -> bool {
            (0..ncats).any(|i| read_u16_at(&buf, 8 + i * CAT_ENTRY) == c.0)
        };
        let matched = total > 0
            && match filter {
                ObjectFilter::Any => true,
                ObjectFilter::Category(c) => has_cat(*c),
                ObjectFilter::AnyOf(cs) => cs.iter().any(|&c| has_cat(c)),
            };
        self.eng.scratch = buf;
        matched
    }

    fn edges_at(
        &mut self,
        n: NodeId,
        leaf: Option<RnetId>,
        visit: &mut dyn FnMut(EdgeId, u32, Weight),
    ) {
        let loc = self.eng.node_loc[n.index()];
        let buf = self.eng.take_record(loc);
        let count = read_u32_at(&buf, 0) as usize;
        for i in 0..count {
            let at = 4 + i * ADJ_ENTRY;
            if let Some(r) = leaf {
                if read_u32_at(&buf, at + 8) != r.0 {
                    continue;
                }
            }
            let w = Weight::new(read_f64_at(&buf, at + 12));
            if w.is_infinite() {
                continue; // closed edge: stored for containment, never relaxed
            }
            let e = EdgeId(read_u32_at(&buf, at));
            let v = read_u32_at(&buf, at + 4);
            visit(e, v, w);
        }
        self.eng.scratch = buf;
    }

    fn shortcuts_at(&mut self, r: RnetId, n: NodeId, visit: &mut dyn FnMut(u32, Weight)) {
        self.eng.ensure_rnet_loaded(r);
        let Some(&loc) = self.eng.shortcut_loc.get(&shortcut_key(r, n.0)) else {
            return;
        };
        let buf = self.eng.take_record(loc);
        let count = read_u32_at(&buf, 0) as usize;
        for i in 0..count {
            let at = 4 + i * SC_ENTRY;
            visit(read_u32_at(&buf, at), Weight::new(read_f64_at(&buf, at + 4)));
        }
        self.eng.scratch = buf;
    }

    fn rnet_contains_node(&mut self, r: RnetId, t: NodeId) -> bool {
        let hier = Arc::clone(&self.eng.hier);
        if hier.is_border_of(t, r) {
            return true;
        }
        let lv = hier.level_of(r);
        let loc = self.eng.node_loc[t.index()];
        let buf = self.eng.take_record(loc);
        let count = read_u32_at(&buf, 0) as usize;
        let mut contained = false;
        for i in 0..count {
            let leaf = RnetId(read_u32_at(&buf, 4 + i * ADJ_ENTRY + 8));
            if leaf.is_valid() && hier.level_of(leaf) >= lv && hier.ancestor_at(leaf, lv) == r {
                contained = true;
                break;
            }
        }
        self.eng.scratch = buf;
        contained
    }

    fn io_counters(&self) -> (u64, u64) {
        let st = self.eng.pool.stats();
        (st.logical_reads, st.page_faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::model::ObjectId;
    use road_network::generator::simple;

    fn setup(objects: usize) -> (RoadFramework, AssociationDirectory) {
        let g = simple::grid(8, 8, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
        for i in 0..objects {
            let e = edges[(i * 13) % edges.len()];
            let o = Object::new(
                ObjectId(i as u64),
                e,
                (i % 10) as f64 / 10.0,
                CategoryId((i % 3) as u16),
            );
            ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
        }
        (fw, ad)
    }

    #[test]
    fn loc_packing_roundtrips() {
        for (p, o, l) in [(0u32, 0u32, 0usize), (1, 4095, 1), (123_456, 17, 900_000)] {
            let (p2, o2, l2) = unpack_loc(pack_loc(p, o, l).unwrap());
            assert_eq!((p, o, l), (p2, o2, l2));
        }
        assert!(pack_loc(0, 0, 1 << LOC_LEN_BITS).is_err());
    }

    #[test]
    fn paged_agrees_with_memory_engine() {
        let (fw, ad) = setup(12);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let mut disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for n in 0..64u32 {
            let q = KnnQuery::new(NodeId(n), 3);
            let mem = engine.knn(&q).unwrap();
            let paged = disk.knn(&q).unwrap();
            assert_eq!(mem.hits, paged.hits, "kNN diverged at node {n}");
            let rq = RangeQuery::new(NodeId(n), Weight::new(3.0));
            assert_eq!(engine.range(&rq).unwrap().hits, disk.range(&rq).unwrap().hits);
        }
    }

    #[test]
    fn paged_reports_page_traffic() {
        let (fw, ad) = setup(8);
        let mut disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        let res = disk.knn(&KnnQuery::new(NodeId(0), 2)).unwrap();
        assert!(res.stats.pages_read > 0);
        assert!(res.stats.page_faults > 0, "cold pool must fault");
        assert!(res.stats.buffer_hit_rate() <= 1.0);
        // Warm repeat: same answer, fewer faults.
        let warm = disk.knn(&KnnQuery::new(NodeId(0), 2)).unwrap();
        assert_eq!(res.hits, warm.hits);
        assert!(warm.stats.page_faults <= res.stats.page_faults);
    }

    #[test]
    fn network_distance_matches_framework() {
        let (fw, ad) = setup(4);
        let mut disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for (a, b) in [(0u32, 63u32), (5, 40), (17, 18)] {
            assert_eq!(
                disk.network_distance(NodeId(a), NodeId(b)).unwrap(),
                fw.network_distance(NodeId(a), NodeId(b)).unwrap(),
            );
        }
    }

    #[test]
    fn lazy_open_pages_rnets_on_first_touch() {
        let (fw, ad) = setup(10);
        let objects: Vec<Object> = ad.objects().cloned().collect();
        let image = PagedImage::open(fw.to_bytes()).unwrap();
        let mut disk = PagedEngine::open(image, objects, PagedOptions::default()).unwrap();
        assert!(disk.is_lazy());
        assert_eq!(disk.rnets_loaded(), 0, "nothing paged in before the first query");
        let engine = QueryEngine::new(fw.clone(), ad);
        let q = KnnQuery::new(NodeId(27), 4);
        assert_eq!(disk.knn(&q).unwrap().hits, engine.knn(&q).unwrap().hits);
        let after_first = disk.rnets_loaded();
        assert!(after_first > 0, "the query must have paged Rnets in");
        assert!(after_first <= disk.hierarchy().num_rnets());
        disk.load_all_rnets();
        assert_eq!(disk.rnets_loaded(), disk.hierarchy().num_rnets());
        assert!(!disk.is_lazy(), "a fully resident replica must drop the retained image");
        // Still serves correctly without the image.
        assert_eq!(disk.knn(&q).unwrap().hits, engine.knn(&q).unwrap().hits);
    }

    /// Closed roads (infinite weight) must not change the paged engine's
    /// traversal relative to the in-memory one — including ToNode
    /// routing, whose Rnet-containment test must see closed edges.
    #[test]
    fn closed_edges_keep_paged_and_memory_in_lockstep() {
        let (mut fw, ad) = setup(10);
        for i in [3usize, 17, 40] {
            let e = fw.network().edge_ids().nth(i).unwrap();
            if ad.objects_on_edge(e).next().is_none() {
                fw.set_edge_weight(e, Weight::INFINITY).unwrap();
            }
        }
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let mut disk = PagedEngine::new(&fw, &ad, PagedOptions::default()).unwrap();
        for n in (0..64u32).step_by(5) {
            let q = KnnQuery::new(NodeId(n), 4);
            let mem = engine.knn(&q).unwrap();
            let paged = disk.knn(&q).unwrap();
            assert_eq!(mem.hits, paged.hits);
            assert_eq!(mem.stats.edges_relaxed, paged.stats.edges_relaxed);
            assert_eq!(mem.stats.rnets_bypassed, paged.stats.rnets_bypassed);
            assert_eq!(mem.stats.rnets_descended, paged.stats.rnets_descended);
            assert_eq!(
                disk.network_distance(NodeId(n), NodeId(63 - n)).unwrap(),
                fw.network_distance(NodeId(n), NodeId(63 - n)).unwrap(),
            );
        }
    }

    #[test]
    fn bloom_directories_are_rejected() {
        let g = simple::grid(4, 4, 1.0);
        let fw = RoadFramework::builder(g).fanout(4).levels(1).build().unwrap();
        let ad = AssociationDirectory::with_kind(fw.hierarchy(), AbstractKind::Bloom);
        assert!(matches!(
            PagedEngine::new(&fw, &ad, PagedOptions::default()),
            Err(RoadError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_buffer_rejected() {
        let (fw, ad) = setup(1);
        assert!(PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(0)).is_err());
    }
}
