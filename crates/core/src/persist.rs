//! Framework persistence: serialize a built `RoadFramework` — network,
//! Rnet assignment and all shortcuts — to a flat byte buffer, and restore
//! it without re-partitioning or re-running any Dijkstra.
//!
//! Rationale: the expensive part of ROAD is constructing the Route Overlay
//! (Figures 13/14/19 measure it in minutes-to-hours at paper scale). A
//! deployment builds once, ships the overlay, and every server loads it in
//! I/O-bound time. Association Directories are intentionally *not* part of
//! the format — objects belong to content providers and are remapped on
//! the fly, which is the framework's separation-of-concerns story.
//!
//! The format is versioned and little-endian throughout:
//!
//! ```text
//! magic "ROADFW01"
//! u8  metric          (0 distance, 1 travel-time, 2 toll)
//! u8  prune_transitive
//! u32 fanout, u32 levels
//! u32 num_nodes, then per node: f64 x, f64 y
//! u32 edge_slots, then per slot:
//!     u32 a, u32 b, f64 distance, f64 travel_time, f64 toll, u8 deleted
//! per slot: u32 leaf index (u32::MAX = none/deleted)
//! shortcut store (see `ShortcutStore::serialize_into`)
//! ```

use crate::framework::{RoadConfig, RoadFramework};
use crate::hierarchy::RnetHierarchy;
use crate::shortcut::ShortcutStore;
use crate::RoadError;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, Point, Weight};

const MAGIC: &[u8; 8] = b"ROADFW01";
const NO_LEAF: u32 = u32::MAX;

fn metric_tag(kind: WeightKind) -> u8 {
    match kind {
        WeightKind::Distance => 0,
        WeightKind::TravelTime => 1,
        WeightKind::Toll => 2,
    }
}

fn metric_from_tag(tag: u8) -> Result<WeightKind, RoadError> {
    match tag {
        0 => Ok(WeightKind::Distance),
        1 => Ok(WeightKind::TravelTime),
        2 => Ok(WeightKind::Toll),
        other => Err(corrupt(format!("unknown metric tag {other}"))),
    }
}

fn corrupt(msg: impl Into<String>) -> RoadError {
    RoadError::InvalidConfig(format!("persisted framework: {}", msg.into()))
}

/// Serializes a built framework.
pub fn to_bytes(fw: &RoadFramework) -> Vec<u8> {
    let g = fw.network();
    let hier = fw.hierarchy();
    // Rough capacity: coords + edges dominate.
    let mut out = Vec::with_capacity(64 + g.num_nodes() * 16 + g.edge_slots() * 40);
    out.extend_from_slice(MAGIC);
    out.push(metric_tag(fw.metric()));
    out.push(fw.config().shortcuts.prune_transitive as u8);
    out.extend_from_slice(&(hier.fanout() as u32).to_le_bytes());
    out.extend_from_slice(&hier.levels().to_le_bytes());
    out.extend_from_slice(&(g.num_nodes() as u32).to_le_bytes());
    for n in g.node_ids() {
        let p = g.coord(n);
        out.extend_from_slice(&p.x.to_le_bytes());
        out.extend_from_slice(&p.y.to_le_bytes());
    }
    out.extend_from_slice(&(g.edge_slots() as u32).to_le_bytes());
    for i in 0..g.edge_slots() {
        let e = EdgeId(i as u32);
        let rec = g.edge(e);
        let (a, b) = rec.endpoints();
        out.extend_from_slice(&a.0.to_le_bytes());
        out.extend_from_slice(&b.0.to_le_bytes());
        for kind in WeightKind::ALL {
            out.extend_from_slice(&rec.weight(kind).get().to_le_bytes());
        }
        out.push(rec.is_deleted() as u8);
    }
    for i in 0..g.edge_slots() {
        let idx = hier.leaf_index_of_edge(EdgeId(i as u32)).unwrap_or(NO_LEAF);
        out.extend_from_slice(&idx.to_le_bytes());
    }
    fw.shortcuts().serialize_into(&mut out);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RoadError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| corrupt("truncated buffer"))?;
        self.pos = end;
        Ok(s)
    }
    /// Fails early when fewer than `n` bytes remain — the guard that keeps
    /// absurd element counts in corrupted images from driving giant
    /// allocations or long decode loops.
    fn require(&self, n: usize) -> Result<(), RoadError> {
        if self.pos.checked_add(n).map(|end| end <= self.buf.len()) != Some(true) {
            return Err(corrupt("truncated buffer (count exceeds remaining bytes)"));
        }
        Ok(())
    }
    fn u8(&mut self) -> Result<u8, RoadError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, RoadError> {
        let b = self.take(4)?.first_chunk::<4>().copied();
        Ok(u32::from_le_bytes(b.ok_or_else(|| corrupt("truncated u32"))?))
    }
    fn f64(&mut self) -> Result<f64, RoadError> {
        let b = self.take(8)?.first_chunk::<8>().copied();
        Ok(f64::from_le_bytes(b.ok_or_else(|| corrupt("truncated f64"))?))
    }
}

/// Everything before the shortcut-store section: configuration, network and
/// hierarchy. Shared by the monolithic and the page-granular open paths.
// roadlint: decode-fn
fn parse_prelude(r: &mut Reader) -> Result<(RoadConfig, RoadNetwork, RnetHierarchy), RoadError> {
    if r.take(8)? != MAGIC {
        return Err(corrupt("bad magic (not a ROAD framework file?)"));
    }
    let metric = metric_from_tag(r.u8()?)?;
    let prune = r.u8()? != 0;
    let fanout = r.u32()? as usize;
    let levels = r.u32()?;

    // --- network -------------------------------------------------------
    let num_nodes = r.u32()? as usize;
    r.require(num_nodes.checked_mul(16).ok_or_else(|| corrupt("node count overflow"))?)?;
    let mut builder = RoadNetwork::builder();
    for _ in 0..num_nodes {
        let x = r.f64()?;
        let y = r.f64()?;
        builder.add_node(Point::new(x, y));
    }
    let edge_slots = r.u32()? as usize;
    r.require(edge_slots.checked_mul(33).ok_or_else(|| corrupt("edge count overflow"))?)?;
    let mut deleted = Vec::new();
    for i in 0..edge_slots {
        let a = road_network::NodeId(r.u32()?);
        let b = road_network::NodeId(r.u32()?);
        let d = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        let t = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        let toll = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        builder.add_edge_full(a, b, d, t, toll).map_err(|e| corrupt(e.to_string()))?;
        if r.u8()? != 0 {
            deleted.push(EdgeId(i as u32));
        }
    }
    let mut g = builder.build();
    for e in deleted {
        g.remove_edge(e).map_err(|e2| corrupt(e2.to_string()))?;
    }

    // --- hierarchy -----------------------------------------------------
    r.require(edge_slots.checked_mul(4).ok_or_else(|| corrupt("edge count overflow"))?)?;
    let mut leaf_idx = Vec::with_capacity(edge_slots);
    for _ in 0..edge_slots {
        leaf_idx.push(r.u32()?);
    }
    for e in g.edge_ids() {
        if leaf_idx[e.index()] == NO_LEAF {
            return Err(corrupt(format!("live edge {e} has no leaf assignment")));
        }
    }
    let hier = RnetHierarchy::from_leaf_assignment(&g, fanout, levels, |e| leaf_idx[e.index()])?;

    let mut cfg = RoadConfig { metric, ..Default::default() };
    cfg.hierarchy.fanout = fanout;
    cfg.hierarchy.levels = levels;
    cfg.shortcuts.prune_transitive = prune;
    Ok((cfg, g, hier))
}

/// Restores a framework serialized by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<RoadFramework, RoadError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let (cfg, g, hier) = parse_prelude(&mut r)?;

    // --- shortcuts -----------------------------------------------------
    let mut pos = r.pos;
    let shortcuts =
        ShortcutStore::deserialize(bytes, &mut pos, g.num_nodes() as u32, hier.num_rnets())
            .map_err(corrupt)?;
    if pos != bytes.len() {
        return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
    }

    RoadFramework::from_parts(g, cfg, hier, shortcuts)
}

/// A `ROADFW01` image opened **page-granularly**: the prelude (config,
/// network, hierarchy) is parsed eagerly, but the shortcut store — the
/// bulk of a built overlay — is only *walked* to record and validate each
/// Rnet's byte range. Individual Rnets are decoded on demand, which lets
/// [`crate::paged::PagedEngine::open`] page shortcut data in on first
/// touch instead of deserializing the whole store up front.
///
/// Because `open` fully validates every section (counts against remaining
/// bytes, node ids against the network), later per-Rnet decodes cannot
/// fail: corruption is rejected at open time, exactly like the monolithic
/// [`from_bytes`] path.
pub struct PagedImage {
    bytes: Vec<u8>,
    cfg: RoadConfig,
    g: std::sync::Arc<RoadNetwork>,
    hier: std::sync::Arc<RnetHierarchy>,
    /// Byte range of each Rnet's section within `bytes`.
    rnet_ranges: Vec<(usize, usize)>,
}

impl PagedImage {
    /// Opens an image, validating it end to end without materializing the
    /// shortcut store.
    // roadlint: decode-fn
    pub fn open(bytes: Vec<u8>) -> Result<Self, RoadError> {
        let mut r = Reader { buf: &bytes, pos: 0 };
        let (cfg, g, hier) = parse_prelude(&mut r)?;
        let num_nodes = g.num_nodes() as u32;
        let mut pos = r.pos;
        let num_rnets = {
            let end = pos + 4;
            let b = bytes.get(pos..end).and_then(|b| b.first_chunk::<4>());
            let b = *b.ok_or_else(|| corrupt("truncated shortcut store"))?;
            pos = end;
            u32::from_le_bytes(b) as usize
        };
        if num_rnets != hier.num_rnets() {
            return Err(corrupt(format!(
                "shortcut store describes {num_rnets} Rnets, hierarchy has {}",
                hier.num_rnets()
            )));
        }
        let mut rnet_ranges = Vec::with_capacity(num_rnets);
        for _ in 0..num_rnets {
            let start = pos;
            ShortcutStore::skip_rnet_section(&bytes, &mut pos, num_nodes).map_err(corrupt)?;
            rnet_ranges.push((start, pos));
        }
        if pos != bytes.len() {
            return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
        }
        Ok(PagedImage {
            bytes,
            cfg,
            g: std::sync::Arc::new(g),
            hier: std::sync::Arc::new(hier),
            rnet_ranges,
        })
    }

    /// Opens an image file page-granularly.
    pub fn open_file(path: impl AsRef<std::path::Path>) -> Result<Self, RoadError> {
        let bytes = std::fs::read(path).map_err(|e| corrupt(format!("cannot read file: {e}")))?;
        Self::open(bytes)
    }

    /// The restored road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.g
    }

    /// The restored Rnet hierarchy.
    pub fn hierarchy(&self) -> &RnetHierarchy {
        &self.hier
    }

    /// Shared handle to the hierarchy (retained by the paged engine).
    pub(crate) fn hierarchy_arc(&self) -> &std::sync::Arc<RnetHierarchy> {
        &self.hier
    }

    /// The persisted framework configuration.
    pub fn config(&self) -> &RoadConfig {
        &self.cfg
    }

    /// The metric the persisted shortcuts were built for.
    pub fn metric(&self) -> WeightKind {
        self.cfg.metric
    }

    /// Number of Rnets whose shortcut sections the image carries.
    pub fn num_rnets(&self) -> usize {
        self.rnet_ranges.len()
    }

    /// Serialized size of one Rnet's shortcut section in bytes.
    pub fn rnet_section_bytes(&self, r: usize) -> usize {
        let (start, end) = self.rnet_ranges[r];
        end - start
    }

    /// Decodes one Rnet's shortcut map — the per-Rnet unit of lazy
    /// loading. Cheap for object-free Rnets, and never touches any other
    /// Rnet's bytes.
    ///
    /// Fallible even though `open` validated every section: the decode
    /// runs arbitrarily later, and bytes that changed in the meantime
    /// (torn mmap, bit rot, a buggy writer) must surface as an error
    /// through the query path — not as a silently empty shortcut set,
    /// which would produce *wrong answers* indistinguishable from "this
    /// Rnet has no shortcuts".
    pub(crate) fn shortcuts_of_rnet(
        &self,
        r: usize,
    ) -> Result<road_network::hash::FastMap<u32, Vec<crate::shortcut::ShortcutEdge>>, RoadError>
    {
        let (start, _) = self.rnet_ranges[r];
        let mut pos = start;
        ShortcutStore::decode_rnet_section(&self.bytes, &mut pos, self.g.num_nodes() as u32)
            .map_err(|e| {
                corrupt(format!(
                    "Rnet {r} shortcut section no longer decodes (image corrupted after \
                     open?): {e}"
                ))
            })
    }

    /// Materializes the full framework (decodes every Rnet) — the upgrade
    /// path from a page-granular open to in-memory serving.
    pub fn into_framework(self) -> Result<RoadFramework, RoadError> {
        let maps = (0..self.rnet_ranges.len())
            .map(|r| self.shortcuts_of_rnet(r))
            .collect::<Result<Vec<_>, _>>()?;
        let shortcuts = ShortcutStore::from_rnet_maps(maps);
        RoadFramework::from_shared_parts(self.g, self.cfg, self.hier, shortcuts)
    }

    /// Byte range of Rnet `r`'s shortcut section (corruption tests).
    #[cfg(test)]
    pub(crate) fn rnet_range(&self, r: usize) -> (usize, usize) {
        self.rnet_ranges[r]
    }

    /// Mutable image bytes — only for tests that corrupt a validated
    /// image *after* open to exercise the query-time decode-failure path.
    #[cfg(test)]
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl std::fmt::Debug for PagedImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedImage")
            .field("bytes", &self.bytes.len())
            .field("nodes", &self.g.num_nodes())
            .field("rnets", &self.rnet_ranges.len())
            .finish()
    }
}

/// Saves to a file.
pub fn save_to(fw: &RoadFramework, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(fw))
}

/// Loads from a file.
pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<RoadFramework, RoadError> {
    let bytes = std::fs::read(path).map_err(|e| corrupt(format!("cannot read file: {e}")))?;
    from_bytes(&bytes)
}
