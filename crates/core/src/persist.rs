//! Framework persistence: serialize a built `RoadFramework` — network,
//! Rnet assignment and all shortcuts — to a flat byte buffer, and restore
//! it without re-partitioning or re-running any Dijkstra.
//!
//! Rationale: the expensive part of ROAD is constructing the Route Overlay
//! (Figures 13/14/19 measure it in minutes-to-hours at paper scale). A
//! deployment builds once, ships the overlay, and every server loads it in
//! I/O-bound time. Association Directories are intentionally *not* part of
//! the format — objects belong to content providers and are remapped on
//! the fly, which is the framework's separation-of-concerns story.
//!
//! The format is versioned and little-endian throughout:
//!
//! ```text
//! magic "ROADFW01"
//! u8  metric          (0 distance, 1 travel-time, 2 toll)
//! u8  prune_transitive
//! u32 fanout, u32 levels
//! u32 num_nodes, then per node: f64 x, f64 y
//! u32 edge_slots, then per slot:
//!     u32 a, u32 b, f64 distance, f64 travel_time, f64 toll, u8 deleted
//! per slot: u32 leaf index (u32::MAX = none/deleted)
//! shortcut store (see `ShortcutStore::serialize_into`)
//! ```

use crate::framework::{RoadConfig, RoadFramework};
use crate::hierarchy::RnetHierarchy;
use crate::shortcut::ShortcutStore;
use crate::RoadError;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::{EdgeId, Point, Weight};

const MAGIC: &[u8; 8] = b"ROADFW01";
const NO_LEAF: u32 = u32::MAX;

fn metric_tag(kind: WeightKind) -> u8 {
    match kind {
        WeightKind::Distance => 0,
        WeightKind::TravelTime => 1,
        WeightKind::Toll => 2,
    }
}

fn metric_from_tag(tag: u8) -> Result<WeightKind, RoadError> {
    match tag {
        0 => Ok(WeightKind::Distance),
        1 => Ok(WeightKind::TravelTime),
        2 => Ok(WeightKind::Toll),
        other => Err(corrupt(format!("unknown metric tag {other}"))),
    }
}

fn corrupt(msg: impl Into<String>) -> RoadError {
    RoadError::InvalidConfig(format!("persisted framework: {}", msg.into()))
}

/// Serializes a built framework.
pub fn to_bytes(fw: &RoadFramework) -> Vec<u8> {
    let g = fw.network();
    let hier = fw.hierarchy();
    // Rough capacity: coords + edges dominate.
    let mut out = Vec::with_capacity(64 + g.num_nodes() * 16 + g.edge_slots() * 40);
    out.extend_from_slice(MAGIC);
    out.push(metric_tag(fw.metric()));
    out.push(fw.config().shortcuts.prune_transitive as u8);
    out.extend_from_slice(&(hier.fanout() as u32).to_le_bytes());
    out.extend_from_slice(&hier.levels().to_le_bytes());
    out.extend_from_slice(&(g.num_nodes() as u32).to_le_bytes());
    for n in g.node_ids() {
        let p = g.coord(n);
        out.extend_from_slice(&p.x.to_le_bytes());
        out.extend_from_slice(&p.y.to_le_bytes());
    }
    out.extend_from_slice(&(g.edge_slots() as u32).to_le_bytes());
    for i in 0..g.edge_slots() {
        let e = EdgeId(i as u32);
        let rec = g.edge(e);
        let (a, b) = rec.endpoints();
        out.extend_from_slice(&a.0.to_le_bytes());
        out.extend_from_slice(&b.0.to_le_bytes());
        for kind in WeightKind::ALL {
            out.extend_from_slice(&rec.weight(kind).get().to_le_bytes());
        }
        out.push(rec.is_deleted() as u8);
    }
    for i in 0..g.edge_slots() {
        let idx = hier.leaf_index_of_edge(EdgeId(i as u32)).unwrap_or(NO_LEAF);
        out.extend_from_slice(&idx.to_le_bytes());
    }
    fw.shortcuts().serialize_into(&mut out);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RoadError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| corrupt("truncated buffer"))?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, RoadError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, RoadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, RoadError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Restores a framework serialized by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<RoadFramework, RoadError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(corrupt("bad magic (not a ROAD framework file?)"));
    }
    let metric = metric_from_tag(r.u8()?)?;
    let prune = r.u8()? != 0;
    let fanout = r.u32()? as usize;
    let levels = r.u32()?;

    // --- network -------------------------------------------------------
    let num_nodes = r.u32()? as usize;
    let mut builder = RoadNetwork::builder();
    for _ in 0..num_nodes {
        let x = r.f64()?;
        let y = r.f64()?;
        builder.add_node(Point::new(x, y));
    }
    let edge_slots = r.u32()? as usize;
    let mut deleted = Vec::new();
    for i in 0..edge_slots {
        let a = road_network::NodeId(r.u32()?);
        let b = road_network::NodeId(r.u32()?);
        let d = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        let t = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        let toll = Weight::try_new(r.f64()?).map_err(|e| corrupt(e.to_string()))?;
        builder.add_edge_full(a, b, d, t, toll).map_err(|e| corrupt(e.to_string()))?;
        if r.u8()? != 0 {
            deleted.push(EdgeId(i as u32));
        }
    }
    let mut g = builder.build();
    for e in deleted {
        g.remove_edge(e).map_err(|e2| corrupt(e2.to_string()))?;
    }

    // --- hierarchy -----------------------------------------------------
    let mut leaf_idx = Vec::with_capacity(edge_slots);
    for _ in 0..edge_slots {
        leaf_idx.push(r.u32()?);
    }
    for e in g.edge_ids() {
        if leaf_idx[e.index()] == NO_LEAF {
            return Err(corrupt(format!("live edge {e} has no leaf assignment")));
        }
    }
    let hier = RnetHierarchy::from_leaf_assignment(&g, fanout, levels, |e| leaf_idx[e.index()])?;

    // --- shortcuts -----------------------------------------------------
    let mut pos = r.pos;
    let shortcuts = ShortcutStore::deserialize(bytes, &mut pos).map_err(corrupt)?;
    if pos != bytes.len() {
        return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
    }

    let mut cfg = RoadConfig { metric, ..Default::default() };
    cfg.hierarchy.fanout = fanout;
    cfg.hierarchy.levels = levels;
    cfg.shortcuts.prune_transitive = prune;
    RoadFramework::from_parts(g, cfg, hier, shortcuts)
}

/// Saves to a file.
pub fn save_to(fw: &RoadFramework, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(fw))
}

/// Loads from a file.
pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<RoadFramework, RoadError> {
    let bytes = std::fs::read(path).map_err(|e| corrupt(format!("cannot read file: {e}")))?;
    from_bytes(&bytes)
}
