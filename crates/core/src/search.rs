//! LDSQ evaluation: `kNNSearch`, `RangeSearch` and `ChoosePath`
//! (Section 4, Figures 9 and 10).
//!
//! The engine is a network expansion over the Route Overlay: a priority
//! queue holds pending *nodes and objects* in non-descending distance
//! order. Settling a node looks its objects up in the Association
//! Directory and then runs `ChoosePath`, which walks the node's shortcut
//! tree top-down: an Rnet whose object abstract cannot match the query's
//! filter is **bypassed** — its border nodes are enqueued through
//! shortcuts without visiting anything inside — while Rnets that may
//! contain matches are *descended* level by level until physical edges are
//! relaxed. The first `k` objects popped are the kNNs; a range search
//! terminates when the expansion front passes the radius.

use crate::association::AssociationDirectory;
use crate::framework::RoadFramework;
use crate::hierarchy::RnetId;
use crate::model::{ObjectFilter, ObjectId};
use crate::RoadError;
use road_network::dijkstra;
use road_network::hash::{FastMap, FastSet};
use road_network::path::Path;
use road_network::{EdgeId, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A k-nearest-neighbour query (e.g. Q2 in the paper's introduction).
#[derive(Clone, Debug)]
pub struct KnnQuery {
    /// The query node `n_q`.
    pub node: NodeId,
    /// Number of neighbours to retrieve.
    pub k: usize,
    /// Attribute predicate `A`.
    pub filter: ObjectFilter,
    /// Optional distance cap: the *bounded kNN* combination ("the 5
    /// nearest hotels, but only within 20 minutes"). `None` = plain kNN.
    pub max_distance: Option<Weight>,
}

impl KnnQuery {
    /// A kNN query with no attribute filter.
    pub fn new(node: NodeId, k: usize) -> Self {
        KnnQuery { node, k, filter: ObjectFilter::Any, max_distance: None }
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Caps the distance (bounded kNN). The search stops at the cap even
    /// when fewer than `k` objects exist inside it.
    pub fn within(mut self, max_distance: Weight) -> Self {
        self.max_distance = Some(max_distance);
        self
    }
}

/// A range query (e.g. Q1 in the paper's introduction).
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// The query node `n_q`.
    pub node: NodeId,
    /// Distance bound `D` under the framework's metric.
    pub radius: Weight,
    /// Attribute predicate `A`.
    pub filter: ObjectFilter,
}

impl RangeQuery {
    /// A range query with no attribute filter.
    pub fn new(node: NodeId, radius: Weight) -> Self {
        RangeQuery { node, radius, filter: ObjectFilter::Any }
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// One answer object with its network distance from the query node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchHit {
    /// The object.
    pub object: ObjectId,
    /// `||n_q, o||`.
    pub distance: Weight,
}

/// How an aggregate query combines the distances from its query nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Aggregate {
    /// Minimise the total distance over all query nodes (a meeting point
    /// cheap for the whole group).
    #[default]
    Sum,
    /// Minimise the worst distance over all query nodes (fair for the
    /// farthest member).
    Max,
}

impl Aggregate {
    pub(crate) fn combine(self, acc: Weight, d: Weight) -> Weight {
        match self {
            Aggregate::Sum => acc + d,
            Aggregate::Max => acc.max(d),
        }
    }
}

/// An aggregate k-nearest-neighbour query over a *group* of query nodes
/// (the ANN queries of the paper's ref \[19\], evaluated here on the ROAD
/// overlay): find the k objects minimising the aggregate of their network
/// distances from every group member.
#[derive(Clone, Debug)]
pub struct AggregateKnnQuery {
    /// The query group `Q` (at least one node).
    pub nodes: Vec<NodeId>,
    /// Number of answers.
    pub k: usize,
    /// Attribute predicate.
    pub filter: ObjectFilter,
    /// Distance combinator.
    pub aggregate: Aggregate,
}

impl AggregateKnnQuery {
    /// A sum-aggregate query with no filter.
    pub fn new(nodes: Vec<NodeId>, k: usize) -> Self {
        AggregateKnnQuery { nodes, k, filter: ObjectFilter::Any, aggregate: Aggregate::Sum }
    }

    /// Sets the combinator.
    pub fn with_aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregate = aggregate;
        self
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// Work counters of one search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled (popped un-visited from the queue).
    pub nodes_settled: usize,
    /// Physical edges relaxed.
    pub edges_relaxed: usize,
    /// Shortcuts relaxed (jumps taken over bypassed Rnets).
    pub shortcuts_taken: usize,
    /// Rnets bypassed after an abstract miss.
    pub rnets_bypassed: usize,
    /// Rnets descended into because their abstract may match.
    pub rnets_descended: usize,
    /// Object abstracts consulted.
    pub abstract_checks: usize,
    /// Objects read from the directory at settled nodes.
    pub objects_read: usize,
    /// Priority-queue pushes.
    pub heap_pushes: usize,
}

/// Hook for I/O accounting: the experiment harness maps these events onto
/// simulated pages. All methods default to no-ops.
pub trait SearchObserver {
    /// A node record was loaded (adjacency + shortcut tree).
    fn node_settled(&mut self, _n: NodeId) {}
    /// An Rnet abstract was consulted in the Association Directory.
    fn abstract_checked(&mut self, _r: RnetId) {}
    /// An object record was read.
    fn object_read(&mut self, _o: ObjectId) {}
}

/// The default do-nothing observer.
pub struct NoopObserver;
impl SearchObserver for NoopObserver {}

/// How a hop in the predecessor chain was made.
#[derive(Clone, Copy, Debug)]
enum Hop {
    Edge(EdgeId),
    Shortcut(RnetId),
}

/// Result of a kNN or range search.
pub struct SearchResult {
    /// Answer objects in non-descending distance order.
    pub hits: Vec<SearchHit>,
    /// Work counters.
    pub stats: SearchStats,
    source: NodeId,
    dist: FastMap<u32, Weight>,
    pred: FastMap<u32, (u32, Hop)>,
}

impl SearchResult {
    /// The settled network distance of `n`, if the search reached it.
    pub fn distance_to_node(&self, n: NodeId) -> Option<Weight> {
        self.dist.get(&n.0).copied()
    }

    /// Reconstructs the full physical path from the query node to `n`,
    /// expanding every shortcut hop. `None` if the search never settled
    /// `n`.
    pub fn path_to_node(&self, fw: &RoadFramework, n: NodeId) -> Option<Path> {
        self.dist.get(&n.0)?;
        let mut hops = Vec::new();
        let mut cur = n.0;
        while cur != self.source.0 {
            let &(prev, hop) = self.pred.get(&cur)?;
            hops.push((prev, hop, cur));
            cur = prev;
        }
        hops.reverse();
        let mut path = Path::trivial(self.source);
        for (prev, hop, cur) in hops {
            let seg = match hop {
                Hop::Edge(e) => Path::from_parts(
                    vec![NodeId(prev), NodeId(cur)],
                    vec![e],
                    fw.network().weight(e, fw.metric()),
                ),
                Hop::Shortcut(r) => {
                    let sc = fw.shortcuts().between(r, NodeId(prev), NodeId(cur))?;
                    fw.shortcuts().expand(
                        fw.network(),
                        fw.hierarchy(),
                        fw.metric(),
                        r,
                        NodeId(prev),
                        sc,
                    )?
                }
            };
            path.extend(&seg);
        }
        Some(path)
    }

    /// Path to a hit: the node path to the cheaper endpoint of the
    /// object's edge, plus `(edge, offset along it)` for the last leg.
    pub fn path_to_hit(
        &self,
        fw: &RoadFramework,
        ad: &AssociationDirectory,
        hit: &SearchHit,
    ) -> Option<(Path, EdgeId, Weight)> {
        let object = ad.object(hit.object)?;
        let (a, b) = fw.network().edge(object.edge).endpoints();
        let kind = fw.metric();
        let via_a = self.distance_to_node(a).map(|d| d + object.offset_from(fw.network(), kind, a));
        let via_b = self.distance_to_node(b).map(|d| d + object.offset_from(fw.network(), kind, b));
        let endpoint = match (via_a, via_b) {
            (Some(da), Some(db)) => {
                if da <= db {
                    a
                } else {
                    b
                }
            }
            (Some(_), None) => a,
            (None, Some(_)) => b,
            (None, None) => return None,
        };
        let path = self.path_to_node(fw, endpoint)?;
        let offset = object.offset_from(fw.network(), kind, endpoint);
        Some((path, object.edge, offset))
    }
}

/// Search mode: the three termination disciplines of the engine.
pub(crate) enum Mode {
    /// k results, optionally capped by a distance bound.
    Knn(usize, Option<Weight>),
    Range(Weight),
    /// Point-to-point distance query: expand until the target settles.
    /// With no objects to find, every Rnet not containing the target is
    /// bypassed, giving HEPV/HiTi-style hierarchical routing for free.
    ToNode(NodeId),
}

#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
enum QueueKey {
    Object(u64),
    Node(u32),
}

/// Core expansion shared by kNN, range and point-to-point queries.
pub(crate) fn execute(
    fw: &RoadFramework,
    ad: Option<&AssociationDirectory>,
    source: NodeId,
    filter: &ObjectFilter,
    mode: Mode,
    observer: &mut dyn SearchObserver,
) -> Result<SearchResult, RoadError> {
    let g = fw.network();
    let hier = fw.hierarchy();
    let shortcuts = fw.shortcuts();
    let kind = fw.metric();
    if source.index() >= g.num_nodes() {
        return Err(RoadError::NodeOutOfBounds(source));
    }

    let mut stats = SearchStats::default();
    let mut hits: Vec<SearchHit> = Vec::new();
    let mut dist: FastMap<u32, Weight> = FastMap::default();
    let mut pred: FastMap<u32, (u32, Hop)> = FastMap::default();
    let mut settled_nodes: FastSet<u32> = FastSet::default();
    let mut seen_objects: FastSet<u64> = FastSet::default();
    let mut heap: BinaryHeap<Reverse<(Weight, QueueKey)>> = BinaryHeap::new();

    let want = match mode {
        Mode::Knn(k, _) => k,
        _ => usize::MAX,
    };
    let bound = match mode {
        Mode::Knn(_, b) => b,
        Mode::Range(r) => Some(r),
        Mode::ToNode(_) => None,
    };
    if want == 0 {
        return Ok(SearchResult { hits, stats, source, dist, pred });
    }

    dist.insert(source.0, Weight::ZERO);
    heap.push(Reverse((Weight::ZERO, QueueKey::Node(source.0))));
    stats.heap_pushes += 1;

    // Local helper: relax an edge or shortcut towards `to`.
    macro_rules! relax {
        ($from:expr, $to:expr, $nd:expr, $hop:expr) => {{
            let cur = dist.get(&$to).copied().unwrap_or(Weight::INFINITY);
            if $nd < cur && !settled_nodes.contains(&$to) {
                dist.insert($to, $nd);
                pred.insert($to, ($from, $hop));
                heap.push(Reverse(($nd, QueueKey::Node($to))));
                stats.heap_pushes += 1;
            }
        }};
    }

    while let Some(Reverse((d, key))) = heap.pop() {
        match key {
            QueueKey::Object(oid) => {
                if !seen_objects.insert(oid) {
                    continue;
                }
                hits.push(SearchHit { object: ObjectId(oid), distance: d });
                if hits.len() >= want {
                    break;
                }
            }
            QueueKey::Node(n) => {
                if !settled_nodes.insert(n) {
                    continue; // stale entry
                }
                if d > dist.get(&n).copied().unwrap_or(Weight::INFINITY) {
                    continue;
                }
                stats.nodes_settled += 1;
                observer.node_settled(NodeId(n));
                if let Some(b) = bound {
                    if d > b {
                        break; // expansion front passed the cap
                    }
                }
                if let Mode::ToNode(t) = mode {
                    if t.0 == n {
                        break;
                    }
                }
                // --- SearchObject: collect objects at this node --------
                if let Some(ad) = ad {
                    for object in ad.objects_at_node(NodeId(n)) {
                        stats.objects_read += 1;
                        observer.object_read(object.id);
                        if !filter.matches(object) || seen_objects.contains(&object.id.0) {
                            continue;
                        }
                        let total = d + object.offset_from(g, kind, NodeId(n));
                        if let Some(b) = bound {
                            if total > b {
                                continue;
                            }
                        }
                        heap.push(Reverse((total, QueueKey::Object(object.id.0))));
                        stats.heap_pushes += 1;
                    }
                }
                // --- ChoosePath: pick edges and shortcuts to relax -----
                let bordered = hier.bordered_rnets(NodeId(n));
                if bordered.is_empty() {
                    // Interior node: the shortcut tree is a single leaf
                    // holding the physical edges.
                    for (e, v) in g.neighbors(NodeId(n)) {
                        let w = g.weight(e, kind);
                        if w.is_infinite() {
                            continue;
                        }
                        stats.edges_relaxed += 1;
                        relax!(n, v.0, d + w, Hop::Edge(e));
                    }
                    continue;
                }
                let top_level = hier.level_of(bordered[0]);
                let mut stack: Vec<RnetId> =
                    bordered.iter().copied().filter(|&r| hier.level_of(r) == top_level).collect();
                while let Some(r) = stack.pop() {
                    stats.abstract_checks += 1;
                    observer.abstract_checked(r);
                    let may_match = ad.map(|ad| ad.rnet_may_match(r, filter)).unwrap_or(false);
                    let must_enter = match mode {
                        Mode::ToNode(t) => rnet_contains_node(fw, r, t),
                        _ => false,
                    };
                    if !may_match && !must_enter {
                        // Bypass: jump to the Rnet's other borders.
                        stats.rnets_bypassed += 1;
                        for sc in shortcuts.from(r, NodeId(n)) {
                            stats.shortcuts_taken += 1;
                            relax!(n, sc.to.0, d + sc.dist, Hop::Shortcut(r));
                        }
                    } else if hier.is_leaf(r) {
                        stats.rnets_descended += 1;
                        for (e, v) in g.neighbors(NodeId(n)) {
                            if hier.leaf_of_edge(e) != r {
                                continue;
                            }
                            let w = g.weight(e, kind);
                            if w.is_infinite() {
                                continue;
                            }
                            stats.edges_relaxed += 1;
                            relax!(n, v.0, d + w, Hop::Edge(e));
                        }
                    } else {
                        stats.rnets_descended += 1;
                        let lv = hier.level_of(r);
                        for &c in bordered {
                            if hier.level_of(c) == lv + 1 && hier.parent(c) == r {
                                stack.push(c);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(SearchResult { hits, stats, source, dist, pred })
}

/// Does Rnet `r` contain node `t` (as member or border)?
fn rnet_contains_node(fw: &RoadFramework, r: RnetId, t: NodeId) -> bool {
    let hier = fw.hierarchy();
    if hier.is_border_of(t, r) {
        return true;
    }
    let lv = hier.level_of(r);
    fw.network().neighbors(t).any(|(e, _)| hier.rnet_of_edge_at(e, lv) == r)
}

/// Brute-force oracle used by tests and benchmarks: plain network
/// expansion (no shortcuts, no abstracts), the INE algorithm of ref \[16\].
pub fn oracle_knn(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    query: &KnnQuery,
) -> Vec<SearchHit> {
    oracle(fw, ad, query.node, &query.filter, Some(query.k), query.max_distance)
}

/// Brute-force range oracle.
pub fn oracle_range(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    query: &RangeQuery,
) -> Vec<SearchHit> {
    oracle(fw, ad, query.node, &query.filter, None, Some(query.radius))
}

fn oracle(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    source: NodeId,
    filter: &ObjectFilter,
    k: Option<usize>,
    radius: Option<Weight>,
) -> Vec<SearchHit> {
    let g = fw.network();
    let kind = fw.metric();
    let mut dij = dijkstra::Dijkstra::for_network(g);
    let mut best: FastMap<u64, Weight> = FastMap::default();
    dij.expand(g, kind, source, |n, d| {
        if let Some(r) = radius {
            if d > r {
                return dijkstra::Control::Break;
            }
        }
        for object in ad.objects_at_node(n) {
            if !filter.matches(object) {
                continue;
            }
            let total = d + object.offset_from(g, kind, n);
            let cur = best.get(&object.id.0).copied().unwrap_or(Weight::INFINITY);
            if total < cur {
                best.insert(object.id.0, total);
            }
        }
        dijkstra::Control::Continue
    });
    let mut hits: Vec<SearchHit> = best
        .into_iter()
        .map(|(o, d)| SearchHit { object: ObjectId(o), distance: d })
        .filter(|h| radius.map(|r| h.distance <= r).unwrap_or(true))
        .collect();
    hits.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.object.cmp(&b.object)));
    if let Some(k) = k {
        hits.truncate(k);
    }
    hits
}
