//! LDSQ evaluation: `kNNSearch`, `RangeSearch` and `ChoosePath`
//! (Section 4, Figures 9 and 10).
//!
//! The engine is a network expansion over the Route Overlay: a priority
//! queue holds pending *nodes and objects* in non-descending distance
//! order. Settling a node looks its objects up in the Association
//! Directory and then runs `ChoosePath`, which walks the node's shortcut
//! tree top-down: an Rnet whose object abstract cannot match the query's
//! filter is **bypassed** — its border nodes are enqueued through
//! shortcuts without visiting anything inside — while Rnets that may
//! contain matches are *descended* level by level until physical edges are
//! relaxed. The first `k` objects popped are the kNNs; a range search
//! terminates when the expansion front passes the radius.
// roadlint: serving-path

use crate::association::AssociationDirectory;
use crate::framework::RoadFramework;
use crate::hierarchy::RnetId;
use crate::model::{ObjectFilter, ObjectId};
use crate::workspace::{self, Hop, PooledWorkspace, QueueKey, SearchWorkspace};
use crate::RoadError;
use road_network::dijkstra;
use road_network::hash::FastMap;
use road_network::path::Path;
use road_network::{EdgeId, NodeId, Weight};

/// A k-nearest-neighbour query (e.g. Q2 in the paper's introduction).
#[derive(Clone, Debug)]
pub struct KnnQuery {
    /// The query node `n_q`.
    pub node: NodeId,
    /// Number of neighbours to retrieve.
    pub k: usize,
    /// Attribute predicate `A`.
    pub filter: ObjectFilter,
    /// Optional distance cap: the *bounded kNN* combination ("the 5
    /// nearest hotels, but only within 20 minutes"). `None` = plain kNN.
    pub max_distance: Option<Weight>,
}

impl KnnQuery {
    /// A kNN query with no attribute filter.
    pub fn new(node: NodeId, k: usize) -> Self {
        KnnQuery { node, k, filter: ObjectFilter::Any, max_distance: None }
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Caps the distance (bounded kNN). The search stops at the cap even
    /// when fewer than `k` objects exist inside it.
    pub fn within(mut self, max_distance: Weight) -> Self {
        self.max_distance = Some(max_distance);
        self
    }
}

/// A range query (e.g. Q1 in the paper's introduction).
#[derive(Clone, Debug)]
pub struct RangeQuery {
    /// The query node `n_q`.
    pub node: NodeId,
    /// Distance bound `D` under the framework's metric.
    pub radius: Weight,
    /// Attribute predicate `A`.
    pub filter: ObjectFilter,
}

impl RangeQuery {
    /// A range query with no attribute filter.
    pub fn new(node: NodeId, radius: Weight) -> Self {
        RangeQuery { node, radius, filter: ObjectFilter::Any }
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// One answer object with its network distance from the query node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchHit {
    /// The object.
    pub object: ObjectId,
    /// `||n_q, o||`.
    pub distance: Weight,
}

/// How an aggregate query combines the distances from its query nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Aggregate {
    /// Minimise the total distance over all query nodes (a meeting point
    /// cheap for the whole group).
    #[default]
    Sum,
    /// Minimise the worst distance over all query nodes (fair for the
    /// farthest member).
    Max,
}

impl Aggregate {
    /// Folds one member distance into a running aggregate.
    pub fn combine(self, acc: Weight, d: Weight) -> Weight {
        match self {
            Aggregate::Sum => acc + d,
            Aggregate::Max => acc.max(d),
        }
    }
}

/// An aggregate k-nearest-neighbour query over a *group* of query nodes
/// (the ANN queries of the paper's ref \[19\], evaluated here on the ROAD
/// overlay): find the k objects minimising the aggregate of their network
/// distances from every group member.
#[derive(Clone, Debug)]
pub struct AggregateKnnQuery {
    /// The query group `Q` (at least one node).
    pub nodes: Vec<NodeId>,
    /// Number of answers.
    pub k: usize,
    /// Attribute predicate.
    pub filter: ObjectFilter,
    /// Distance combinator.
    pub aggregate: Aggregate,
}

impl AggregateKnnQuery {
    /// A sum-aggregate query with no filter.
    pub fn new(nodes: Vec<NodeId>, k: usize) -> Self {
        AggregateKnnQuery { nodes, k, filter: ObjectFilter::Any, aggregate: Aggregate::Sum }
    }

    /// Sets the combinator.
    pub fn with_aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregate = aggregate;
        self
    }

    /// Adds an attribute filter.
    pub fn with_filter(mut self, filter: ObjectFilter) -> Self {
        self.filter = filter;
        self
    }
}

/// Work counters of one search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes settled (popped un-visited from the queue).
    pub nodes_settled: usize,
    /// Physical edges relaxed.
    pub edges_relaxed: usize,
    /// Shortcuts relaxed (jumps taken over bypassed Rnets).
    pub shortcuts_taken: usize,
    /// Rnets bypassed after an abstract miss.
    pub rnets_bypassed: usize,
    /// Rnets descended into because their abstract may match.
    pub rnets_descended: usize,
    /// Object abstracts consulted.
    pub abstract_checks: usize,
    /// Objects read from the directory at settled nodes.
    pub objects_read: usize,
    /// Priority-queue pushes.
    pub heap_pushes: usize,
    /// Logical page accesses through the buffer pool. Always 0 for the
    /// in-memory engines; [`crate::paged::PagedEngine`] reads every record
    /// through its pool and reports the traffic here.
    pub pages_read: usize,
    /// Page accesses that missed the buffer pool and had to fault the page
    /// in from the store — the paper's disk-I/O metric.
    pub page_faults: usize,
    /// `true` when this query ran on a [`SearchWorkspace`] that had
    /// already served earlier queries — i.e. its scratch containers were
    /// recycled instead of freshly allocated. The `exp_throughput`
    /// experiment sums this to report allocations avoided.
    pub workspace_reused: bool,
}

impl SearchStats {
    /// Accumulates another search's counters (used by multi-expansion
    /// queries such as aggregate kNN).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes_settled += other.nodes_settled;
        self.edges_relaxed += other.edges_relaxed;
        self.shortcuts_taken += other.shortcuts_taken;
        self.rnets_bypassed += other.rnets_bypassed;
        self.rnets_descended += other.rnets_descended;
        self.abstract_checks += other.abstract_checks;
        self.objects_read += other.objects_read;
        self.heap_pushes += other.heap_pushes;
        self.pages_read += other.pages_read;
        self.page_faults += other.page_faults;
        self.workspace_reused |= other.workspace_reused;
    }

    /// Fraction of page accesses served from the buffer pool. `1.0` for a
    /// query that touched no pages (the in-memory engines).
    pub fn buffer_hit_rate(&self) -> f64 {
        if self.pages_read == 0 {
            1.0
        } else {
            1.0 - self.page_faults as f64 / self.pages_read as f64
        }
    }
}

/// Hook for I/O accounting: the experiment harness maps these events onto
/// simulated pages. All methods default to no-ops.
pub trait SearchObserver {
    /// A node record was loaded (adjacency + shortcut tree).
    fn node_settled(&mut self, _n: NodeId) {}
    /// An Rnet abstract was consulted in the Association Directory.
    fn abstract_checked(&mut self, _r: RnetId) {}
    /// An object record was read.
    fn object_read(&mut self, _o: ObjectId) {}
}

/// The default do-nothing observer.
pub struct NoopObserver;
impl SearchObserver for NoopObserver {}

/// Result of a kNN or range search.
///
/// Holds the workspace that ran the query (recycled into a per-thread pool
/// on drop), so the distance labels and predecessor links stay readable
/// for [`SearchResult::distance_to_node`] and
/// [`SearchResult::path_to_node`] without copying them out.
pub struct SearchResult {
    /// Answer objects in non-descending distance order.
    pub hits: Vec<SearchHit>,
    /// Work counters.
    pub stats: SearchStats,
    source: NodeId,
    ws: PooledWorkspace,
}

impl SearchResult {
    /// The labelled network distance of `n`, if the search reached it.
    pub fn distance_to_node(&self, n: NodeId) -> Option<Weight> {
        self.ws.get()?.label_of(n.0)
    }

    /// Reconstructs the full physical path from the query node to `n`,
    /// expanding every shortcut hop. `None` if the search never reached
    /// `n`.
    pub fn path_to_node(&self, fw: &RoadFramework, n: NodeId) -> Option<Path> {
        let ws = self.ws.get()?;
        ws.label_of(n.0)?;
        let mut hops = Vec::new();
        let mut cur = n.0;
        while cur != self.source.0 {
            let (prev, hop) = ws.pred_of(cur)?;
            hops.push((prev, hop, cur));
            cur = prev;
        }
        hops.reverse();
        let mut path = Path::trivial(self.source);
        for (prev, hop, cur) in hops {
            let seg = match hop {
                Hop::Edge(e) => Path::from_parts(
                    vec![NodeId(prev), NodeId(cur)],
                    vec![e],
                    fw.network().weight(e, fw.metric()),
                ),
                Hop::Shortcut(r) => {
                    let sc = fw.shortcuts().between(r, NodeId(prev), NodeId(cur))?;
                    fw.shortcuts().expand(
                        fw.network(),
                        fw.hierarchy(),
                        fw.metric(),
                        r,
                        NodeId(prev),
                        sc,
                    )?
                }
            };
            path.extend(&seg);
        }
        Some(path)
    }

    /// Path to a hit: the node path to the cheaper endpoint of the
    /// object's edge, plus `(edge, offset along it)` for the last leg.
    pub fn path_to_hit(
        &self,
        fw: &RoadFramework,
        ad: &AssociationDirectory,
        hit: &SearchHit,
    ) -> Option<(Path, EdgeId, Weight)> {
        let object = ad.object(hit.object)?;
        let (a, b) = fw.network().edge(object.edge).endpoints();
        let kind = fw.metric();
        let via_a = self.distance_to_node(a).map(|d| d + object.offset_from(fw.network(), kind, a));
        let via_b = self.distance_to_node(b).map(|d| d + object.offset_from(fw.network(), kind, b));
        let endpoint = match (via_a, via_b) {
            (Some(da), Some(db)) => {
                if da <= db {
                    a
                } else {
                    b
                }
            }
            (Some(_), None) => a,
            (None, Some(_)) => b,
            (None, None) => return None,
        };
        let path = self.path_to_node(fw, endpoint)?;
        let offset = object.offset_from(fw.network(), kind, endpoint);
        Some((path, object.edge, offset))
    }
}

/// Search mode: the three termination disciplines of the engine.
pub(crate) enum Mode {
    /// k results, optionally capped by a distance bound.
    Knn(usize, Option<Weight>),
    Range(Weight),
    /// Point-to-point distance query: expand until the target settles.
    /// With no objects to find, every Rnet not containing the target is
    /// bypassed, giving HEPV/HiTi-style hierarchical routing for free.
    ToNode(NodeId),
}

/// Where the expansion reads the Route Overlay and Association Directory
/// from. One implementation serves from the deserialized in-memory
/// structures ([`MemorySource`]); the other reads every record through a
/// buffer pool over 4 KB pages ([`crate::paged::PagedEngine`]). Both feed
/// the **same** expansion loop ([`execute_source_into`]), which is what
/// guarantees the paged engine answers byte-for-byte like the in-memory
/// one: the traversal logic cannot diverge, only the storage behind it.
///
/// Visitor methods take `&mut self` because paged reads mutate the buffer
/// pool (faults, LRU order, lazy Rnet loads). Visit order is part of the
/// contract: implementations must yield records in the same order the
/// in-memory structures iterate them, or tie-breaking diverges.
pub(crate) trait SearchSource {
    /// Number of nodes in the served network (sizes the workspace).
    fn num_nodes(&self) -> usize;
    /// The Rnet hierarchy (always RAM-resident: it is the search skeleton).
    fn hierarchy(&self) -> &std::sync::Arc<crate::hierarchy::RnetHierarchy>;
    /// `true` when an object directory is attached.
    fn has_directory(&self) -> bool;
    /// Visits every object associated with node `n`, in directory order:
    /// `(object id, category, offset of the object from n)`. Fallible like
    /// every accessor here: a paged source reads records through a shared
    /// buffer pool whose locks can be poisoned and whose pages can decode
    /// corrupt, and either failure must reach the query as an `Err`
    /// instead of panicking the serving thread.
    fn objects_at(
        &mut self,
        n: NodeId,
        visit: &mut dyn FnMut(u64, crate::model::CategoryId, Weight),
    ) -> Result<(), RoadError>;
    /// May Rnet `r` contain objects matching `filter`? (Abstract lookup.)
    fn rnet_may_match(&mut self, r: RnetId, filter: &ObjectFilter) -> Result<bool, RoadError>;
    /// Visits the usable physical edges at `n` as `(edge, neighbour,
    /// weight)`, skipping infinite-weight edges; with `leaf` set, only the
    /// edges belonging to that leaf Rnet.
    fn edges_at(
        &mut self,
        n: NodeId,
        leaf: Option<RnetId>,
        visit: &mut dyn FnMut(EdgeId, u32, Weight),
    ) -> Result<(), RoadError>;
    /// Visits the outgoing shortcuts of `n` within Rnet `r` as
    /// `(target border node, shortcut distance)`. Fallible: a paged source
    /// may have to decode the Rnet's shortcut section from a retained
    /// image on first touch, and a section found corrupt *at query time*
    /// must surface as an error — silently visiting nothing would be
    /// indistinguishable from "Rnet has no shortcuts" and produce wrong
    /// answers.
    fn shortcuts_at(
        &mut self,
        r: RnetId,
        n: NodeId,
        visit: &mut dyn FnMut(u32, Weight),
    ) -> Result<(), RoadError>;
    /// Does Rnet `r` contain node `t` (as member or border)? Drives
    /// [`Mode::ToNode`] routing.
    fn rnet_contains_node(&mut self, r: RnetId, t: NodeId) -> Result<bool, RoadError>;
    /// Cumulative `(logical page reads, page faults)` so far; the loop
    /// diffs this around the query to fill [`SearchStats::pages_read`] /
    /// [`SearchStats::page_faults`]. In-memory sources report `(0, 0)`.
    fn io_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The RAM-resident source: the framework's own structures.
pub(crate) struct MemorySource<'a> {
    pub fw: &'a RoadFramework,
    pub ad: Option<&'a AssociationDirectory>,
}

impl SearchSource for MemorySource<'_> {
    fn num_nodes(&self) -> usize {
        self.fw.network().num_nodes()
    }

    fn hierarchy(&self) -> &std::sync::Arc<crate::hierarchy::RnetHierarchy> {
        self.fw.hierarchy_arc()
    }

    fn has_directory(&self) -> bool {
        self.ad.is_some()
    }

    fn objects_at(
        &mut self,
        n: NodeId,
        visit: &mut dyn FnMut(u64, crate::model::CategoryId, Weight),
    ) -> Result<(), RoadError> {
        let Some(ad) = self.ad else { return Ok(()) };
        let g = self.fw.network();
        let kind = self.fw.metric();
        for object in ad.objects_at_node(n) {
            visit(object.id.0, object.category, object.offset_from(g, kind, n));
        }
        Ok(())
    }

    fn rnet_may_match(&mut self, r: RnetId, filter: &ObjectFilter) -> Result<bool, RoadError> {
        Ok(self.ad.map(|ad| ad.rnet_may_match(r, filter)).unwrap_or(false))
    }

    fn edges_at(
        &mut self,
        n: NodeId,
        leaf: Option<RnetId>,
        visit: &mut dyn FnMut(EdgeId, u32, Weight),
    ) -> Result<(), RoadError> {
        // Stream the framework's pre-joined flat arena (see [`crate::arena`]):
        // edge id, head, metric weight and owning leaf live in parallel flat
        // vectors, so the expansion loop takes no detour through the edge
        // records or the hierarchy. Arc order equals `neighbors` order.
        for (e, v, w, leaf_r) in self.fw.arena().arcs(n.0) {
            if let Some(r) = leaf {
                if leaf_r != r {
                    continue;
                }
            }
            if w.is_infinite() {
                continue;
            }
            visit(e, v.0, w);
        }
        Ok(())
    }

    fn shortcuts_at(
        &mut self,
        r: RnetId,
        n: NodeId,
        visit: &mut dyn FnMut(u32, Weight),
    ) -> Result<(), RoadError> {
        for sc in self.fw.shortcuts().from(r, n) {
            visit(sc.to.0, sc.dist);
        }
        Ok(())
    }

    fn rnet_contains_node(&mut self, r: RnetId, t: NodeId) -> Result<bool, RoadError> {
        let hier = self.fw.hierarchy();
        if hier.is_border_of(t, r) {
            return Ok(true);
        }
        let lv = hier.level_of(r);
        Ok(self.fw.network().neighbors(t).any(|(e, _)| hier.rnet_of_edge_at(e, lv) == r))
    }
}

/// Core expansion shared by kNN, range and point-to-point queries, using a
/// workspace borrowed from the per-thread pool. The workspace travels into
/// the returned [`SearchResult`] (keeping distance labels readable) and is
/// recycled when the result is dropped.
pub(crate) fn execute(
    fw: &RoadFramework,
    ad: Option<&AssociationDirectory>,
    source: NodeId,
    filter: &ObjectFilter,
    mode: Mode,
    observer: &mut dyn SearchObserver,
) -> Result<SearchResult, RoadError> {
    execute_source(&mut MemorySource { fw, ad }, source, filter, mode, observer)
}

/// [`execute`] over an arbitrary [`SearchSource`] (the paged engine routes
/// its pooled-workspace queries through here).
pub(crate) fn execute_source(
    src: &mut dyn SearchSource,
    source: NodeId,
    filter: &ObjectFilter,
    mode: Mode,
    observer: &mut dyn SearchObserver,
) -> Result<SearchResult, RoadError> {
    let mut ws = workspace::acquire();
    let mut hits = Vec::new();
    match execute_source_into(src, source, filter, mode, observer, &mut ws, &mut hits) {
        Ok(stats) => Ok(SearchResult { hits, stats, source, ws: PooledWorkspace::new(ws) }),
        Err(e) => {
            workspace::release(ws);
            Err(e)
        }
    }
}

/// Allocation-free core expansion: every scratch container lives in `ws`
/// and answers land in the caller's `hits` buffer (cleared first). After
/// the call, `ws` still holds this query's distance/predecessor labels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_into(
    fw: &RoadFramework,
    ad: Option<&AssociationDirectory>,
    source: NodeId,
    filter: &ObjectFilter,
    mode: Mode,
    observer: &mut dyn SearchObserver,
    ws: &mut SearchWorkspace,
    hits: &mut Vec<SearchHit>,
) -> Result<SearchStats, RoadError> {
    execute_source_into(&mut MemorySource { fw, ad }, source, filter, mode, observer, ws, hits)
}

/// The one expansion loop behind every engine (see [`SearchSource`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_source_into(
    src: &mut dyn SearchSource,
    source: NodeId,
    filter: &ObjectFilter,
    mode: Mode,
    observer: &mut dyn SearchObserver,
    ws: &mut SearchWorkspace,
    hits: &mut Vec<SearchHit>,
) -> Result<SearchStats, RoadError> {
    let num_nodes = src.num_nodes();
    let hier = std::sync::Arc::clone(src.hierarchy());
    let has_directory = src.has_directory();
    if source.index() >= num_nodes {
        return Err(RoadError::NodeOutOfBounds(source));
    }

    let mut stats = SearchStats { workspace_reused: ws.reuse_count() > 0, ..Default::default() };
    let io_before = src.io_counters();
    hits.clear();
    ws.begin(num_nodes);

    let want = match mode {
        Mode::Knn(k, _) => k,
        _ => usize::MAX,
    };
    let bound = match mode {
        Mode::Knn(_, b) => b,
        Mode::Range(r) => Some(r),
        Mode::ToNode(_) => None,
    };
    if want == 0 {
        return Ok(stats);
    }

    ws.label_source(source.0);
    ws.push(Weight::ZERO, QueueKey::Node(source.0));
    stats.heap_pushes += 1;

    // The LDSQ expansion loop: every scratch container below is recycled
    // workspace state. roadlint rejects fresh heap allocations in here.
    // roadlint: hot-path
    while let Some((d, key)) = ws.pop() {
        match key {
            QueueKey::Object(oid) => {
                if !ws.first_object_sighting(oid) {
                    continue;
                }
                hits.push(SearchHit { object: ObjectId(oid), distance: d });
                if hits.len() >= want {
                    break;
                }
            }
            QueueKey::Node(n) => {
                if ws.is_settled(n) {
                    continue; // stale entry
                }
                ws.mark_settled(n);
                if d > ws.label_of(n).unwrap_or(Weight::INFINITY) {
                    continue;
                }
                stats.nodes_settled += 1;
                observer.node_settled(NodeId(n));
                if let Some(b) = bound {
                    if d > b {
                        break; // expansion front passed the cap
                    }
                }
                if let Mode::ToNode(t) = mode {
                    if t.0 == n {
                        break;
                    }
                }
                // --- SearchObject: collect objects at this node --------
                if has_directory {
                    let (stats_ref, ws_ref) = (&mut stats, &mut *ws);
                    src.objects_at(NodeId(n), &mut |oid, category, offset| {
                        stats_ref.objects_read += 1;
                        observer.object_read(ObjectId(oid));
                        if !filter.accepts_category(category) || ws_ref.object_seen(oid) {
                            return;
                        }
                        let total = d + offset;
                        if let Some(b) = bound {
                            if total > b {
                                return;
                            }
                        }
                        ws_ref.push(total, QueueKey::Object(oid));
                        stats_ref.heap_pushes += 1;
                    })?;
                }
                // --- ChoosePath: pick edges and shortcuts to relax -----
                // `bordered_rnets` lists Rnets by level ascending (an
                // invariant it debug_asserts and `validate()` checks), so
                // the first entry carries the coarsest (topmost) level and
                // seeding the descent from it covers every subtree.
                let bordered = hier.bordered_rnets(NodeId(n));
                let Some(&top) = bordered.first() else {
                    // Interior node: the shortcut tree is a single leaf
                    // holding the physical edges.
                    let (stats_ref, ws_ref) = (&mut stats, &mut *ws);
                    src.edges_at(NodeId(n), None, &mut |e, v, w| {
                        stats_ref.edges_relaxed += 1;
                        if ws_ref.relax(n, v, d + w, Hop::Edge(e)) {
                            stats_ref.heap_pushes += 1;
                        }
                    })?;
                    continue;
                };
                let top_level = hier.level_of(top);
                let mut stack = ws.take_stack();
                stack.extend(bordered.iter().copied().filter(|&r| hier.level_of(r) == top_level));
                // Paged accessors can fail mid-descent (lazy shortcut
                // decode, poisoned pool lock); remember the error and
                // break so the stack still returns to the workspace.
                let mut failed: Option<RoadError> = None;
                while let Some(r) = stack.pop() {
                    stats.abstract_checks += 1;
                    observer.abstract_checked(r);
                    let may_match = if has_directory {
                        match src.rnet_may_match(r, filter) {
                            Ok(m) => m,
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        }
                    } else {
                        false
                    };
                    let must_enter = match mode {
                        Mode::ToNode(t) => match src.rnet_contains_node(r, t) {
                            Ok(c) => c,
                            Err(e) => {
                                failed = Some(e);
                                break;
                            }
                        },
                        _ => false,
                    };
                    if !may_match && !must_enter {
                        // Bypass: jump to the Rnet's other borders.
                        stats.rnets_bypassed += 1;
                        let (stats_ref, ws_ref) = (&mut stats, &mut *ws);
                        let visited = src.shortcuts_at(r, NodeId(n), &mut |to, dist| {
                            stats_ref.shortcuts_taken += 1;
                            if ws_ref.relax(n, to, d + dist, Hop::Shortcut(r)) {
                                stats_ref.heap_pushes += 1;
                            }
                        });
                        if let Err(e) = visited {
                            failed = Some(e);
                            break;
                        }
                    } else if hier.is_leaf(r) {
                        stats.rnets_descended += 1;
                        let (stats_ref, ws_ref) = (&mut stats, &mut *ws);
                        let visited = src.edges_at(NodeId(n), Some(r), &mut |e, v, w| {
                            stats_ref.edges_relaxed += 1;
                            if ws_ref.relax(n, v, d + w, Hop::Edge(e)) {
                                stats_ref.heap_pushes += 1;
                            }
                        });
                        if let Err(e) = visited {
                            failed = Some(e);
                            break;
                        }
                    } else {
                        stats.rnets_descended += 1;
                        let lv = hier.level_of(r);
                        for &c in bordered {
                            if hier.level_of(c) == lv + 1 && hier.parent(c) == r {
                                stack.push(c);
                            }
                        }
                    }
                }
                ws.put_back_stack(stack);
                if let Some(e) = failed {
                    return Err(e);
                }
            }
        }
    }
    // roadlint: end hot-path
    let io_after = src.io_counters();
    stats.pages_read = (io_after.0 - io_before.0) as usize;
    stats.page_faults = (io_after.1 - io_before.1) as usize;
    Ok(stats)
}

/// One engine's way of running a single expansion — the only primitive
/// aggregate kNN needs. Implemented by the in-memory framework (over
/// [`MemorySource`]) and by the paged engine (over its page-backed
/// source), so the aggregate algorithm is written once and both engines
/// answer identically by construction.
pub(crate) trait AggregateBackend {
    /// Runs one expansion from `node`. `with_directory = false` is the
    /// point-to-point routing configuration (no objects consulted).
    fn expand(
        &mut self,
        node: NodeId,
        filter: &ObjectFilter,
        mode: Mode,
        with_directory: bool,
    ) -> Result<SearchResult, RoadError>;
}

/// Aggregate kNN over any [`AggregateBackend`]; see
/// [`RoadFramework::aggregate_knn_with_stats`] for the strategy
/// (discovery expansion from member 0, then triangle-inequality-bounded
/// expansions for the remaining members).
pub(crate) fn aggregate_knn_backend(
    be: &mut dyn AggregateBackend,
    query: &AggregateKnnQuery,
) -> Result<(Vec<SearchHit>, SearchStats), RoadError> {
    let Some(&first_node) = query.nodes.first() else {
        return Err(RoadError::InvalidConfig("aggregate query needs >= 1 node".into()));
    };
    let mut total = SearchStats::default();
    if query.k == 0 {
        return Ok((Vec::new(), total));
    }
    let m = query.nodes.len();
    if m == 1 {
        // A single-member group is a plain kNN.
        let mut res = be.expand(first_node, &query.filter, Mode::Knn(query.k, None), true)?;
        total.absorb(&res.stats);
        return Ok((std::mem::take(&mut res.hits), total));
    }

    // Member 0: unbounded discovery of every candidate.
    let first = be.expand(first_node, &query.filter, Mode::Range(Weight::INFINITY), true)?;
    total.absorb(&first.stats);
    if first.hits.is_empty() {
        return Ok((Vec::new(), total));
    }

    // Member-to-member distances from member 0 (the triangle tails).
    let mut member_dist: Vec<Weight> = Vec::with_capacity(m);
    member_dist.push(Weight::ZERO);
    for &q in query.nodes.iter().skip(1) {
        let res = be.expand(first_node, &ObjectFilter::Any, Mode::ToNode(q), false)?;
        total.absorb(&res.stats);
        member_dist.push(res.distance_to_node(q).unwrap_or(Weight::INFINITY));
    }

    // Candidates carry (object, d_0, running partial aggregate).
    let mut cands: Vec<(ObjectId, Weight, Weight)> = first
        .hits
        .iter()
        .map(|h| (h.object, h.distance, query.aggregate.combine(Weight::ZERO, h.distance)))
        .collect();
    let mut ubs: Vec<Weight> = Vec::with_capacity(cands.len());
    for (i, &member_node) in query.nodes.iter().enumerate().skip(1) {
        // Upper-bound each candidate's final aggregate: exact partials
        // for processed members, triangle tails for the rest. The k-th
        // smallest is a sound expansion bound for member i.
        let tails = member_dist.get(i..).unwrap_or(&[]);
        ubs.clear();
        ubs.extend(cands.iter().map(|&(_, d0, partial)| {
            let mut ub = partial;
            for &tail in tails {
                ub = query.aggregate.combine(ub, d0 + tail);
            }
            ub
        }));
        let bound = if ubs.len() < query.k {
            Weight::INFINITY
        } else {
            let (_, kth, _) = ubs.select_nth_unstable(query.k - 1);
            // Inflate by a relative epsilon: the triangle-inequality
            // sum `d_0(o) + ||q_0, q_i||` and Dijkstra's edge-by-edge
            // fold of the same path round differently, so a true
            // answer could exceed the exact bound by a few ULPs and
            // be wrongly pruned. Over-admitting costs a little extra
            // expansion; under-admitting costs correctness.
            Weight::new(kth.get() * (1.0 + 1e-9) + f64::MIN_POSITIVE)
        };
        let res = be.expand(member_node, &query.filter, Mode::Range(bound), true)?;
        total.absorb(&res.stats);
        let di: FastMap<u64, Weight> = res.hits.iter().map(|h| (h.object.0, h.distance)).collect();
        cands.retain_mut(|c| match di.get(&c.0 .0) {
            Some(&d) => {
                c.2 = query.aggregate.combine(c.2, d);
                true
            }
            // Outside member i's (bounded) reach: either unreachable
            // or provably beyond the k-th best aggregate.
            None => false,
        });
        if cands.is_empty() {
            break;
        }
    }
    let mut hits: Vec<SearchHit> =
        cands.into_iter().map(|(o, _, agg)| SearchHit { object: o, distance: agg }).collect();
    hits.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.object.cmp(&b.object)));
    hits.truncate(query.k);
    Ok((hits, total))
}

/// Brute-force oracle used by tests and benchmarks: plain network
/// expansion (no shortcuts, no abstracts), the INE algorithm of ref \[16\].
pub fn oracle_knn(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    query: &KnnQuery,
) -> Vec<SearchHit> {
    oracle(fw, ad, query.node, &query.filter, Some(query.k), query.max_distance)
}

/// Brute-force range oracle.
pub fn oracle_range(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    query: &RangeQuery,
) -> Vec<SearchHit> {
    oracle(fw, ad, query.node, &query.filter, None, Some(query.radius))
}

fn oracle(
    fw: &RoadFramework,
    ad: &AssociationDirectory,
    source: NodeId,
    filter: &ObjectFilter,
    k: Option<usize>,
    radius: Option<Weight>,
) -> Vec<SearchHit> {
    let g = fw.network();
    let kind = fw.metric();
    let mut best: FastMap<u64, Weight> = FastMap::default();
    // The oracle reuses a thread-pooled Dijkstra: agreement suites fire
    // thousands of reference queries, and a fresh `O(|N|)` state per query
    // would dominate their runtime.
    dijkstra::with_pooled(g, |dij| {
        dij.expand(g, kind, source, |n, d| {
            if let Some(r) = radius {
                if d > r {
                    return dijkstra::Control::Break;
                }
            }
            for object in ad.objects_at_node(n) {
                if !filter.matches(object) {
                    continue;
                }
                let total = d + object.offset_from(g, kind, n);
                let cur = best.get(&object.id.0).copied().unwrap_or(Weight::INFINITY);
                if total < cur {
                    best.insert(object.id.0, total);
                }
            }
            dijkstra::Control::Continue
        });
    });
    let mut hits: Vec<SearchHit> = best
        .into_iter()
        .map(|(o, d)| SearchHit { object: ObjectId(o), distance: d })
        .filter(|h| radius.map(|r| h.distance <= r).unwrap_or(true))
        .collect();
    hits.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.object.cmp(&b.object)));
    if let Some(k) = k {
        hits.truncate(k);
    }
    hits
}
