//! Shortcuts (Definition 3) and their bottom-up construction (Lemma 2).
//!
//! For every Rnet, shortcuts connect its border nodes along shortest paths
//! *restricted to the Rnet* — the compositional variant Lemma 2 computes:
//! finest-level shortcuts come from Dijkstra runs confined to the Rnet's
//! physical edges, and level-`i` shortcuts run over an overlay graph whose
//! edges are the level-`i+1` shortcuts of the Rnet's children. (Any global
//! shortest path decomposes at border nodes into intra-Rnet segments, so
//! this preserves all network distances; see ARCHITECTURE.md, Design
//! notes §1.)
//!
//! Lemma 4 pruning: a shortcut whose path passes through *another border of
//! the same Rnet* is transitively reachable via that border's own shortcuts
//! at equal total distance, so it is dropped. This keeps the overlay graphs
//! and Route Overlay sparse without losing correctness. The canonical form
//! used here is the *matrix rule*: with `dmat` the all-pairs border distance
//! matrix of the Rnet's local graph, the pair `(b, t)` is kept iff
//! `dmat[b][t]` is finite and no third border `m` satisfies
//! `dmat[b][m] + dmat[m][t] <= dmat[b][t]` (ties drop — by the triangle
//! inequality a covering pair splits at *exactly* the original distance, so
//! chaining kept shortcuts reconstructs every border distance as long as
//! edge weights are strictly positive, which road networks guarantee).
//!
//! Construction is contraction-based (ROADMAP item 1): instead of one full
//! Dijkstra per border over the local graph, the interior nodes are
//! *contracted* ([`road_network::contractor`]) and `dmat` is computed on the
//! tiny border-only remainder graph, which preserves all pairwise border
//! distances by construction. Kept pairs are then materialised by one
//! *sealed* Dijkstra per source border over the local CSR arena
//! ([`LocalDijkstra::run_csr`] with `seal_below` = the border count): border
//! nodes are settled but never expanded, so the predecessor chains are
//! border-free — Lemma 4's path shape — in a single pass. The legacy
//! all-pairs sweep survives behind `#[cfg(any(test, feature =
//! "oracle-build"))]` as [`ShortcutStore::build_with_oracle`]; because both
//! builders share the canonical local-graph assembly, the matrix rule and
//! the sealed finalisation pass, their outputs are **byte-identical**
//! (pinned by `tests/construction_oracle.rs`), which is what makes the
//! fast path safely swappable.
//!
//! Each shortcut stores its intermediate *waypoints* — physical nodes at
//! the finest level, child border nodes above — which is exactly the
//! paper's representation `S(n1,n3) = (S(n1,nd), S(nd,n3))`; the recursive
//! [`ShortcutStore::expand`] turns a shortcut back into a full physical
//! [`Path`].
//!
//! Each Rnet's shortcut map sits behind its own [`Arc`], so cloning the
//! store is an `O(#Rnets)` pointer copy and a refresh of one Rnet leaves
//! every other Rnet's map physically shared with prior clones. This is
//! what makes snapshot publication in [`crate::live`] cheap: an update
//! clones only the affected Rnets' shortcut data.

use crate::hierarchy::{RnetHierarchy, RnetId};
use road_network::contractor::{ContractionOrder, Contractor};
use road_network::csr::{CsrBuilder, CsrGraph};
use road_network::dijkstra::LocalDijkstra;
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::path::Path;
use road_network::{NodeId, Weight};
use std::sync::Arc;

/// Settle bound for each witness search during contraction. Bounded witness
/// searches only ever make the remainder graph denser (a missed witness adds
/// a redundant arc), never wrong, so this is purely a speed knob.
const WITNESS_SETTLE_LIMIT: usize = 64;

/// Local graphs below this node count contract with a witness budget of
/// zero: their fill-in is already bounded by the (tiny) border count, so
/// every witness search is pure overhead there.  Another speed knob —
/// neither constant changes a single output byte.
const WITNESS_MIN_NODES: usize = 256;

/// One directed shortcut out of a border node.
#[derive(Clone, Debug)]
pub struct ShortcutEdge {
    /// Target border node.
    pub to: NodeId,
    /// Shortest-path distance within the Rnet.
    pub dist: Weight,
    /// Intermediate waypoints: physical nodes (finest level) or child
    /// border nodes (upper levels); endpoints excluded.
    pub via: Vec<NodeId>,
}

/// Shortcut construction options.
#[derive(Clone, Copy, Debug)]
pub struct ShortcutOptions {
    /// Apply Lemma 4: drop shortcuts covered by other shortcuts of the
    /// same Rnet. On by default; the ablation benchmark switches it off.
    pub prune_transitive: bool,
    /// Order in which interior nodes are contracted. The final store is
    /// independent of this choice (the remainder graph always preserves
    /// border distances); differential tests vary it to prove exactly that.
    pub contraction_order: ContractionOrder,
    /// Witness-search settle budget per contraction, or `None` for the
    /// adaptive default: `WITNESS_SETTLE_LIMIT` (64) once the local graph
    /// reaches `WITNESS_MIN_NODES` (256) nodes, zero below (tiny Rnets bound
    /// fill-in by their border count, so searching there is pure overhead).
    /// Like the order, the budget never changes a single output byte —
    /// differential tests vary it to prove exactly that.
    pub witness_budget: Option<usize>,
    /// Worker threads for construction and multi-Rnet repair: Rnets of the
    /// same level are independent (Lemma 2 — a level reads only the level
    /// below), so each level fans out over scoped workers. `0` means "use
    /// [`std::thread::available_parallelism`]", `1` runs fully inline.
    /// Like the order and the budget, the thread count never changes a
    /// single output byte: every worker writes its Rnet's map into a
    /// per-Rnet indexed slot and the slots are committed in hierarchy
    /// order, so scheduling cannot reorder anything observable
    /// (differential tests sweep 1/2/4/8 threads to prove it).
    pub threads: usize,
}

impl Default for ShortcutOptions {
    fn default() -> Self {
        ShortcutOptions {
            prune_transitive: true,
            contraction_order: ContractionOrder::MinDegree,
            witness_budget: None,
            threads: 0,
        }
    }
}

/// Resolves the `threads` option: `0` asks the OS for the available
/// parallelism (falling back to 1 when that is unknowable).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
    } else {
        threads
    }
}

/// All shortcuts of the hierarchy, grouped per Rnet and source node.
///
/// Cloning the store is cheap (`O(#Rnets)` [`Arc`] bumps) and shares every
/// per-Rnet map with the original; a refresh then replaces only the
/// refreshed Rnet's map, which is the structural-sharing contract the
/// live engine's snapshots rely on.
#[derive(Clone)]
pub struct ShortcutStore {
    /// `per_rnet[r]` maps a border-node id to its outgoing shortcuts in `r`.
    per_rnet: Vec<Arc<FastMap<u32, Vec<ShortcutEdge>>>>,
    num_shortcuts: usize,
    /// Modelled serialized bytes of every stored shortcut, maintained
    /// incrementally by [`ShortcutStore::replace_rnet`] exactly like
    /// `num_shortcuts` — [`ShortcutStore::size_bytes`] must not re-walk
    /// every list on each call (the index-size reports sum it per build,
    /// and parallel construction makes full walks costlier still).
    num_bytes: usize,
}

impl ShortcutStore {
    /// Builds every Rnet's shortcuts bottom-up (finest level first).
    ///
    /// Rnets of the same level are independent — a level's maps read only
    /// the level below — so each level fans out over
    /// [`ShortcutOptions::threads`] scoped workers, every worker owning its
    /// own `BuildScratch`. Workers deposit maps into per-Rnet indexed
    /// slots which are then committed in hierarchy order, so the store is
    /// **byte-identical** to a single-threaded build regardless of
    /// scheduling (pinned by `tests/parallel_build.rs`).
    pub fn build(
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        opts: &ShortcutOptions,
    ) -> Self {
        let mut store = ShortcutStore {
            per_rnet: (0..hier.num_rnets()).map(|_| Arc::new(FastMap::default())).collect(),
            num_shortcuts: 0,
            num_bytes: 0,
        };
        let mut scratch = BuildScratch::default();
        for level in (1..=hier.levels()).rev() {
            let rnets: Vec<RnetId> = hier.rnets_at_level(level).collect();
            let maps = store.compute_level_maps(g, hier, kind, &rnets, opts, &mut scratch);
            for (&r, map) in rnets.iter().zip(maps) {
                store.replace_rnet(r, map);
            }
        }
        store
    }

    /// Computes the shortcut maps of one level's (or more generally, of
    /// mutually independent) Rnets, fanned out over scoped worker threads.
    /// Workers own contiguous chunks of `rnets` and one [`BuildScratch`]
    /// each; every map lands in the slot indexed by its Rnet's position, so
    /// the result is independent of scheduling. `self` is only read (the
    /// children's maps), never written — commits happen afterwards, in
    /// order, on the caller's thread.
    fn compute_level_maps(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        rnets: &[RnetId],
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> Vec<FastMap<u32, Vec<ShortcutEdge>>> {
        let threads = resolve_threads(opts.threads).min(rnets.len().max(1));
        let mut maps: Vec<FastMap<u32, Vec<ShortcutEdge>>> = Vec::new();
        maps.resize_with(rnets.len(), FastMap::default);
        if threads <= 1 {
            for (&r, slot) in rnets.iter().zip(maps.iter_mut()) {
                *slot = self.compute_rnet_map(g, hier, kind, r, opts, scratch);
            }
            return maps;
        }
        let chunk_len = rnets.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk, out) in rnets.chunks(chunk_len).zip(maps.chunks_mut(chunk_len)) {
                scope.spawn(move || {
                    let mut scratch = BuildScratch::default();
                    for (&r, slot) in chunk.iter().zip(out.iter_mut()) {
                        *slot = self.compute_rnet_map(g, hier, kind, r, opts, &mut scratch);
                    }
                });
            }
        });
        maps
    }

    /// Outgoing shortcuts of node `n` within Rnet `r`.
    #[inline]
    pub fn from(&self, r: RnetId, n: NodeId) -> &[ShortcutEdge] {
        self.per_rnet[r.0 as usize].get(&n.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The stored shortcut `from -> to` within `r`, if kept.
    pub fn between(&self, r: RnetId, from: NodeId, to: NodeId) -> Option<&ShortcutEdge> {
        self.from(r, from).iter().find(|sc| sc.to == to)
    }

    /// Total number of stored (directed) shortcuts.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Modelled serialized size: 16 bytes per shortcut header plus 4 bytes
    /// per waypoint. O(1) — maintained incrementally by the private
    /// `replace_rnet` commit step, never recomputed by walking every
    /// shortcut list.
    pub fn size_bytes(&self) -> usize {
        self.num_bytes
    }

    /// Shortcut count and modelled bytes of one Rnet's map — the per-Rnet
    /// delta [`ShortcutStore::replace_rnet`] applies to the store totals.
    fn map_stats(map: &FastMap<u32, Vec<ShortcutEdge>>) -> (usize, usize) {
        let mut count = 0;
        let mut bytes = 0;
        for list in map.values() {
            count += list.len();
            for sc in list {
                bytes += 16 + 4 * sc.via.len();
            }
        }
        (count, bytes)
    }

    fn replace_rnet(&mut self, r: RnetId, map: FastMap<u32, Vec<ShortcutEdge>>) {
        let slot = &mut self.per_rnet[r.0 as usize];
        let (old, old_bytes) = Self::map_stats(slot);
        let (new, new_bytes) = Self::map_stats(&map);
        *slot = Arc::new(map);
        self.num_shortcuts = self.num_shortcuts - old + new;
        self.num_bytes = self.num_bytes - old_bytes + new_bytes;
    }

    /// How many Rnets' shortcut maps this store physically shares with
    /// `other` (same allocation, not merely equal contents). Two stores
    /// related by snapshot forks share every Rnet that no intervening
    /// maintenance refreshed — the quantity the live-serving tests and
    /// `exp_live` use to prove updates never fall back to full rebuilds.
    pub fn shared_rnet_count(&self, other: &ShortcutStore) -> usize {
        self.per_rnet.iter().zip(&other.per_rnet).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Recomputes one Rnet's shortcuts in place; returns `true` when the
    /// shortcut set changed (the signal that drives upward propagation in
    /// the filter-and-refresh maintenance of Section 5.2).
    pub(crate) fn refresh_rnet(
        &mut self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> bool {
        let new = self.compute_rnet_map(g, hier, kind, r, opts, scratch);
        let changed = !Self::maps_equivalent(&self.per_rnet[r.0 as usize], &new);
        self.replace_rnet(r, new);
        changed
    }

    /// Recomputes several Rnets' shortcuts, fanning out within each level:
    /// `rnets` must be sorted finest level first (ties in any order — Rnets
    /// of one level are independent). Runs of equal level are computed
    /// concurrently via [`ShortcutStore::compute_level_maps`] and committed
    /// in input order before the next (coarser) run starts, so parents
    /// always read fully repaired children and the outcome is byte-equal
    /// to refreshing every Rnet sequentially in the same order. Returns the
    /// per-Rnet "shortcut set changed" flags, aligned with `rnets`.
    // roadlint: order-sink
    pub(crate) fn refresh_rnets(
        &mut self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        rnets: &[RnetId],
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> Vec<bool> {
        debug_assert!(
            rnets.windows(2).all(|w| hier.level_of(w[0]) >= hier.level_of(w[1])),
            "refresh_rnets input must be sorted finest level first"
        );
        let mut changed = Vec::with_capacity(rnets.len());
        let mut start = 0;
        while start < rnets.len() {
            let level = hier.level_of(rnets[start]);
            let mut end = start + 1;
            while end < rnets.len() && hier.level_of(rnets[end]) == level {
                end += 1;
            }
            let run = &rnets[start..end];
            if let [r] = *run {
                // Single-Rnet run (the common ancestor-chain repair): skip
                // the per-level slot vector entirely.
                changed.push(self.refresh_rnet(g, hier, kind, r, opts, scratch));
            } else {
                let maps = self.compute_level_maps(g, hier, kind, run, opts, scratch);
                for (&r, map) in run.iter().zip(maps) {
                    changed.push(!Self::maps_equivalent(&self.per_rnet[r.0 as usize], &map));
                    self.replace_rnet(r, map);
                }
            }
            start = end;
        }
        changed
    }

    fn maps_equivalent(
        a: &FastMap<u32, Vec<ShortcutEdge>>,
        b: &FastMap<u32, Vec<ShortcutEdge>>,
    ) -> bool {
        let flatten = |m: &FastMap<u32, Vec<ShortcutEdge>>| {
            let mut v: Vec<(u32, u32, Weight)> = m
                .iter()
                .flat_map(|(&from, list)| list.iter().map(move |sc| (from, sc.to.0, sc.dist)))
                .collect();
            v.sort_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)).then(x.2.cmp(&y.2)));
            v
        };
        let (fa, fb) = (flatten(a), flatten(b));
        fa.len() == fb.len()
            && fa.iter().zip(&fb).all(|(x, y)| x.0 == y.0 && x.1 == y.1 && x.2.approx_eq(y.2))
    }

    /// Computes the shortcut map of one Rnet from the network (finest
    /// level) or from its children's current shortcuts (upper levels).
    ///
    /// Pruned builds (the default) go through node contraction; unpruned
    /// builds (the ablation baseline) keep the per-border sweep, since
    /// without Lemma 4 every reachable pair is materialised anyway.
    fn compute_rnet_map(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> FastMap<u32, Vec<ShortcutEdge>> {
        let borders = hier.borders(r);
        let mut out: FastMap<u32, Vec<ShortcutEdge>> = FastMap::default();
        if borders.len() < 2 {
            return out;
        }
        self.assemble_local(g, hier, kind, r, scratch, borders);
        if !opts.prune_transitive {
            self.sweep_unpruned(scratch, borders, &mut out);
            return out;
        }
        // Contract the interiors; the *remainder* graph lives on the borders
        // alone and preserves all their pairwise distances, so the dmat
        // closure is a tiny Floyd-Warshall over an `nb x nb` flat matrix
        // instead of |borders| Dijkstras over the whole local graph.  Under
        // exact arithmetic the closure reproduces the sweep's distances
        // bit-for-bit (both are exact sums of the same edge weights).
        scratch.remainder_builder.clear();
        let witness_budget =
            opts.witness_budget.unwrap_or(if scratch.csr.num_nodes() >= WITNESS_MIN_NODES {
                WITNESS_SETTLE_LIMIT
            } else {
                0
            });
        scratch.contractor.contract(
            &scratch.csr,
            borders.len() as u32,
            opts.contraction_order,
            witness_budget,
            &mut scratch.remainder_builder,
        );
        let nb = borders.len();
        scratch.dmat.clear();
        scratch.dmat.resize(nb * nb, Weight::INFINITY);
        // Per-worker inner loop of the parallel build: everything below runs
        // against this worker's own `BuildScratch` buffers (sized by the
        // clear/resize above), so the closure must stay allocation-free.
        // roadlint: hot-path
        for bi in 0..nb {
            scratch.dmat[bi * nb + bi] = Weight::ZERO;
        }
        // Fold the remainder arcs straight off the builder: the closure only
        // needs the min weight per border pair, so freezing them into a CSR
        // (a counting sort) would be pure overhead.
        for (u, v, w) in scratch.remainder_builder.arcs() {
            let slot = &mut scratch.dmat[u as usize * nb + v as usize];
            if w < *slot {
                *slot = w;
            }
        }
        for k in 0..nb {
            for i in 0..nb {
                let dik = scratch.dmat[i * nb + k];
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..nb {
                    let via = dik + scratch.dmat[k * nb + j];
                    if via < scratch.dmat[i * nb + j] {
                        scratch.dmat[i * nb + j] = via;
                    }
                }
            }
        }
        // roadlint: end hot-path
        self.finalize_from_matrix(scratch, borders, &mut out);
        out
    }

    /// Assembles Rnet `r`'s local graph into `scratch.csr` under the
    /// *canonical numbering*: every border of `r` gets local id `0..nb` in
    /// `hier.borders(r)` order first (reachable or not), interiors follow in
    /// first-appearance order. Upper levels iterate children's borders in
    /// hierarchy order and look the lists up by key, so the assembly — and
    /// with it everything downstream — depends only on map *contents*,
    /// never on map iteration order.
    fn assemble_local(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        scratch: &mut BuildScratch,
        borders: &[NodeId],
    ) {
        scratch.clear();
        for &b in borders {
            scratch.local(b.0);
        }
        scratch.border_locals.extend(0..borders.len() as u32);
        if hier.is_leaf(r) {
            for &e in hier.leaf_edge_list(r) {
                let w = g.weight(e, kind);
                let (a, b) = g.edge(e).endpoints();
                let (la, lb) = (scratch.local(a.0), scratch.local(b.0));
                scratch.builder.push(la, lb, w, e.0);
                scratch.builder.push(lb, la, w, e.0);
            }
        } else {
            for child in hier.children(r) {
                for &from in hier.borders(child) {
                    let Some(list) = self.per_rnet[child.0 as usize].get(&from.0) else {
                        continue;
                    };
                    let lf = scratch.local(from.0);
                    for sc in list {
                        let lt = scratch.local(sc.to.0);
                        scratch.builder.push(lf, lt, sc.dist, 0);
                    }
                }
            }
        }
        let (builder, csr) = (&mut scratch.builder, &mut scratch.csr);
        builder.finish_into(scratch.global.len(), csr);
    }

    /// Unpruned construction: one full Dijkstra per border, keeping every
    /// reachable pair with its full waypoint chain (borders included).
    fn sweep_unpruned(
        &self,
        scratch: &mut BuildScratch,
        borders: &[NodeId],
        out: &mut FastMap<u32, Vec<ShortcutEdge>>,
    ) {
        for (bi, &b) in borders.iter().enumerate() {
            scratch.dij.run_csr(&scratch.csr, bi as u32, &scratch.border_locals, 0);
            let mut list: Vec<ShortcutEdge> = Vec::new();
            for (ti, &t) in borders.iter().enumerate() {
                if ti == bi {
                    continue;
                }
                let dist = scratch.dij.dist(ti as u32);
                if dist.is_infinite() {
                    continue; // internally disconnected Rnet: no shortcut
                }
                let mut via: Vec<NodeId> = Vec::new();
                let mut cur = ti as u32;
                while let Some((prev, _label)) = scratch.dij.pred(cur) {
                    if prev == bi as u32 {
                        break;
                    }
                    via.push(NodeId(scratch.global[prev as usize]));
                    cur = prev;
                }
                via.reverse();
                list.push(ShortcutEdge { to: t, dist, via });
            }
            if !list.is_empty() {
                out.insert(b.0, list);
            }
        }
    }

    /// Shared finalisation of a pruned build: apply the matrix keep rule to
    /// `scratch.dmat`, then materialise each source border's kept shortcuts
    /// with one *sealed* Dijkstra over the local CSR (borders settle but
    /// never expand), whose predecessor chains are border-free by
    /// construction. Both the contraction build and the all-pairs oracle
    /// funnel through here, which is what pins their outputs byte-equal.
    fn finalize_from_matrix(
        &self,
        scratch: &mut BuildScratch,
        borders: &[NodeId],
        out: &mut FastMap<u32, Vec<ShortcutEdge>>,
    ) {
        let nb = borders.len();
        for (bi, &b) in borders.iter().enumerate() {
            scratch.kept.clear();
            for ti in 0..nb {
                if ti == bi {
                    continue;
                }
                let d = scratch.dmat[bi * nb + ti];
                if d.is_infinite() {
                    continue; // internally disconnected Rnet: no shortcut
                }
                // Lemma 4 (matrix form): covered through any third border,
                // ties drop.
                let covered = (0..nb).any(|mi| {
                    mi != bi
                        && mi != ti
                        && scratch.dmat[bi * nb + mi] + scratch.dmat[mi * nb + ti] <= d
                });
                if !covered {
                    scratch.kept.push(ti as u32);
                }
            }
            if scratch.kept.is_empty() {
                continue;
            }
            scratch.dij.run_csr(&scratch.csr, bi as u32, &scratch.kept, nb as u32);
            let mut list: Vec<ShortcutEdge> = Vec::with_capacity(scratch.kept.len());
            for &t in &scratch.kept {
                let dist = scratch.dij.dist(t);
                if dist.is_infinite() {
                    // Float-tie fallout: every shortest path for this pair
                    // runs through another border, but the covering sum
                    // rounded one ulp above `d`, so the matrix rule kept
                    // it. No interior-only path exists and the through-
                    // border shortcuts already cover the pair — drop it
                    // rather than materialise an infinite shortcut. Under
                    // exact arithmetic this branch is unreachable.
                    continue;
                }
                let mut via: Vec<NodeId> = Vec::new();
                let mut cur = t;
                while let Some((prev, _label)) = scratch.dij.pred(cur) {
                    if prev == bi as u32 {
                        break;
                    }
                    via.push(NodeId(scratch.global[prev as usize]));
                    cur = prev;
                }
                via.reverse();
                list.push(ShortcutEdge { to: NodeId(scratch.global[t as usize]), dist, via });
            }
            if !list.is_empty() {
                out.insert(b.0, list);
            }
        }
    }

    /// Legacy all-pairs construction, kept as the differential-testing
    /// oracle: `dmat` comes from one *full* local-graph Dijkstra per border
    /// (the pre-contraction sweep) instead of the contraction remainder.
    /// Shares the canonical assembly, matrix rule and sealed finalisation
    /// with [`ShortcutStore::build`], so the two are byte-identical — the
    /// remainder graph preserves all pairwise border distances exactly.
    #[cfg(any(test, feature = "oracle-build"))]
    pub fn build_with_oracle(
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        opts: &ShortcutOptions,
    ) -> Self {
        let mut store = ShortcutStore {
            per_rnet: (0..hier.num_rnets()).map(|_| Arc::new(FastMap::default())).collect(),
            num_shortcuts: 0,
            num_bytes: 0,
        };
        let mut scratch = BuildScratch::default();
        for level in (1..=hier.levels()).rev() {
            for r in hier.rnets_at_level(level) {
                let map = store.compute_rnet_map_oracle(g, hier, kind, r, opts, &mut scratch);
                store.replace_rnet(r, map);
            }
        }
        store
    }

    /// One Rnet of the oracle build (see
    /// [`ShortcutStore::build_with_oracle`]).
    #[cfg(any(test, feature = "oracle-build"))]
    fn compute_rnet_map_oracle(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> FastMap<u32, Vec<ShortcutEdge>> {
        let borders = hier.borders(r);
        let mut out: FastMap<u32, Vec<ShortcutEdge>> = FastMap::default();
        if borders.len() < 2 {
            return out;
        }
        self.assemble_local(g, hier, kind, r, scratch, borders);
        if !opts.prune_transitive {
            self.sweep_unpruned(scratch, borders, &mut out);
            return out;
        }
        let nb = borders.len();
        scratch.dmat.clear();
        scratch.dmat.resize(nb * nb, Weight::INFINITY);
        for bi in 0..nb {
            scratch.dij.run_csr(&scratch.csr, bi as u32, &scratch.border_locals, 0);
            for ti in 0..nb {
                scratch.dmat[bi * nb + ti] = scratch.dij.dist(ti as u32);
            }
        }
        self.finalize_from_matrix(scratch, borders, &mut out);
        out
    }

    /// Per-Rnet source-key *iteration* order of the underlying hash maps —
    /// exposed so differential tests can pin not just serialized bytes
    /// (which sort sources) but the in-memory traversal order two builders
    /// produce.
    #[cfg(any(test, feature = "oracle-build"))]
    pub fn rnet_source_orders(&self) -> Vec<Vec<u32>> {
        self.per_rnet.iter().map(|m| m.keys().copied().collect()).collect()
    }

    /// Expands a shortcut of Rnet `r` starting at `from` into the full
    /// physical path, weighted under `kind` (the metric the store was
    /// built with). Returns `None` only on store inconsistency.
    pub fn expand(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        from: NodeId,
        sc: &ShortcutEdge,
    ) -> Option<Path> {
        let mut seq = Vec::with_capacity(sc.via.len() + 2);
        seq.push(from);
        seq.extend_from_slice(&sc.via);
        seq.push(sc.to);
        let mut path = Path::trivial(from);
        if hier.is_leaf(r) {
            for hop in seq.windows(2) {
                let e = g.edge_between(hop[0], hop[1])?;
                let seg = Path::from_parts(vec![hop[0], hop[1]], vec![e], g.weight(e, kind));
                path.extend(&seg);
            }
        } else {
            let children = hier.children(r);
            for hop in seq.windows(2) {
                // Pick the child providing the cheapest (u, v) shortcut.
                let mut best: Option<(RnetId, &ShortcutEdge)> = None;
                for &c in &children {
                    if let Some(s) = self.between(c, hop[0], hop[1]) {
                        if best.map(|(_, bs)| s.dist < bs.dist).unwrap_or(true) {
                            best = Some((c, s));
                        }
                    }
                }
                let (c, s) = best?;
                let seg = self.expand(g, hier, kind, c, hop[0], s)?;
                path.extend(&seg);
            }
        }
        Some(path)
    }

    /// Appends a flat binary encoding of the store to `out` (see
    /// [`crate::persist`] for the enclosing format). Public so tests can
    /// locate the store section inside a full image byte-for-byte.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.per_rnet.len() as u32).to_le_bytes());
        for map in &self.per_rnet {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            // Deterministic order for reproducible files.
            let mut sources: Vec<_> = map.keys().copied().collect();
            sources.sort_unstable();
            for from in sources {
                let list = &map[&from];
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for sc in list {
                    out.extend_from_slice(&sc.to.0.to_le_bytes());
                    out.extend_from_slice(&sc.dist.get().to_le_bytes());
                    out.extend_from_slice(&(sc.via.len() as u32).to_le_bytes());
                    for w in &sc.via {
                        out.extend_from_slice(&w.0.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Decodes a store previously written by
    /// [`ShortcutStore::serialize_into`]; `pos` is advanced past it.
    ///
    /// Every count is validated against the bytes that remain and every
    /// node id against `num_nodes`, so a truncated or bit-flipped buffer
    /// fails with an error instead of panicking, over-allocating, or
    /// producing a store that panics at query time.
    // roadlint: decode-fn
    pub(crate) fn deserialize(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
        expected_rnets: usize,
    ) -> Result<Self, String> {
        let num_rnets = Self::read_store_header(buf, pos, expected_rnets)?;
        let mut per_rnet = Vec::with_capacity(num_rnets.min(buf.len() / 4 + 1));
        let mut num_shortcuts = 0usize;
        let mut num_bytes = 0usize;
        for _ in 0..num_rnets {
            let map = Self::decode_rnet_section(buf, pos, num_nodes)?;
            let (count, bytes) = Self::map_stats(&map);
            num_shortcuts += count;
            num_bytes += bytes;
            per_rnet.push(Arc::new(map));
        }
        Ok(ShortcutStore { per_rnet, num_shortcuts, num_bytes })
    }

    /// Reads and validates the store header (the Rnet-section count)
    /// against the hierarchy — shared by the monolithic decode and the
    /// page-granular open so the two paths cannot drift.
    pub(crate) fn read_store_header(
        buf: &[u8],
        pos: &mut usize,
        expected_rnets: usize,
    ) -> Result<usize, String> {
        let num_rnets = read_u32(buf, pos)? as usize;
        if num_rnets != expected_rnets {
            return Err(format!(
                "shortcut store describes {num_rnets} Rnets, hierarchy has {expected_rnets}"
            ));
        }
        Ok(num_rnets)
    }

    /// Assembles a store from already-decoded per-Rnet maps (the lazy
    /// image's "materialize everything" path).
    pub(crate) fn from_rnet_maps(maps: Vec<FastMap<u32, Vec<ShortcutEdge>>>) -> Self {
        let (mut num_shortcuts, mut num_bytes) = (0, 0);
        for m in &maps {
            let (count, bytes) = Self::map_stats(m);
            num_shortcuts += count;
            num_bytes += bytes;
        }
        ShortcutStore {
            per_rnet: maps.into_iter().map(Arc::new).collect(),
            num_shortcuts,
            num_bytes,
        }
    }

    /// Decodes one Rnet's section of a serialized store, validating counts
    /// against the remaining bytes and node ids against `num_nodes`.
    // roadlint: decode-fn
    pub(crate) fn decode_rnet_section(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
    ) -> Result<FastMap<u32, Vec<ShortcutEdge>>, String> {
        let check_node = |id: u32| -> Result<NodeId, String> {
            if id >= num_nodes {
                return Err(format!("shortcut references node {id} outside 0..{num_nodes}"));
            }
            Ok(NodeId(id))
        };
        let num_sources = read_u32(buf, pos)? as usize;
        // A source costs at least 8 bytes (node id + edge count); reject an
        // over-claimed count before looping on it.
        if num_sources > (buf.len() - *pos) / 8 {
            return Err("truncated shortcut store (source count exceeds buffer)".into());
        }
        let mut map: FastMap<u32, Vec<ShortcutEdge>> = FastMap::default();
        for _ in 0..num_sources {
            let from = check_node(read_u32(buf, pos)?)?.0;
            let num_edges = read_u32(buf, pos)? as usize;
            // A shortcut costs at least 16 bytes; an over-claimed count
            // must not drive a huge allocation.
            if num_edges > (buf.len() - *pos) / 16 {
                return Err("truncated shortcut store (edge count exceeds buffer)".into());
            }
            let mut list = Vec::with_capacity(num_edges);
            for _ in 0..num_edges {
                let to = check_node(read_u32(buf, pos)?)?;
                let dist = read_f64(buf, pos)?;
                if dist.is_nan() || dist < 0.0 {
                    return Err(format!("corrupt shortcut distance {dist}"));
                }
                let via_len = read_u32(buf, pos)? as usize;
                if via_len > (buf.len() - *pos) / 4 {
                    return Err("truncated shortcut store (via count exceeds buffer)".into());
                }
                let mut via = Vec::with_capacity(via_len);
                for _ in 0..via_len {
                    via.push(check_node(read_u32(buf, pos)?)?);
                }
                list.push(ShortcutEdge { to, dist: Weight::new(dist), via });
            }
            if map.insert(from, list).is_some() {
                return Err(format!("duplicate shortcut source node {from}"));
            }
        }
        Ok(map)
    }

    /// Walks (and fully validates) one Rnet's section without building the
    /// map — how a lazily-opened image records per-Rnet byte ranges up
    /// front at a fraction of the decode cost. Must reject everything
    /// [`ShortcutStore::decode_rnet_section`] rejects (including duplicate
    /// source nodes), so a section that passes here can never fail to
    /// decode later.
    pub(crate) fn skip_rnet_section(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
    ) -> Result<(), String> {
        let check_node = |id: u32| -> Result<(), String> {
            if id >= num_nodes {
                return Err(format!("shortcut references node {id} outside 0..{num_nodes}"));
            }
            Ok(())
        };
        let num_sources = read_u32(buf, pos)? as usize;
        // Same fail-fast bound as decode_rnet_section: at least 8 bytes per
        // source.
        if num_sources > (buf.len() - *pos) / 8 {
            return Err("truncated shortcut store (source count exceeds buffer)".into());
        }
        let mut seen_sources: road_network::hash::FastSet<u32> = Default::default();
        for _ in 0..num_sources {
            let from = read_u32(buf, pos)?;
            check_node(from)?;
            if !seen_sources.insert(from) {
                return Err(format!("duplicate shortcut source node {from}"));
            }
            let num_edges = read_u32(buf, pos)? as usize;
            if num_edges > (buf.len() - *pos) / 16 {
                return Err("truncated shortcut store (edge count exceeds buffer)".into());
            }
            for _ in 0..num_edges {
                check_node(read_u32(buf, pos)?)?;
                let dist = read_f64(buf, pos)?;
                if dist.is_nan() || dist < 0.0 {
                    return Err(format!("corrupt shortcut distance {dist}"));
                }
                let via_len = read_u32(buf, pos)? as usize;
                if via_len > (buf.len() - *pos) / 4 {
                    return Err("truncated shortcut store (via run exceeds buffer)".into());
                }
                let end = *pos + via_len * 4;
                for _ in 0..via_len {
                    check_node(read_u32(buf, pos)?)?;
                }
                debug_assert_eq!(*pos, end);
            }
        }
        Ok(())
    }

    /// Rebuilds from scratch and verifies this store describes the same
    /// distances — the maintenance tests' ground truth.
    pub fn verify_against_rebuild(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        opts: &ShortcutOptions,
    ) -> Result<(), String> {
        let fresh = ShortcutStore::build(g, hier, kind, opts);
        for (i, (a, b)) in self.per_rnet.iter().zip(&fresh.per_rnet).enumerate() {
            if !Self::maps_equivalent(a, b) {
                return Err(format!("Rnet R{i} shortcuts diverge from a fresh rebuild"));
            }
        }
        Ok(())
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = pos.checked_add(4).ok_or("truncated shortcut store")?;
    let b = buf.get(*pos..end).and_then(|b| b.first_chunk::<4>());
    let b = *b.ok_or("truncated shortcut store")?;
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, String> {
    let end = pos.checked_add(8).ok_or("truncated shortcut store")?;
    let b = buf.get(*pos..end).and_then(|b| b.first_chunk::<8>());
    let b = *b.ok_or("truncated shortcut store")?;
    *pos = end;
    Ok(f64::from_le_bytes(b))
}

/// Reusable allocations for shortcut computation: the local-id interner,
/// the CSR arena of the Rnet being built, the contraction state, the
/// border-distance matrix and the shared Dijkstra.
#[derive(Default)]
pub(crate) struct BuildScratch {
    local_of: FastMap<u32, u32>,
    global: Vec<u32>,
    builder: CsrBuilder,
    csr: CsrGraph,
    contractor: Contractor,
    remainder_builder: CsrBuilder,
    dij: LocalDijkstra,
    /// The identity list `0..nb` (borders own the first local ids) — the
    /// target set handed to each matrix Dijkstra.
    border_locals: Vec<u32>,
    /// Row-major `nb x nb` all-pairs border distances of the current Rnet.
    dmat: Vec<Weight>,
    /// Kept target locals of the current source border (matrix rule).
    kept: Vec<u32>,
}

impl BuildScratch {
    fn clear(&mut self) {
        self.local_of.clear();
        self.global.clear();
        self.builder.clear();
        self.border_locals.clear();
    }

    fn local(&mut self, global: u32) -> u32 {
        if let Some(&l) = self.local_of.get(&global) {
            return l;
        }
        let l = self.global.len() as u32;
        self.local_of.insert(global, l);
        self.global.push(global);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use road_network::dijkstra::Dijkstra;
    use road_network::generator::simple;

    fn build(
        g: &RoadNetwork,
        fanout: usize,
        levels: u32,
        prune: bool,
    ) -> (RnetHierarchy, ShortcutStore) {
        let cfg = HierarchyConfig { fanout, levels, ..Default::default() };
        let hier = RnetHierarchy::build(g, &cfg).unwrap();
        let store = ShortcutStore::build(
            g,
            &hier,
            WeightKind::Distance,
            &ShortcutOptions { prune_transitive: prune, ..Default::default() },
        );
        (hier, store)
    }

    /// Every stored shortcut must equal the Rnet-restricted shortest-path
    /// distance between its endpoints.
    fn assert_shortcuts_exact(g: &RoadNetwork, hier: &RnetHierarchy, store: &ShortcutStore) {
        let mut dij = Dijkstra::for_network(g);
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                for &b in hier.borders(r) {
                    for sc in store.from(r, b) {
                        let want = {
                            let mut found = None;
                            dij.expand_filtered_multi(
                                g,
                                WeightKind::Distance,
                                &[(b, Weight::ZERO)],
                                |e| hier.rnet_of_edge_at(e, lv) == r,
                                &mut |n, d| {
                                    if n == sc.to {
                                        found = Some(d);
                                        road_network::dijkstra::Control::Break
                                    } else {
                                        road_network::dijkstra::Control::Continue
                                    }
                                },
                            );
                            found
                        };
                        let want = want.unwrap_or(Weight::INFINITY);
                        assert!(
                            sc.dist.approx_eq(want),
                            "{r:?} shortcut {b}->{} = {} but restricted SP = {}",
                            sc.to,
                            sc.dist,
                            want
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chain_shortcuts_bridge_segments() {
        let g = simple::chain(16, 1.0);
        let (hier, store) = build(&g, 2, 2, true);
        assert!(store.num_shortcuts() > 0);
        assert_shortcuts_exact(&g, &hier, &store);
    }

    #[test]
    fn grid_shortcuts_match_restricted_dijkstra() {
        let g = simple::grid(8, 8, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        assert!(store.num_shortcuts() > 0);
        assert_shortcuts_exact(&g, &hier, &store);
    }

    #[test]
    fn unpruned_store_is_superset_of_pruned() {
        let g = simple::grid(9, 7, 1.0);
        let (_, pruned) = build(&g, 4, 2, true);
        let (hier, full) = build(&g, 4, 2, false);
        assert!(full.num_shortcuts() >= pruned.num_shortcuts());
        assert_shortcuts_exact(&g, &hier, &full);
        // Pruning must actually remove something on a grid this size.
        assert!(
            full.num_shortcuts() > pruned.num_shortcuts(),
            "Lemma 4 pruning had no effect: {} vs {}",
            full.num_shortcuts(),
            pruned.num_shortcuts()
        );
    }

    #[test]
    fn expansion_yields_valid_physical_paths() {
        let g = simple::grid(8, 8, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        let mut expanded = 0;
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                for &b in hier.borders(r) {
                    for sc in store.from(r, b) {
                        let p = store
                            .expand(&g, &hier, WeightKind::Distance, r, b, sc)
                            .expect("expandable");
                        assert_eq!(p.source(), b);
                        assert_eq!(p.target(), sc.to);
                        assert!(p.validate(&g, WeightKind::Distance), "invalid path");
                        assert!(
                            p.total().approx_eq(sc.dist),
                            "expanded dist {} != shortcut dist {}",
                            p.total(),
                            sc.dist
                        );
                        expanded += 1;
                    }
                }
            }
        }
        assert!(expanded > 0);
    }

    #[test]
    fn pruned_shortcut_paths_avoid_other_borders() {
        let g = simple::grid(10, 10, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                let borders = hier.borders(r);
                for &b in borders {
                    for sc in store.from(r, b) {
                        for w in &sc.via {
                            assert!(
                                !borders.contains(w),
                                "{r:?}: kept shortcut {b}->{} passes border {w}",
                                sc.to
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_detects_weight_changes() {
        let mut g = simple::grid(6, 6, 1.0);
        let (hier, mut store) = build(&g, 4, 2, true);
        let mut scratch = BuildScratch::default();
        // Pick an edge inside some leaf Rnet with shortcuts.
        let e = g.edge_ids().next().unwrap();
        let leaf = hier.leaf_of_edge(e);
        // No-op refresh: nothing changed.
        let changed = store.refresh_rnet(
            &g,
            &hier,
            WeightKind::Distance,
            leaf,
            &Default::default(),
            &mut scratch,
        );
        assert!(!changed, "refresh without a weight change must be a no-op");
        // Make the edge very expensive and refresh.
        g.set_weight(e, WeightKind::Distance, Weight::new(100.0)).unwrap();
        store.refresh_rnet(
            &g,
            &hier,
            WeightKind::Distance,
            leaf,
            &Default::default(),
            &mut scratch,
        );
        // Full rebuild equivalence after refreshing every ancestor chain.
        let mut r = leaf;
        while r.is_valid() {
            store.refresh_rnet(
                &g,
                &hier,
                WeightKind::Distance,
                r,
                &Default::default(),
                &mut scratch,
            );
            r = hier.parent(r);
        }
        store.verify_against_rebuild(&g, &hier, WeightKind::Distance, &Default::default()).unwrap();
    }

    /// The skip-scan must reject everything the decode rejects — a
    /// section passing `skip_rnet_section` can never fail to decode later
    /// (the lazy image relies on this to keep per-Rnet decodes
    /// infallible). Duplicate source nodes are the one structural error
    /// the byte-walk could otherwise miss.
    #[test]
    fn skip_scan_rejects_duplicate_sources_like_decode() {
        // A hand-built section: 2 sources, both node 0, each with one
        // shortcut to node 1 at distance 1.0 and no waypoints.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes()); // num_sources
        for _ in 0..2 {
            buf.extend_from_slice(&0u32.to_le_bytes()); // from = 0 (duplicate)
            buf.extend_from_slice(&1u32.to_le_bytes()); // num_edges
            buf.extend_from_slice(&1u32.to_le_bytes()); // to
            buf.extend_from_slice(&1.0f64.to_le_bytes()); // dist
            buf.extend_from_slice(&0u32.to_le_bytes()); // via_len
        }
        let mut pos = 0;
        let decode = ShortcutStore::decode_rnet_section(&buf, &mut pos, 4);
        let mut pos = 0;
        let skip = ShortcutStore::skip_rnet_section(&buf, &mut pos, 4);
        assert!(decode.is_err(), "decode must reject duplicate sources");
        assert!(skip.is_err(), "skip-scan must reject exactly what decode rejects");
    }

    #[test]
    fn travel_time_metric_builds_distinct_shortcuts() {
        let g = road_network::generator::Dataset::CaHighways.generate_scaled(0.02, 5).unwrap();
        let cfg = HierarchyConfig { fanout: 4, levels: 2, ..Default::default() };
        let hier = RnetHierarchy::build(&g, &cfg).unwrap();
        let dist_store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &Default::default());
        let time_store =
            ShortcutStore::build(&g, &hier, WeightKind::TravelTime, &Default::default());
        // Same topology, different weights.
        let mut diverged = false;
        for r in hier.rnets_at_level(hier.levels()) {
            for &b in hier.borders(r) {
                for sc in dist_store.from(r, b) {
                    if let Some(t) = time_store.between(r, b, sc.to) {
                        if !t.dist.approx_eq(sc.dist) {
                            diverged = true;
                        }
                    }
                }
            }
        }
        assert!(diverged, "time-metric shortcuts should differ from distance-metric ones");
    }

    /// The pruning rule, verified post hoc against restricted shortest-path
    /// distances on a unit grid (heavy with equal-weight ties): the store
    /// holds `(b, t)` **iff** the restricted distance is finite and no
    /// third border `m` covers it with `d(b,m) + d(m,t) <= d(b,t)`.  Since
    /// `d` is a shortest-path distance, a covering split can only be
    /// *exactly equal* (triangle inequality), so every covered pair this
    /// test sees is an equal-weight tie — pinning that ties drop the
    /// shortcut rather than keep it.
    #[test]
    fn matrix_rule_governs_membership_and_ties_drop() {
        let g = simple::grid(8, 8, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        let mut dij = Dijkstra::for_network(&g);
        let mut tie_dropped = false;
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                let borders = hier.borders(r);
                let nb = borders.len();
                let mut dmat = vec![Weight::INFINITY; nb * nb];
                for (bi, &b) in borders.iter().enumerate() {
                    dij.expand_filtered_multi(
                        &g,
                        WeightKind::Distance,
                        &[(b, Weight::ZERO)],
                        |e| hier.rnet_of_edge_at(e, lv) == r,
                        &mut |n, d| {
                            if let Some(ti) = borders.iter().position(|&t| t == n) {
                                dmat[bi * nb + ti] = d;
                            }
                            road_network::dijkstra::Control::Continue
                        },
                    );
                }
                for bi in 0..nb {
                    for ti in 0..nb {
                        if ti == bi {
                            continue;
                        }
                        let d = dmat[bi * nb + ti];
                        let covered = (0..nb).any(|mi| {
                            mi != bi && mi != ti && dmat[bi * nb + mi] + dmat[mi * nb + ti] <= d
                        });
                        let keep = d.is_finite() && !covered;
                        let present = store.between(r, borders[bi], borders[ti]).is_some();
                        assert_eq!(
                            present, keep,
                            "{r:?}: membership of {}->{} disagrees with the matrix rule \
                             (d = {d}, covered = {covered})",
                            borders[bi], borders[ti]
                        );
                        if d.is_finite() && covered {
                            tie_dropped = true;
                        }
                    }
                }
            }
        }
        assert!(tie_dropped, "unit grid produced no equal-weight tie to pin");
    }

    /// Degenerate leaves: a single-border Rnet keeps no shortcuts at all,
    /// and a zero-interior Rnet keeps exactly the direct border-to-border
    /// arc with an empty via list.  Border pairs disconnected *within*
    /// their Rnet stay absent from the store, not stored as infinity.
    #[test]
    fn degenerate_leaves_single_border_and_zero_interior() {
        // Path a-b-c-d; leaf 1 owns only the middle edge b-c, so it has
        // borders {b, c} and zero interior nodes, while b and c fall in two
        // different components of leaf 0 (a-b and c-d).
        let g = simple::chain(4, 1.0);
        let edges: Vec<_> = g.edge_ids().collect();
        let hier =
            RnetHierarchy::from_leaf_assignment(&g, 2, 1, |e| u32::from(e == edges[1])).unwrap();
        let store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &Default::default());
        let (b, c) = (NodeId(1), NodeId(2));
        let middle = hier.leaf_of_edge(edges[1]);
        let outer = hier.leaf_of_edge(edges[0]);
        let sc = store.between(middle, b, c).expect("zero-interior leaf keeps the direct arc");
        assert_eq!(sc.dist, Weight::new(1.0));
        assert!(sc.via.is_empty(), "direct border-to-border arc must have no waypoints");
        assert!(store.between(middle, c, b).is_some(), "shortcuts are stored per direction");
        // b and c are disconnected inside leaf 0: absent, not infinite.
        assert!(store.between(outer, b, c).is_none());
        assert!(store.between(outer, c, b).is_none());

        // Path a-b-c split at b: every leaf sees exactly one border, so the
        // whole store is empty.
        let g = simple::chain(3, 1.0);
        let edges: Vec<_> = g.edge_ids().collect();
        let hier =
            RnetHierarchy::from_leaf_assignment(&g, 2, 1, |e| u32::from(e == edges[1])).unwrap();
        let store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &Default::default());
        assert_eq!(store.num_shortcuts(), 0, "single-border Rnets keep no shortcuts");
    }
}
