//! Shortcuts (Definition 3) and their bottom-up construction (Lemma 2).
//!
//! For every Rnet, shortcuts connect its border nodes along shortest paths
//! *restricted to the Rnet* — the compositional variant Lemma 2 computes:
//! finest-level shortcuts come from Dijkstra runs confined to the Rnet's
//! physical edges, and level-`i` shortcuts run over an overlay graph whose
//! edges are the level-`i+1` shortcuts of the Rnet's children. (Any global
//! shortest path decomposes at border nodes into intra-Rnet segments, so
//! this preserves all network distances; see ARCHITECTURE.md, Design
//! notes §1.)
//!
//! Lemma 4 pruning: a shortcut whose path passes through *another border of
//! the same Rnet* is transitively reachable via that border's own shortcuts
//! at equal total distance, so it is dropped. This keeps the overlay graphs
//! and Route Overlay sparse without losing correctness.
//!
//! Each shortcut stores its intermediate *waypoints* — physical nodes at
//! the finest level, child border nodes above — which is exactly the
//! paper's representation `S(n1,n3) = (S(n1,nd), S(nd,n3))`; the recursive
//! [`ShortcutStore::expand`] turns a shortcut back into a full physical
//! [`Path`].
//!
//! Each Rnet's shortcut map sits behind its own [`Arc`], so cloning the
//! store is an `O(#Rnets)` pointer copy and a refresh of one Rnet leaves
//! every other Rnet's map physically shared with prior clones. This is
//! what makes snapshot publication in [`crate::live`] cheap: an update
//! clones only the affected Rnets' shortcut data.

use crate::hierarchy::{RnetHierarchy, RnetId};
use road_network::dijkstra::{LocalDijkstra, LocalEdge};
use road_network::graph::{RoadNetwork, WeightKind};
use road_network::hash::FastMap;
use road_network::path::Path;
use road_network::{NodeId, Weight};
use std::sync::Arc;

/// One directed shortcut out of a border node.
#[derive(Clone, Debug)]
pub struct ShortcutEdge {
    /// Target border node.
    pub to: NodeId,
    /// Shortest-path distance within the Rnet.
    pub dist: Weight,
    /// Intermediate waypoints: physical nodes (finest level) or child
    /// border nodes (upper levels); endpoints excluded.
    pub via: Vec<NodeId>,
}

/// Shortcut construction options.
#[derive(Clone, Copy, Debug)]
pub struct ShortcutOptions {
    /// Apply Lemma 4: drop shortcuts covered by other shortcuts of the
    /// same Rnet. On by default; the ablation benchmark switches it off.
    pub prune_transitive: bool,
}

impl Default for ShortcutOptions {
    fn default() -> Self {
        ShortcutOptions { prune_transitive: true }
    }
}

/// All shortcuts of the hierarchy, grouped per Rnet and source node.
///
/// Cloning the store is cheap (`O(#Rnets)` [`Arc`] bumps) and shares every
/// per-Rnet map with the original; a refresh then replaces only the
/// refreshed Rnet's map, which is the structural-sharing contract the
/// live engine's snapshots rely on.
#[derive(Clone)]
pub struct ShortcutStore {
    /// `per_rnet[r]` maps a border-node id to its outgoing shortcuts in `r`.
    per_rnet: Vec<Arc<FastMap<u32, Vec<ShortcutEdge>>>>,
    num_shortcuts: usize,
}

impl ShortcutStore {
    /// Builds every Rnet's shortcuts bottom-up (finest level first).
    pub fn build(
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        opts: &ShortcutOptions,
    ) -> Self {
        let mut store = ShortcutStore {
            per_rnet: (0..hier.num_rnets()).map(|_| Arc::new(FastMap::default())).collect(),
            num_shortcuts: 0,
        };
        let mut scratch = BuildScratch::default();
        for level in (1..=hier.levels()).rev() {
            for r in hier.rnets_at_level(level) {
                let map = store.compute_rnet_map(g, hier, kind, r, opts, &mut scratch);
                store.replace_rnet(r, map);
            }
        }
        store
    }

    /// Outgoing shortcuts of node `n` within Rnet `r`.
    #[inline]
    pub fn from(&self, r: RnetId, n: NodeId) -> &[ShortcutEdge] {
        self.per_rnet[r.0 as usize].get(&n.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The stored shortcut `from -> to` within `r`, if kept.
    pub fn between(&self, r: RnetId, from: NodeId, to: NodeId) -> Option<&ShortcutEdge> {
        self.from(r, from).iter().find(|sc| sc.to == to)
    }

    /// Total number of stored (directed) shortcuts.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Modelled serialized size: 16 bytes per shortcut header plus 4 bytes
    /// per waypoint.
    pub fn size_bytes(&self) -> usize {
        let mut bytes = 0;
        for map in &self.per_rnet {
            for list in map.values() {
                for sc in list {
                    bytes += 16 + 4 * sc.via.len();
                }
            }
        }
        bytes
    }

    fn replace_rnet(&mut self, r: RnetId, map: FastMap<u32, Vec<ShortcutEdge>>) {
        let slot = &mut self.per_rnet[r.0 as usize];
        let old: usize = slot.values().map(Vec::len).sum();
        let new: usize = map.values().map(Vec::len).sum();
        *slot = Arc::new(map);
        self.num_shortcuts = self.num_shortcuts - old + new;
    }

    /// How many Rnets' shortcut maps this store physically shares with
    /// `other` (same allocation, not merely equal contents). Two stores
    /// related by snapshot forks share every Rnet that no intervening
    /// maintenance refreshed — the quantity the live-serving tests and
    /// `exp_live` use to prove updates never fall back to full rebuilds.
    pub fn shared_rnet_count(&self, other: &ShortcutStore) -> usize {
        self.per_rnet.iter().zip(&other.per_rnet).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Recomputes one Rnet's shortcuts in place; returns `true` when the
    /// shortcut set changed (the signal that drives upward propagation in
    /// the filter-and-refresh maintenance of Section 5.2).
    pub(crate) fn refresh_rnet(
        &mut self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> bool {
        let new = self.compute_rnet_map(g, hier, kind, r, opts, scratch);
        let changed = !Self::maps_equivalent(&self.per_rnet[r.0 as usize], &new);
        self.replace_rnet(r, new);
        changed
    }

    fn maps_equivalent(
        a: &FastMap<u32, Vec<ShortcutEdge>>,
        b: &FastMap<u32, Vec<ShortcutEdge>>,
    ) -> bool {
        let flatten = |m: &FastMap<u32, Vec<ShortcutEdge>>| {
            let mut v: Vec<(u32, u32, Weight)> = m
                .iter()
                .flat_map(|(&from, list)| list.iter().map(move |sc| (from, sc.to.0, sc.dist)))
                .collect();
            v.sort_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)).then(x.2.cmp(&y.2)));
            v
        };
        let (fa, fb) = (flatten(a), flatten(b));
        fa.len() == fb.len()
            && fa.iter().zip(&fb).all(|(x, y)| x.0 == y.0 && x.1 == y.1 && x.2.approx_eq(y.2))
    }

    /// Computes the shortcut map of one Rnet from the network (finest
    /// level) or from its children's current shortcuts (upper levels).
    fn compute_rnet_map(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        opts: &ShortcutOptions,
        scratch: &mut BuildScratch,
    ) -> FastMap<u32, Vec<ShortcutEdge>> {
        let borders = hier.borders(r);
        let mut out: FastMap<u32, Vec<ShortcutEdge>> = FastMap::default();
        if borders.len() < 2 {
            return out;
        }
        // --- Assemble the local graph ---------------------------------
        scratch.clear();
        if hier.is_leaf(r) {
            for &e in hier.leaf_edge_list(r) {
                let w = g.weight(e, kind);
                let (a, b) = g.edge(e).endpoints();
                let (la, lb) = (scratch.local(a.0), scratch.local(b.0));
                scratch.adj[la as usize].push(LocalEdge { to: lb, weight: w, label: e.0 });
                scratch.adj[lb as usize].push(LocalEdge { to: la, weight: w, label: e.0 });
            }
        } else {
            for child in hier.children(r) {
                for (&from, list) in self.per_rnet[child.0 as usize].iter() {
                    let lf = scratch.local(from);
                    for sc in list {
                        let lt = scratch.local(sc.to.0);
                        scratch.adj[lf as usize].push(LocalEdge {
                            to: lt,
                            weight: sc.dist,
                            label: 0,
                        });
                    }
                }
            }
        }
        // --- Dijkstra per border --------------------------------------
        let border_locals: Vec<u32> =
            borders.iter().filter_map(|&b| scratch.local_of.get(&b.0).copied()).collect();
        if border_locals.len() < 2 {
            return out;
        }
        let is_border: FastMap<u32, ()> = border_locals.iter().map(|&l| (l, ())).collect();
        for (bi, &b) in borders.iter().enumerate() {
            let Some(&src) = scratch.local_of.get(&b.0) else { continue };
            scratch.dij.run(&scratch.adj, src, &border_locals);
            let mut list: Vec<ShortcutEdge> = Vec::new();
            'targets: for (ti, &t) in borders.iter().enumerate() {
                if ti == bi {
                    continue;
                }
                let Some(&dst) = scratch.local_of.get(&t.0) else { continue };
                let dist = scratch.dij.dist(dst);
                if dist.is_infinite() {
                    continue; // internally disconnected Rnet: no shortcut
                }
                // Walk the predecessor chain to collect waypoints.
                let mut via: Vec<NodeId> = Vec::new();
                let mut cur = dst;
                while let Some((prev, _label)) = scratch.dij.pred(cur) {
                    if prev == src {
                        break;
                    }
                    if opts.prune_transitive && is_border.contains_key(&prev) {
                        continue 'targets; // Lemma 4: covered by other shortcuts
                    }
                    via.push(NodeId(scratch.global[prev as usize]));
                    cur = prev;
                }
                via.reverse();
                list.push(ShortcutEdge { to: t, dist, via });
            }
            if !list.is_empty() {
                out.insert(b.0, list);
            }
        }
        out
    }

    /// Expands a shortcut of Rnet `r` starting at `from` into the full
    /// physical path, weighted under `kind` (the metric the store was
    /// built with). Returns `None` only on store inconsistency.
    pub fn expand(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        r: RnetId,
        from: NodeId,
        sc: &ShortcutEdge,
    ) -> Option<Path> {
        let mut seq = Vec::with_capacity(sc.via.len() + 2);
        seq.push(from);
        seq.extend_from_slice(&sc.via);
        seq.push(sc.to);
        let mut path = Path::trivial(from);
        if hier.is_leaf(r) {
            for hop in seq.windows(2) {
                let e = g.edge_between(hop[0], hop[1])?;
                let seg = Path::from_parts(vec![hop[0], hop[1]], vec![e], g.weight(e, kind));
                path.extend(&seg);
            }
        } else {
            let children = hier.children(r);
            for hop in seq.windows(2) {
                // Pick the child providing the cheapest (u, v) shortcut.
                let mut best: Option<(RnetId, &ShortcutEdge)> = None;
                for &c in &children {
                    if let Some(s) = self.between(c, hop[0], hop[1]) {
                        if best.map(|(_, bs)| s.dist < bs.dist).unwrap_or(true) {
                            best = Some((c, s));
                        }
                    }
                }
                let (c, s) = best?;
                let seg = self.expand(g, hier, kind, c, hop[0], s)?;
                path.extend(&seg);
            }
        }
        Some(path)
    }

    /// Appends a flat binary encoding of the store to `out` (see
    /// [`crate::persist`] for the enclosing format). Public so tests can
    /// locate the store section inside a full image byte-for-byte.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.per_rnet.len() as u32).to_le_bytes());
        for map in &self.per_rnet {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            // Deterministic order for reproducible files.
            let mut sources: Vec<_> = map.keys().copied().collect();
            sources.sort_unstable();
            for from in sources {
                let list = &map[&from];
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for sc in list {
                    out.extend_from_slice(&sc.to.0.to_le_bytes());
                    out.extend_from_slice(&sc.dist.get().to_le_bytes());
                    out.extend_from_slice(&(sc.via.len() as u32).to_le_bytes());
                    for w in &sc.via {
                        out.extend_from_slice(&w.0.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Decodes a store previously written by
    /// [`ShortcutStore::serialize_into`]; `pos` is advanced past it.
    ///
    /// Every count is validated against the bytes that remain and every
    /// node id against `num_nodes`, so a truncated or bit-flipped buffer
    /// fails with an error instead of panicking, over-allocating, or
    /// producing a store that panics at query time.
    // roadlint: decode-fn
    pub(crate) fn deserialize(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
        expected_rnets: usize,
    ) -> Result<Self, String> {
        let num_rnets = Self::read_store_header(buf, pos, expected_rnets)?;
        let mut per_rnet = Vec::with_capacity(num_rnets.min(buf.len() / 4 + 1));
        let mut num_shortcuts = 0usize;
        for _ in 0..num_rnets {
            let map = Self::decode_rnet_section(buf, pos, num_nodes)?;
            num_shortcuts += map.values().map(Vec::len).sum::<usize>();
            per_rnet.push(Arc::new(map));
        }
        Ok(ShortcutStore { per_rnet, num_shortcuts })
    }

    /// Reads and validates the store header (the Rnet-section count)
    /// against the hierarchy — shared by the monolithic decode and the
    /// page-granular open so the two paths cannot drift.
    pub(crate) fn read_store_header(
        buf: &[u8],
        pos: &mut usize,
        expected_rnets: usize,
    ) -> Result<usize, String> {
        let num_rnets = read_u32(buf, pos)? as usize;
        if num_rnets != expected_rnets {
            return Err(format!(
                "shortcut store describes {num_rnets} Rnets, hierarchy has {expected_rnets}"
            ));
        }
        Ok(num_rnets)
    }

    /// Assembles a store from already-decoded per-Rnet maps (the lazy
    /// image's "materialize everything" path).
    pub(crate) fn from_rnet_maps(maps: Vec<FastMap<u32, Vec<ShortcutEdge>>>) -> Self {
        let num_shortcuts = maps.iter().flat_map(|m| m.values()).map(Vec::len).sum();
        ShortcutStore { per_rnet: maps.into_iter().map(Arc::new).collect(), num_shortcuts }
    }

    /// Decodes one Rnet's section of a serialized store, validating counts
    /// against the remaining bytes and node ids against `num_nodes`.
    // roadlint: decode-fn
    pub(crate) fn decode_rnet_section(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
    ) -> Result<FastMap<u32, Vec<ShortcutEdge>>, String> {
        let check_node = |id: u32| -> Result<NodeId, String> {
            if id >= num_nodes {
                return Err(format!("shortcut references node {id} outside 0..{num_nodes}"));
            }
            Ok(NodeId(id))
        };
        let num_sources = read_u32(buf, pos)? as usize;
        // A source costs at least 8 bytes (node id + edge count); reject an
        // over-claimed count before looping on it.
        if num_sources > (buf.len() - *pos) / 8 {
            return Err("truncated shortcut store (source count exceeds buffer)".into());
        }
        let mut map: FastMap<u32, Vec<ShortcutEdge>> = FastMap::default();
        for _ in 0..num_sources {
            let from = check_node(read_u32(buf, pos)?)?.0;
            let num_edges = read_u32(buf, pos)? as usize;
            // A shortcut costs at least 16 bytes; an over-claimed count
            // must not drive a huge allocation.
            if num_edges > (buf.len() - *pos) / 16 {
                return Err("truncated shortcut store (edge count exceeds buffer)".into());
            }
            let mut list = Vec::with_capacity(num_edges);
            for _ in 0..num_edges {
                let to = check_node(read_u32(buf, pos)?)?;
                let dist = read_f64(buf, pos)?;
                if dist.is_nan() || dist < 0.0 {
                    return Err(format!("corrupt shortcut distance {dist}"));
                }
                let via_len = read_u32(buf, pos)? as usize;
                if via_len > (buf.len() - *pos) / 4 {
                    return Err("truncated shortcut store (via count exceeds buffer)".into());
                }
                let mut via = Vec::with_capacity(via_len);
                for _ in 0..via_len {
                    via.push(check_node(read_u32(buf, pos)?)?);
                }
                list.push(ShortcutEdge { to, dist: Weight::new(dist), via });
            }
            if map.insert(from, list).is_some() {
                return Err(format!("duplicate shortcut source node {from}"));
            }
        }
        Ok(map)
    }

    /// Walks (and fully validates) one Rnet's section without building the
    /// map — how a lazily-opened image records per-Rnet byte ranges up
    /// front at a fraction of the decode cost. Must reject everything
    /// [`ShortcutStore::decode_rnet_section`] rejects (including duplicate
    /// source nodes), so a section that passes here can never fail to
    /// decode later.
    pub(crate) fn skip_rnet_section(
        buf: &[u8],
        pos: &mut usize,
        num_nodes: u32,
    ) -> Result<(), String> {
        let check_node = |id: u32| -> Result<(), String> {
            if id >= num_nodes {
                return Err(format!("shortcut references node {id} outside 0..{num_nodes}"));
            }
            Ok(())
        };
        let num_sources = read_u32(buf, pos)? as usize;
        // Same fail-fast bound as decode_rnet_section: at least 8 bytes per
        // source.
        if num_sources > (buf.len() - *pos) / 8 {
            return Err("truncated shortcut store (source count exceeds buffer)".into());
        }
        let mut seen_sources: road_network::hash::FastSet<u32> = Default::default();
        for _ in 0..num_sources {
            let from = read_u32(buf, pos)?;
            check_node(from)?;
            if !seen_sources.insert(from) {
                return Err(format!("duplicate shortcut source node {from}"));
            }
            let num_edges = read_u32(buf, pos)? as usize;
            if num_edges > (buf.len() - *pos) / 16 {
                return Err("truncated shortcut store (edge count exceeds buffer)".into());
            }
            for _ in 0..num_edges {
                check_node(read_u32(buf, pos)?)?;
                let dist = read_f64(buf, pos)?;
                if dist.is_nan() || dist < 0.0 {
                    return Err(format!("corrupt shortcut distance {dist}"));
                }
                let via_len = read_u32(buf, pos)? as usize;
                if via_len > (buf.len() - *pos) / 4 {
                    return Err("truncated shortcut store (via run exceeds buffer)".into());
                }
                let end = *pos + via_len * 4;
                for _ in 0..via_len {
                    check_node(read_u32(buf, pos)?)?;
                }
                debug_assert_eq!(*pos, end);
            }
        }
        Ok(())
    }

    /// Rebuilds from scratch and verifies this store describes the same
    /// distances — the maintenance tests' ground truth.
    pub fn verify_against_rebuild(
        &self,
        g: &RoadNetwork,
        hier: &RnetHierarchy,
        kind: WeightKind,
        opts: &ShortcutOptions,
    ) -> Result<(), String> {
        let fresh = ShortcutStore::build(g, hier, kind, opts);
        for (i, (a, b)) in self.per_rnet.iter().zip(&fresh.per_rnet).enumerate() {
            if !Self::maps_equivalent(a, b) {
                return Err(format!("Rnet R{i} shortcuts diverge from a fresh rebuild"));
            }
        }
        Ok(())
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = pos.checked_add(4).ok_or("truncated shortcut store")?;
    let b = buf.get(*pos..end).and_then(|b| b.first_chunk::<4>());
    let b = *b.ok_or("truncated shortcut store")?;
    *pos = end;
    Ok(u32::from_le_bytes(b))
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, String> {
    let end = pos.checked_add(8).ok_or("truncated shortcut store")?;
    let b = buf.get(*pos..end).and_then(|b| b.first_chunk::<8>());
    let b = *b.ok_or("truncated shortcut store")?;
    *pos = end;
    Ok(f64::from_le_bytes(b))
}

/// Reusable allocations for shortcut computation.
#[derive(Default)]
pub(crate) struct BuildScratch {
    local_of: FastMap<u32, u32>,
    global: Vec<u32>,
    adj: Vec<Vec<LocalEdge>>,
    dij: LocalDijkstra,
}

impl BuildScratch {
    fn clear(&mut self) {
        self.local_of.clear();
        self.global.clear();
        self.adj.clear();
    }

    fn local(&mut self, global: u32) -> u32 {
        if let Some(&l) = self.local_of.get(&global) {
            return l;
        }
        let l = self.global.len() as u32;
        self.local_of.insert(global, l);
        self.global.push(global);
        self.adj.push(Vec::new());
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use road_network::dijkstra::Dijkstra;
    use road_network::generator::simple;

    fn build(
        g: &RoadNetwork,
        fanout: usize,
        levels: u32,
        prune: bool,
    ) -> (RnetHierarchy, ShortcutStore) {
        let cfg = HierarchyConfig { fanout, levels, ..Default::default() };
        let hier = RnetHierarchy::build(g, &cfg).unwrap();
        let store = ShortcutStore::build(
            g,
            &hier,
            WeightKind::Distance,
            &ShortcutOptions { prune_transitive: prune },
        );
        (hier, store)
    }

    /// Every stored shortcut must equal the Rnet-restricted shortest-path
    /// distance between its endpoints.
    fn assert_shortcuts_exact(g: &RoadNetwork, hier: &RnetHierarchy, store: &ShortcutStore) {
        let mut dij = Dijkstra::for_network(g);
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                for &b in hier.borders(r) {
                    for sc in store.from(r, b) {
                        let want = {
                            let mut found = None;
                            dij.expand_filtered_multi(
                                g,
                                WeightKind::Distance,
                                &[(b, Weight::ZERO)],
                                |e| hier.rnet_of_edge_at(e, lv) == r,
                                &mut |n, d| {
                                    if n == sc.to {
                                        found = Some(d);
                                        road_network::dijkstra::Control::Break
                                    } else {
                                        road_network::dijkstra::Control::Continue
                                    }
                                },
                            );
                            found
                        };
                        let want = want.unwrap_or(Weight::INFINITY);
                        assert!(
                            sc.dist.approx_eq(want),
                            "{r:?} shortcut {b}->{} = {} but restricted SP = {}",
                            sc.to,
                            sc.dist,
                            want
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chain_shortcuts_bridge_segments() {
        let g = simple::chain(16, 1.0);
        let (hier, store) = build(&g, 2, 2, true);
        assert!(store.num_shortcuts() > 0);
        assert_shortcuts_exact(&g, &hier, &store);
    }

    #[test]
    fn grid_shortcuts_match_restricted_dijkstra() {
        let g = simple::grid(8, 8, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        assert!(store.num_shortcuts() > 0);
        assert_shortcuts_exact(&g, &hier, &store);
    }

    #[test]
    fn unpruned_store_is_superset_of_pruned() {
        let g = simple::grid(9, 7, 1.0);
        let (_, pruned) = build(&g, 4, 2, true);
        let (hier, full) = build(&g, 4, 2, false);
        assert!(full.num_shortcuts() >= pruned.num_shortcuts());
        assert_shortcuts_exact(&g, &hier, &full);
        // Pruning must actually remove something on a grid this size.
        assert!(
            full.num_shortcuts() > pruned.num_shortcuts(),
            "Lemma 4 pruning had no effect: {} vs {}",
            full.num_shortcuts(),
            pruned.num_shortcuts()
        );
    }

    #[test]
    fn expansion_yields_valid_physical_paths() {
        let g = simple::grid(8, 8, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        let mut expanded = 0;
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                for &b in hier.borders(r) {
                    for sc in store.from(r, b) {
                        let p = store
                            .expand(&g, &hier, WeightKind::Distance, r, b, sc)
                            .expect("expandable");
                        assert_eq!(p.source(), b);
                        assert_eq!(p.target(), sc.to);
                        assert!(p.validate(&g, WeightKind::Distance), "invalid path");
                        assert!(
                            p.total().approx_eq(sc.dist),
                            "expanded dist {} != shortcut dist {}",
                            p.total(),
                            sc.dist
                        );
                        expanded += 1;
                    }
                }
            }
        }
        assert!(expanded > 0);
    }

    #[test]
    fn pruned_shortcut_paths_avoid_other_borders() {
        let g = simple::grid(10, 10, 1.0);
        let (hier, store) = build(&g, 4, 2, true);
        for lv in 1..=hier.levels() {
            for r in hier.rnets_at_level(lv) {
                let borders = hier.borders(r);
                for &b in borders {
                    for sc in store.from(r, b) {
                        for w in &sc.via {
                            assert!(
                                !borders.contains(w),
                                "{r:?}: kept shortcut {b}->{} passes border {w}",
                                sc.to
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_detects_weight_changes() {
        let mut g = simple::grid(6, 6, 1.0);
        let (hier, mut store) = build(&g, 4, 2, true);
        let mut scratch = BuildScratch::default();
        // Pick an edge inside some leaf Rnet with shortcuts.
        let e = g.edge_ids().next().unwrap();
        let leaf = hier.leaf_of_edge(e);
        // No-op refresh: nothing changed.
        let changed = store.refresh_rnet(
            &g,
            &hier,
            WeightKind::Distance,
            leaf,
            &Default::default(),
            &mut scratch,
        );
        assert!(!changed, "refresh without a weight change must be a no-op");
        // Make the edge very expensive and refresh.
        g.set_weight(e, WeightKind::Distance, Weight::new(100.0)).unwrap();
        store.refresh_rnet(
            &g,
            &hier,
            WeightKind::Distance,
            leaf,
            &Default::default(),
            &mut scratch,
        );
        // Full rebuild equivalence after refreshing every ancestor chain.
        let mut r = leaf;
        while r.is_valid() {
            store.refresh_rnet(
                &g,
                &hier,
                WeightKind::Distance,
                r,
                &Default::default(),
                &mut scratch,
            );
            r = hier.parent(r);
        }
        store.verify_against_rebuild(&g, &hier, WeightKind::Distance, &Default::default()).unwrap();
    }

    /// The skip-scan must reject everything the decode rejects — a
    /// section passing `skip_rnet_section` can never fail to decode later
    /// (the lazy image relies on this to keep per-Rnet decodes
    /// infallible). Duplicate source nodes are the one structural error
    /// the byte-walk could otherwise miss.
    #[test]
    fn skip_scan_rejects_duplicate_sources_like_decode() {
        // A hand-built section: 2 sources, both node 0, each with one
        // shortcut to node 1 at distance 1.0 and no waypoints.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes()); // num_sources
        for _ in 0..2 {
            buf.extend_from_slice(&0u32.to_le_bytes()); // from = 0 (duplicate)
            buf.extend_from_slice(&1u32.to_le_bytes()); // num_edges
            buf.extend_from_slice(&1u32.to_le_bytes()); // to
            buf.extend_from_slice(&1.0f64.to_le_bytes()); // dist
            buf.extend_from_slice(&0u32.to_le_bytes()); // via_len
        }
        let mut pos = 0;
        let decode = ShortcutStore::decode_rnet_section(&buf, &mut pos, 4);
        let mut pos = 0;
        let skip = ShortcutStore::skip_rnet_section(&buf, &mut pos, 4);
        assert!(decode.is_err(), "decode must reject duplicate sources");
        assert!(skip.is_err(), "skip-scan must reject exactly what decode rejects");
    }

    #[test]
    fn travel_time_metric_builds_distinct_shortcuts() {
        let g = road_network::generator::Dataset::CaHighways.generate_scaled(0.02, 5).unwrap();
        let cfg = HierarchyConfig { fanout: 4, levels: 2, ..Default::default() };
        let hier = RnetHierarchy::build(&g, &cfg).unwrap();
        let dist_store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &Default::default());
        let time_store =
            ShortcutStore::build(&g, &hier, WeightKind::TravelTime, &Default::default());
        // Same topology, different weights.
        let mut diverged = false;
        for r in hier.rnets_at_level(hier.levels()) {
            for &b in hier.borders(r) {
                for sc in dist_store.from(r, b) {
                    if let Some(t) = time_store.between(r, b, sc.to) {
                        if !t.dist.approx_eq(sc.dist) {
                            diverged = true;
                        }
                    }
                }
            }
        }
        assert!(diverged, "time-metric shortcuts should differ from distance-metric ones");
    }
}
