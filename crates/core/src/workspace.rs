//! Reusable, allocation-free per-query search state.
//!
//! Every LDSQ evaluation needs the same scratch containers: tentative
//! distance labels, predecessor links, a settled marker, a priority queue,
//! a seen-object set and a small Rnet stack for `ChoosePath`. Allocating
//! them per query (as hash maps, the original design) makes a heavy-traffic
//! deployment pay allocator and hashing costs proportional to the query
//! rate. [`SearchWorkspace`] replaces them with dense arrays indexed by
//! node id and *invalidated by a bumped generation counter* instead of
//! being cleared: starting a query is `O(1)`, and a label is valid only
//! when its stamp equals the current round. The same reuse discipline
//! already drives [`road_network::dijkstra::Dijkstra`]; this module applies
//! it to the Route Overlay expansion, which additionally tracks objects and
//! shortcut hops.
//!
//! Workspaces reach queries two ways:
//!
//! * **explicitly** — callers that own their serving loop create one
//!   `SearchWorkspace` per thread and pass it to
//!   [`RoadFramework::knn_with`](crate::framework::RoadFramework::knn_with)
//!   / [`range_with`](crate::framework::RoadFramework::range_with) together
//!   with a reusable hit buffer: zero per-query container allocations;
//! * **implicitly** — the convenience APIs (`knn`, `range`, …) borrow a
//!   workspace from a small per-thread pool and hand it to the returned
//!   [`SearchResult`](crate::search::SearchResult), which keeps the dense
//!   distance/predecessor labels alive for `distance_to_node` /
//!   `path_to_node` and recycles the workspace back into the pool when the
//!   result is dropped.

use crate::hierarchy::RnetId;
use road_network::hash::FastSet;
use road_network::{EdgeId, Weight};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a hop in the predecessor chain was made.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Hop {
    Edge(EdgeId),
    Shortcut(RnetId),
}

/// Priority-queue key. The variant order is load-bearing: at equal
/// distance a **node** must pop before an **object**, so that every node
/// able to host an equal-distance object is expanded (and its objects
/// enqueued) before any object at that distance is reported. Equal-distance
/// objects then pop in ascending object-id order — exactly the
/// `(distance, object id)` tie-break the brute-force oracles use. (The
/// previous ordering popped objects first, which could report the wrong
/// object when a tie straddled the k-th slot.)
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
pub(crate) enum QueueKey {
    Node(u32),
    Object(u64),
}

const NO_PRED: u32 = u32::MAX;

/// Reusable scratch state for one in-flight overlay search.
///
/// All per-node arrays are generation-stamped: an entry is meaningful only
/// when its stamp equals the workspace's current round, so starting a new
/// query never touches the arrays. Create one per serving thread and reuse
/// it across queries; results are identical to a fresh workspace (a
/// property the crate's proptests pin down).
pub struct SearchWorkspace {
    /// Tentative distance label per node; valid iff `stamp` matches.
    dist: Vec<Weight>,
    /// Predecessor link per node; valid iff `stamp` matches.
    pred: Vec<(u32, Hop)>,
    /// Label generation per node.
    stamp: Vec<u32>,
    /// Settle generation per node.
    settled: Vec<u32>,
    /// Current round; bumped per query.
    round: u32,
    /// Pending nodes and objects in non-descending distance order.
    heap: BinaryHeap<Reverse<(Weight, QueueKey)>>,
    /// Objects already reported this round (object ids are sparse `u64`s,
    /// so this one stays a hash set; `clear()` keeps its capacity).
    seen_objects: FastSet<u64>,
    /// `ChoosePath` descent stack, reused across settled nodes.
    rnet_stack: Vec<RnetId>,
    /// Queries served so far (drives `SearchStats::workspace_reused`).
    runs: u64,
}

impl Default for SearchWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchWorkspace {
    /// An empty workspace; arrays grow to the network size on first use.
    pub fn new() -> Self {
        Self::with_node_capacity(0)
    }

    /// A workspace pre-sized for `num_nodes` nodes.
    pub fn with_node_capacity(num_nodes: usize) -> Self {
        SearchWorkspace {
            dist: vec![Weight::INFINITY; num_nodes],
            pred: vec![(NO_PRED, Hop::Edge(EdgeId(u32::MAX))); num_nodes],
            stamp: vec![0; num_nodes],
            settled: vec![0; num_nodes],
            round: 0,
            heap: BinaryHeap::new(),
            seen_objects: FastSet::default(),
            rnet_stack: Vec::new(),
            runs: 0,
        }
    }

    /// Number of queries this workspace has served.
    pub fn reuse_count(&self) -> u64 {
        self.runs
    }

    /// Nodes the dense arrays are currently sized for.
    pub fn node_capacity(&self) -> usize {
        self.dist.len()
    }

    /// Starts a new round: grows the arrays if the network did, bumps the
    /// generation, and clears the (capacity-retaining) containers.
    pub(crate) fn begin(&mut self, num_nodes: usize) {
        if num_nodes > self.dist.len() {
            self.dist.resize(num_nodes, Weight::INFINITY);
            self.pred.resize(num_nodes, (NO_PRED, Hop::Edge(EdgeId(u32::MAX))));
            self.stamp.resize(num_nodes, 0);
            self.settled.resize(num_nodes, 0);
        }
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // Stamp wrap-around: invalidate everything explicitly once
            // every 2^32 queries.
            self.stamp.fill(0);
            self.settled.fill(0);
            self.round = 1;
        }
        self.heap.clear();
        self.seen_objects.clear();
        self.rnet_stack.clear();
        self.runs += 1;
    }

    /// Distance label of `n` this round (`None` = unlabelled).
    #[inline]
    pub(crate) fn label_of(&self, n: u32) -> Option<Weight> {
        let i = n as usize;
        if i < self.stamp.len() && self.stamp[i] == self.round {
            Some(self.dist[i])
        } else {
            None
        }
    }

    /// Predecessor link of `n` this round (`None` for sources and
    /// unlabelled nodes).
    #[inline]
    pub(crate) fn pred_of(&self, n: u32) -> Option<(u32, Hop)> {
        let i = n as usize;
        if i < self.stamp.len() && self.stamp[i] == self.round && self.pred[i].0 != NO_PRED {
            Some(self.pred[i])
        } else {
            None
        }
    }

    /// Labels the source node at distance zero with no predecessor.
    #[inline]
    pub(crate) fn label_source(&mut self, n: u32) {
        let i = n as usize;
        self.dist[i] = Weight::ZERO;
        self.pred[i] = (NO_PRED, Hop::Edge(EdgeId(u32::MAX)));
        self.stamp[i] = self.round;
    }

    #[inline]
    pub(crate) fn is_settled(&self, n: u32) -> bool {
        self.settled[n as usize] == self.round
    }

    #[inline]
    pub(crate) fn mark_settled(&mut self, n: u32) {
        self.settled[n as usize] = self.round;
    }

    /// Relaxes a hop `from -> to` at new distance `nd`; returns `true` if
    /// the label improved and a heap entry was pushed.
    #[inline]
    pub(crate) fn relax(&mut self, from: u32, to: u32, nd: Weight, hop: Hop) -> bool {
        let i = to as usize;
        let cur = if self.stamp[i] == self.round { self.dist[i] } else { Weight::INFINITY };
        if nd < cur && self.settled[i] != self.round {
            self.dist[i] = nd;
            self.pred[i] = (from, hop);
            self.stamp[i] = self.round;
            self.heap.push(Reverse((nd, QueueKey::Node(to))));
            true
        } else {
            false
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, d: Weight, key: QueueKey) {
        self.heap.push(Reverse((d, key)));
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(Weight, QueueKey)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// First sighting of object `oid` this round?
    #[inline]
    pub(crate) fn first_object_sighting(&mut self, oid: u64) -> bool {
        self.seen_objects.insert(oid)
    }

    #[inline]
    pub(crate) fn object_seen(&self, oid: u64) -> bool {
        self.seen_objects.contains(&oid)
    }

    /// Takes the `ChoosePath` stack out for the duration of one node's
    /// descent (two `&mut` paths into the workspace would otherwise
    /// conflict); return it with [`Self::put_back_stack`].
    #[inline]
    pub(crate) fn take_stack(&mut self) -> Vec<RnetId> {
        std::mem::take(&mut self.rnet_stack)
    }

    #[inline]
    pub(crate) fn put_back_stack(&mut self, stack: Vec<RnetId>) {
        self.rnet_stack = stack;
    }
}

// ---------------------------------------------------------------------------
// Per-thread workspace pool
// ---------------------------------------------------------------------------

/// Upper bound on pooled workspaces per thread. More than one is only
/// needed while several `SearchResult`s are alive at once (each keeps its
/// workspace until dropped); the cap bounds memory if a caller hoards
/// results.
const POOL_CAP: usize = 8;

thread_local! {
    // Boxed on purpose (not `clippy::vec_box` noise): acquire/release
    // shuttle the same allocation between the pool and `PooledWorkspace`
    // guards without ever moving the workspace struct itself.
    #[allow(clippy::vec_box)]
    static POOL: RefCell<Vec<Box<SearchWorkspace>>> = const { RefCell::new(Vec::new()) };
}

/// Borrows a workspace from this thread's pool (or creates one).
pub(crate) fn acquire() -> Box<SearchWorkspace> {
    POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a workspace to this thread's pool.
pub(crate) fn release(ws: Box<SearchWorkspace>) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(ws);
        }
    });
}

/// Owning guard inside a [`SearchResult`](crate::search::SearchResult):
/// keeps the labels of the producing query readable and recycles the
/// workspace into the thread-local pool when dropped. Deliberately a
/// separate type so `SearchResult` itself has no `Drop` impl and its
/// public `hits` field can still be moved out.
pub(crate) struct PooledWorkspace(Option<Box<SearchWorkspace>>);

impl PooledWorkspace {
    pub(crate) fn new(ws: Box<SearchWorkspace>) -> Self {
        PooledWorkspace(Some(ws))
    }

    #[inline]
    pub(crate) fn get(&self) -> Option<&SearchWorkspace> {
        self.0.as_deref()
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.0.take() {
            release(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_invalidate_without_clearing() {
        let mut ws = SearchWorkspace::with_node_capacity(4);
        ws.begin(4);
        ws.label_source(2);
        assert_eq!(ws.label_of(2), Some(Weight::ZERO));
        assert!(ws.relax(2, 3, Weight::new(1.5), Hop::Edge(EdgeId(0))));
        assert_eq!(ws.label_of(3), Some(Weight::new(1.5)));
        // New round: every label is stale, nothing was cleared.
        ws.begin(4);
        assert_eq!(ws.label_of(2), None);
        assert_eq!(ws.label_of(3), None);
        assert!(!ws.is_settled(2));
        assert_eq!(ws.reuse_count(), 2);
    }

    #[test]
    fn pool_recycles_up_to_cap() {
        let before = POOL.with(|p| p.borrow().len());
        let ws = acquire();
        release(ws);
        let after = POOL.with(|p| p.borrow().len());
        assert!(after >= before.min(POOL_CAP));
        for _ in 0..(POOL_CAP * 2) {
            release(Box::default());
        }
        assert!(POOL.with(|p| p.borrow().len()) <= POOL_CAP);
    }

    #[test]
    fn queue_key_orders_nodes_before_objects() {
        // The tie-break contract: at equal distance, nodes expand first and
        // objects report in ascending id order.
        assert!(QueueKey::Node(u32::MAX) < QueueKey::Object(0));
        assert!(QueueKey::Object(3) < QueueKey::Object(5));
        assert!(QueueKey::Node(1) < QueueKey::Node(2));
    }
}
