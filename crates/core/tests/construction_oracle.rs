//! Differential construction harness: the contraction-based
//! [`ShortcutStore::build`] must be **byte-equal** — identical serialized
//! bytes (exact f64 bits) *and* identical in-memory iteration order — to
//! the legacy all-pairs sweep kept as [`ShortcutStore::build_with_oracle`],
//! across random worlds with varied fanout, closed (infinite-weight) edges
//! and genuinely multi-component networks.  On top of the store diff, the
//! same worlds must answer kNN / range / aggregate queries identically
//! across all three engines built from the store (in-memory, eager paged,
//! lazily-opened persisted image).
//!
//! Weight classes are chosen so f64 arithmetic is exact (small integers
//! and dyadic rationals `k/64`): under exact arithmetic the contraction
//! remainder preserves every pairwise border distance bit-for-bit, which
//! is the invariant that makes the two builders interchangeable.
//!
//! This target needs the `oracle-build` feature (declared via
//! `[[test]] required-features` in Cargo.toml); workspace builds enable
//! it through the bench crate's dependency, so plain `cargo test` at the
//! workspace root runs it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_core::search::{Aggregate, AggregateKnnQuery};
use road_core::shortcut::{ShortcutOptions, ShortcutStore};
use road_core::{HierarchyConfig, RnetHierarchy};
use road_network::contractor::ContractionOrder;
use road_network::generator::simple;
use road_network::graph::{NetworkBuilder, RoadNetwork};
use road_network::Point;

/// Rewrites every edge's Distance weight deterministically from `seed` —
/// small integers (exact in f64) or dyadic rationals `k/64` (also exact) —
/// then closes up to `closed` edges with `Weight::INFINITY`.
fn reweight(g: &mut RoadNetwork, seed: u64, dyadic: bool, closed: usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_AD1C);
    let edges: Vec<_> = g.edge_ids().collect();
    for &e in &edges {
        let w = if dyadic {
            Weight::new(rng.random_range(1..=1024u32) as f64 / 64.0)
        } else {
            Weight::new(rng.random_range(1..=16u32) as f64)
        };
        g.set_weight(e, WeightKind::Distance, w).unwrap();
    }
    for _ in 0..closed {
        let e = edges[rng.random_range(0..edges.len())];
        g.set_weight(e, WeightKind::Distance, Weight::INFINITY).unwrap();
    }
}

/// Two disjoint components in one network: the partitioner and both
/// builders must cope with cross-component border pairs staying *absent*
/// from the store (not encoded as infinite arcs).
fn two_component_net(seed: u64) -> RoadNetwork {
    let mut b = NetworkBuilder::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let first: Vec<_> = (0..10).map(|i| b.add_node(Point::new(i as f64, 0.0))).collect();
    for w in first.windows(2) {
        b.add_edge(w[0], w[1], rng.random_range(1..=9u32) as f64).unwrap();
    }
    let second: Vec<_> =
        (0..12).map(|i| b.add_node(Point::new((i % 4) as f64, 4.0 + (i / 4) as f64))).collect();
    for w in second.windows(2) {
        b.add_edge(w[0], w[1], rng.random_range(1..=9u32) as f64).unwrap();
    }
    b.build()
}

fn serialize(store: &ShortcutStore) -> Vec<u8> {
    let mut out = Vec::new();
    store.serialize_into(&mut out);
    out
}

/// The pinned property: same count, same per-Rnet iteration order, same
/// serialized bytes.
fn assert_stores_byte_equal(
    g: &RoadNetwork,
    hier: &RnetHierarchy,
    opts: &ShortcutOptions,
    label: &str,
) {
    let fast = ShortcutStore::build(g, hier, WeightKind::Distance, opts);
    let oracle = ShortcutStore::build_with_oracle(g, hier, WeightKind::Distance, opts);
    assert_eq!(fast.num_shortcuts(), oracle.num_shortcuts(), "{label}: shortcut counts diverged");
    assert_eq!(
        fast.rnet_source_orders(),
        oracle.rnet_source_orders(),
        "{label}: per-Rnet map iteration order diverged"
    );
    assert_eq!(serialize(&fast), serialize(&oracle), "{label}: serialized bytes diverged");
}

fn hier_for(g: &RoadNetwork, fanout: usize, levels: u32) -> RnetHierarchy {
    RnetHierarchy::build(g, &HierarchyConfig { fanout, levels, ..Default::default() }).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random connected worlds, varied fanout/levels, exact-arithmetic
    /// weight classes, a few closed edges: contraction == sweep, always.
    #[test]
    fn contraction_matches_oracle_on_random_worlds(
        n in 16usize..70,
        extra in 0usize..25,
        seed in 0u64..1000,
        dyadic in (0u8..2).prop_map(|b| b == 1),
        closed in 0usize..4,
        fanout in (1u32..3).prop_map(|p| 1usize << p),
    ) {
        let mut g = simple::random_connected(n, extra, seed);
        reweight(&mut g, seed, dyadic, closed);
        let levels = if fanout >= 4 { 2 } else { 3 };
        let hier = hier_for(&g, fanout, levels);
        assert_stores_byte_equal(&g, &hier, &ShortcutOptions::default(),
            &format!("n={n} extra={extra} seed={seed} dyadic={dyadic} closed={closed} fanout={fanout}"));
    }

    /// Same property through the whole serving stack: the contraction-built
    /// framework answers kNN / range / aggregate queries identically from
    /// memory, from an eagerly laid-out paged store and from a lazily
    /// opened persisted image.
    #[test]
    fn engines_agree_on_contraction_built_worlds(
        n in 16usize..50,
        extra in 0usize..15,
        objects in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut net = simple::random_connected(n, extra, seed);
        reweight(&mut net, seed, false, 1);
        let fw = RoadFramework::builder(net).fanout(2).levels(2).build().unwrap();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        // Objects live only on open (finite-weight) edges: an object on a
        // closed edge is unreachable by definition.
        let open_edges: Vec<_> = fw
            .network()
            .edge_ids()
            .filter(|&e| fw.network().weight(e, WeightKind::Distance).is_finite())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000B_7EC7);
        for i in 0..objects {
            let e = open_edges[rng.random_range(0..open_edges.len())];
            let o = Object::new(
                ObjectId(i as u64),
                e,
                rng.random_range(0.0..=1.0),
                CategoryId(rng.random_range(0..4)),
            );
            ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
        }

        let num_nodes = fw.network().num_nodes() as u32;
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let opts = PagedOptions::with_buffer_pages(4);
        let eager = PagedEngine::new(&fw, &ad, opts).unwrap();
        let objs: Vec<Object> = ad.objects().cloned().collect();
        let image = PagedImage::open(fw.to_bytes()).unwrap();
        let lazy = PagedEngine::open(image, objs, opts).unwrap();

        for i in 0..12usize {
            let node = NodeId(rng.random_range(0..num_nodes));
            match i % 3 {
                0 => {
                    let q = KnnQuery::new(node, rng.random_range(1..6));
                    let mem = engine.knn(&q).unwrap().hits;
                    prop_assert_eq!(&mem, &eager.knn(&q).unwrap().hits, "eager kNN #{}", i);
                    prop_assert_eq!(&mem, &lazy.knn(&q).unwrap().hits, "lazy kNN #{}", i);
                }
                1 => {
                    let q = RangeQuery::new(node, Weight::new(rng.random_range(1.0..25.0)));
                    let mem = engine.range(&q).unwrap().hits;
                    prop_assert_eq!(&mem, &eager.range(&q).unwrap().hits, "eager range #{}", i);
                    prop_assert_eq!(&mem, &lazy.range(&q).unwrap().hits, "lazy range #{}", i);
                }
                _ => {
                    let other = NodeId(rng.random_range(0..num_nodes));
                    let agg = if i % 2 == 0 { Aggregate::Sum } else { Aggregate::Max };
                    let q = AggregateKnnQuery::new(vec![node, other], rng.random_range(1..5))
                        .with_aggregate(agg);
                    let mem = engine.aggregate_knn(&q).unwrap();
                    prop_assert_eq!(&mem, &eager.aggregate_knn(&q).unwrap(), "eager agg #{}", i);
                    prop_assert_eq!(&mem, &lazy.aggregate_knn(&q).unwrap(), "lazy agg #{}", i);
                }
            }
        }
    }
}

/// Cross-component border pairs must be absent in both builders, and the
/// stores still byte-agree.
#[test]
fn multi_component_worlds_byte_agree() {
    for seed in [3u64, 17, 99] {
        let g = two_component_net(seed);
        for fanout in [2usize, 4] {
            let hier = hier_for(&g, fanout, 2);
            assert_stores_byte_equal(
                &g,
                &hier,
                &ShortcutOptions::default(),
                &format!("two-component seed={seed} fanout={fanout}"),
            );
        }
    }
}

/// The final store is independent of the contraction order: every order
/// yields the same bytes (the remainder graphs differ, the border
/// distances they encode do not).
#[test]
fn store_is_contraction_order_independent() {
    let mut g = simple::grid(9, 8, 1.0);
    reweight(&mut g, 42, false, 2);
    let hier = hier_for(&g, 4, 2);
    let reference = serialize(&ShortcutStore::build(
        &g,
        &hier,
        WeightKind::Distance,
        &ShortcutOptions::default(),
    ));
    for order in [ContractionOrder::InputOrder, ContractionOrder::ReverseInput] {
        let opts = ShortcutOptions { contraction_order: order, ..Default::default() };
        let store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &opts);
        assert_eq!(serialize(&store), reference, "order {order:?} diverged");
    }
}

/// The witness-search budget is a pure speed knob: any forced budget —
/// zero (witnessing disabled), tiny (almost every witness missed), or
/// far beyond the adaptive default — must yield the same bytes as the
/// adaptive policy and as the legacy sweep.  Missed witnesses only make
/// the contraction remainder denser; the border distances it closes
/// over are identical.
#[test]
fn store_is_witness_budget_independent() {
    let mut g = simple::grid(9, 8, 1.0);
    reweight(&mut g, 0x11ED, false, 2);
    let hier = hier_for(&g, 2, 3);
    let reference = serialize(&ShortcutStore::build(
        &g,
        &hier,
        WeightKind::Distance,
        &ShortcutOptions::default(),
    ));
    for budget in [Some(0), Some(1), Some(4), Some(1 << 20)] {
        let opts = ShortcutOptions { witness_budget: budget, ..Default::default() };
        assert_stores_byte_equal(&g, &hier, &opts, "witness budget");
        let store = ShortcutStore::build(&g, &hier, WeightKind::Distance, &opts);
        assert_eq!(serialize(&store), reference, "budget {budget:?} diverged");
    }
}

/// Unpruned (ablation) builds go through the always-compiled sweep in both
/// entry points; they must agree bitwise too.
#[test]
fn unpruned_builds_byte_agree() {
    let mut g = simple::grid(7, 7, 1.0);
    reweight(&mut g, 7, true, 0);
    let hier = hier_for(&g, 2, 2);
    let opts = ShortcutOptions { prune_transitive: false, ..Default::default() };
    assert_stores_byte_equal(&g, &hier, &opts, "unpruned grid");
}

/// Medium-world stress diff (CI runs it under `--include-ignored`): a
/// 1600-node grid with randomized integer weights, fanout 4, three
/// levels, built both ways and diffed byte-for-byte — twice, under two
/// different contraction orders.
#[test]
#[ignore = "medium-world construction diff; run with --include-ignored"]
fn stress_medium_world_builds_byte_equal_both_ways() {
    let mut g = simple::grid(40, 40, 1.0);
    reweight(&mut g, 0xEDB7, false, 5);
    let hier = hier_for(&g, 4, 3);
    assert_stores_byte_equal(&g, &hier, &ShortcutOptions::default(), "grid 40x40 fanout=4");
    let opts = ShortcutOptions {
        contraction_order: ContractionOrder::InputOrder,
        witness_budget: Some(64),
        ..Default::default()
    };
    assert_stores_byte_equal(&g, &hier, &opts, "grid 40x40 fanout=4 input-order witnessed");
}
