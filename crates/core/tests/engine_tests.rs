//! Concurrency tests for [`QueryEngine`]: many threads hammering one
//! shared overlay must each get oracle-exact answers, whether they go
//! through the pooled convenience API, explicit per-thread workspaces, or
//! the batch entry point.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_core::search::oracle_knn;
use road_network::generator::simple;

/// Builds a 14x14 grid engine with scattered objects plus the oracle
/// answers for a deterministic query mix.
fn setup() -> (QueryEngine, Vec<KnnQuery>, Vec<Vec<SearchHit>>) {
    let g = simple::grid(14, 14, 1.0);
    let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edges: Vec<_> = fw.network().edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(77);
    for i in 0..30u64 {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..3)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    let mut queries = Vec::new();
    for q in 0..40 {
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let k = rng.random_range(1..7);
        let mut query = KnnQuery::new(node, k);
        if q % 3 == 0 {
            query = query.with_filter(ObjectFilter::Category(CategoryId(q as u16 % 3)));
        }
        queries.push(query);
    }
    let oracle: Vec<Vec<SearchHit>> = queries.iter().map(|q| oracle_knn(&fw, &ad, q)).collect();
    (QueryEngine::new(fw, ad), queries, oracle)
}

fn assert_matches_oracle(got: &[SearchHit], want: &[SearchHit], ctx: &str) {
    let g: Vec<u64> = got.iter().map(|h| h.object.0).collect();
    let w: Vec<u64> = want.iter().map(|h| h.object.0).collect();
    assert_eq!(g, w, "{ctx}: objects differ");
    for (a, b) in got.iter().zip(want) {
        assert!(a.distance.approx_eq(b.distance), "{ctx}: {} vs {}", a.distance, b.distance);
    }
}

#[test]
fn many_threads_agree_with_the_oracle() {
    let (engine, queries, oracle) = setup();
    std::thread::scope(|scope| {
        for t in 0..6usize {
            let engine = engine.clone();
            let queries = &queries;
            let oracle = &oracle;
            scope.spawn(move || {
                // Each thread interleaves the pooled API and an explicit
                // reused workspace, starting at a different offset so the
                // pool sees genuinely concurrent traffic.
                let mut ws = SearchWorkspace::new();
                let mut hits = Vec::new();
                for round in 0..3 {
                    for i in 0..queries.len() {
                        let idx = (i + t * 7 + round) % queries.len();
                        let q = &queries[idx];
                        let ctx = format!("thread {t} round {round} query {idx}");
                        if (i + t) % 2 == 0 {
                            let res = engine.knn(q).unwrap();
                            assert_matches_oracle(&res.hits, &oracle[idx], &ctx);
                        } else {
                            let stats = engine.knn_with(q, &mut ws, &mut hits).unwrap();
                            assert_matches_oracle(&hits, &oracle[idx], &ctx);
                            if ws.reuse_count() > 1 {
                                assert!(stats.workspace_reused, "{ctx}: reuse not recorded");
                            }
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn batch_knn_matches_sequential_and_scales_thread_counts() {
    let (engine, queries, oracle) = setup();
    for threads in [1usize, 2, 3, 8, 64] {
        let answers = engine.batch_knn(&queries, threads).unwrap();
        assert_eq!(answers.len(), queries.len());
        for (i, hits) in answers.iter().enumerate() {
            assert_matches_oracle(hits, &oracle[i], &format!("threads {threads} query {i}"));
        }
    }
}

#[test]
fn batch_range_matches_single_queries() {
    let (engine, _, _) = setup();
    let queries: Vec<RangeQuery> = (0..20)
        .map(|i| RangeQuery::new(NodeId(i * 9), Weight::new(4.0 + i as f64 / 3.0)))
        .collect();
    let sequential: Vec<Vec<SearchHit>> =
        queries.iter().map(|q| engine.range(q).unwrap().hits).collect();
    let batched = engine.batch_range(&queries, 4).unwrap();
    assert_eq!(batched.len(), sequential.len());
    for (b, s) in batched.iter().zip(&sequential) {
        assert_eq!(
            b.iter().map(|h| h.object.0).collect::<Vec<_>>(),
            s.iter().map(|h| h.object.0).collect::<Vec<_>>()
        );
    }
}

#[test]
fn batch_propagates_invalid_nodes() {
    let (engine, _, _) = setup();
    let bad = NodeId(engine.framework().network().num_nodes() as u32 + 5);
    let queries = vec![KnnQuery::new(NodeId(0), 1), KnnQuery::new(bad, 1)];
    assert!(engine.batch_knn(&queries, 2).is_err());
    assert!(engine.knn(&KnnQuery::new(bad, 1)).is_err());
}

/// Satellite regression: when several queries in a batch fail, the
/// reported error is that of the **lowest query index** — deterministic,
/// never "whichever worker thread loses the race". Distinct out-of-bounds
/// node ids make the failures distinguishable through the error value.
#[test]
fn batch_error_is_lowest_query_index() {
    let (engine, _, _) = setup();
    let n = engine.framework().network().num_nodes() as u32;
    for threads in [1usize, 2, 4, 7, 64] {
        let mut queries: Vec<KnnQuery> = (0..40u32).map(|i| KnnQuery::new(NodeId(i), 2)).collect();
        // Failures at indices 31, 17 and 6 — on different worker chunks
        // for most thread counts. Index 6 must win every time.
        queries[31] = KnnQuery::new(NodeId(n + 31), 2);
        queries[17] = KnnQuery::new(NodeId(n + 17), 2);
        queries[6] = KnnQuery::new(NodeId(n + 6), 2);
        let err = engine.batch_knn(&queries, threads).unwrap_err();
        assert_eq!(
            err,
            road_core::RoadError::NodeOutOfBounds(NodeId(n + 6)),
            "threads={threads}: batch must report the lowest failing index"
        );
        // Same contract for range batches.
        let mut ranges: Vec<RangeQuery> =
            (0..40u32).map(|i| RangeQuery::new(NodeId(i), Weight::new(2.0))).collect();
        ranges[25] = RangeQuery::new(NodeId(n + 25), Weight::new(2.0));
        ranges[9] = RangeQuery::new(NodeId(n + 9), Weight::new(2.0));
        let err = engine.batch_range(&ranges, threads).unwrap_err();
        assert_eq!(err, road_core::RoadError::NodeOutOfBounds(NodeId(n + 9)), "threads={threads}");
    }
}

#[test]
fn pooled_results_keep_labels_while_other_queries_run() {
    let (engine, queries, _) = setup();
    // Two results alive at once: the pool must hand out distinct
    // workspaces, and each result's labels must survive the other query.
    let a = engine.knn(&queries[0]).unwrap();
    let da = a.distance_to_node(queries[0].node);
    let b = engine.knn(&queries[1]).unwrap();
    assert_eq!(a.distance_to_node(queries[0].node), da, "labels invalidated by a later query");
    assert_eq!(da, Some(Weight::ZERO));
    // Paths reconstructed from a pooled result validate on the network.
    if let Some(hit) = a.hits.first() {
        let (path, _, _) =
            a.path_to_hit(engine.framework(), engine.directory(), hit).expect("path to hit");
        assert!(path.validate(engine.framework().network(), engine.framework().metric()));
    }
    drop(a);
    drop(b);
    // After recycling, fresh queries still answer (round bumping works).
    let again = engine.knn(&queries[0]).unwrap();
    assert_eq!(again.distance_to_node(queries[0].node), Some(Weight::ZERO));
}

#[test]
fn network_distance_is_thread_safe_and_consistent() {
    let (engine, _, _) = setup();
    let g = engine.framework().network();
    let kind = engine.framework().metric();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let engine = engine.clone();
            scope.spawn(move || {
                for i in 0..12u32 {
                    let from = NodeId((t * 31 + i * 7) % g.num_nodes() as u32);
                    let to = NodeId((t * 13 + i * 29) % g.num_nodes() as u32);
                    let got = engine.network_distance(from, to).unwrap();
                    let want = road_network::dijkstra::shortest_path_weight(g, kind, from, to);
                    match (got, want) {
                        (Some(a), Some(b)) => assert!(a.approx_eq(b), "{from}->{to}: {a} vs {b}"),
                        (a, b) => assert_eq!(a.is_some(), b.is_some(), "{from}->{to}"),
                    }
                }
            });
        }
    });
}
