//! Crate-level tests: search correctness against a brute-force oracle and
//! maintenance consistency on randomized workloads.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_core::search::{oracle_knn, oracle_range};
use road_network::generator::{simple, Dataset};
use road_network::graph::RoadNetwork;

/// Deterministically scatters `count` objects over the network's edges.
fn scatter_objects(
    fw: &RoadFramework,
    count: usize,
    categories: u16,
    seed: u64,
) -> AssociationDirectory {
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let g = fw.network();
    let edges: Vec<_> = g.edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..count {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i as u64),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..categories.max(1))),
        );
        ad.insert(g, fw.hierarchy(), o).unwrap();
    }
    ad
}

fn build(net: RoadNetwork, fanout: usize, levels: u32) -> RoadFramework {
    RoadFramework::builder(net).fanout(fanout).levels(levels).build().unwrap()
}

fn assert_hits_equal(got: &[SearchHit], want: &[SearchHit], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: hit count {} vs {}", got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert!(
            g.distance.approx_eq(w.distance),
            "{ctx}: distance {} vs {}",
            g.distance,
            w.distance
        );
    }
    // Same multiset of objects at equal distances (order may tie-break
    // differently): compare sorted by (distance, id).
    let norm = |hs: &[SearchHit]| {
        let mut v: Vec<(u64, String)> =
            hs.iter().map(|h| (h.object.0, format!("{:.6}", h.distance.get()))).collect();
        v.sort();
        v
    };
    assert_eq!(norm(got), norm(want), "{ctx}: object sets differ");
}

#[test]
fn knn_matches_oracle_on_grid() {
    let fw = build(simple::grid(15, 15, 1.0), 4, 3);
    let ad = scatter_objects(&fw, 25, 3, 42);
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let k = rng.random_range(1..8);
        let q = KnnQuery::new(node, k);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        assert_hits_equal(&got.hits, &want, &format!("knn seed {seed} node {node} k {k}"));
    }
}

#[test]
fn knn_with_category_filter_matches_oracle() {
    let fw = build(simple::grid(12, 12, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 30, 4, 7);
    for cat in 0..4u16 {
        let q = KnnQuery::new(NodeId(5), 3).with_filter(ObjectFilter::Category(CategoryId(cat)));
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        assert_hits_equal(&got.hits, &want, &format!("cat {cat}"));
        assert!(got
            .hits
            .iter()
            .all(|h| { ad.object(h.object).unwrap().category == CategoryId(cat) }));
    }
}

#[test]
fn range_matches_oracle_on_random_networks() {
    for seed in 0..10u64 {
        let net = simple::random_connected(120, 40, seed);
        let fw = build(net, 2, 3);
        let ad = scatter_objects(&fw, 18, 2, seed * 3 + 1);
        let mut rng = StdRng::seed_from_u64(seed + 100);
        for _ in 0..5 {
            let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
            let radius = Weight::new(rng.random_range(5.0..80.0));
            let q = RangeQuery::new(node, radius);
            let got = fw.range(&ad, &q).unwrap();
            let want = oracle_range(&fw, &ad, &q);
            assert_hits_equal(&got.hits, &want, &format!("range seed {seed} node {node}"));
        }
    }
}

#[test]
fn knn_matches_oracle_on_ca_like_network() {
    let net = Dataset::CaHighways.generate_scaled(0.03, 11).unwrap();
    let fw = build(net, 4, 3);
    let ad = scatter_objects(&fw, 12, 1, 5);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..15 {
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 5);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        assert_hits_equal(&got.hits, &want, &format!("CA node {node}"));
    }
}

#[test]
fn search_bypasses_rnets_and_takes_shortcuts() {
    // Few objects on a large network: most Rnets are empty and must be
    // bypassed; the whole point of the framework.
    let fw = build(simple::grid(20, 20, 1.0), 4, 3);
    let ad = scatter_objects(&fw, 3, 1, 1);
    let q = KnnQuery::new(NodeId(0), 1);
    let res = fw.knn(&ad, &q).unwrap();
    assert_eq!(res.hits.len(), 1);
    assert!(res.stats.rnets_bypassed > 0, "no Rnet was bypassed: {:?}", res.stats);
    assert!(res.stats.shortcuts_taken > 0, "no shortcut was taken: {:?}", res.stats);
    // And it must beat plain expansion on settled nodes.
    let brute = {
        let mut dij = road_network::dijkstra::Dijkstra::for_network(fw.network());
        let mut settled = 0;
        let target = res.hits[0].distance;
        dij.expand(fw.network(), fw.metric(), NodeId(0), |_, d| {
            if d > target {
                road_network::dijkstra::Control::Break
            } else {
                settled += 1;
                road_network::dijkstra::Control::Continue
            }
        });
        settled
    };
    assert!(
        res.stats.nodes_settled < brute,
        "ROAD settled {} nodes, plain expansion {brute}",
        res.stats.nodes_settled
    );
}

#[test]
fn path_reconstruction_is_valid_and_matches_distance() {
    let fw = build(simple::grid(14, 14, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 10, 1, 3);
    let q = KnnQuery::new(NodeId(100), 4);
    let res = fw.knn(&ad, &q).unwrap();
    assert_eq!(res.hits.len(), 4);
    for hit in &res.hits {
        let (path, edge, offset) = res.path_to_hit(&fw, &ad, hit).expect("path");
        assert!(path.validate(fw.network(), fw.metric()), "invalid path for {:?}", hit.object);
        assert_eq!(path.source(), NodeId(100));
        let total = path.total() + offset;
        assert!(
            total.approx_eq(hit.distance),
            "path {} + offset {} != hit distance {}",
            path.total(),
            offset,
            hit.distance
        );
        let o = ad.object(hit.object).unwrap();
        assert_eq!(o.edge, edge);
    }
}

#[test]
fn point_to_point_distance_matches_dijkstra() {
    let net = Dataset::CaHighways.generate_scaled(0.02, 3).unwrap();
    let fw = build(net, 4, 3);
    let mut rng = StdRng::seed_from_u64(17);
    let n = fw.network().num_nodes() as u32;
    for _ in 0..12 {
        let a = NodeId(rng.random_range(0..n));
        let b = NodeId(rng.random_range(0..n));
        let want = road_network::dijkstra::shortest_path_weight(fw.network(), fw.metric(), a, b);
        let got = fw.network_distance(a, b).unwrap();
        match (got, want) {
            (Some(g), Some(w)) => assert!(g.approx_eq(w), "{a}->{b}: {g} vs {w}"),
            (g, w) => assert_eq!(g.is_some(), w.is_some(), "{a}->{b} reachability"),
        }
        if let Some(p) = fw.shortest_path(a, b).unwrap() {
            assert!(p.validate(fw.network(), fw.metric()));
            assert!(p.total().approx_eq(want.unwrap()));
        }
    }
}

#[test]
fn k_larger_than_objects_returns_all() {
    let fw = build(simple::grid(8, 8, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 4, 1, 2);
    let res = fw.knn(&ad, &KnnQuery::new(NodeId(0), 50)).unwrap();
    assert_eq!(res.hits.len(), 4);
    // k = 0 is a valid degenerate query.
    let res = fw.knn(&ad, &KnnQuery::new(NodeId(0), 0)).unwrap();
    assert!(res.hits.is_empty());
}

#[test]
fn empty_directory_returns_nothing() {
    let fw = build(simple::grid(6, 6, 1.0), 2, 2);
    let ad = AssociationDirectory::new(fw.hierarchy());
    let res = fw.knn(&ad, &KnnQuery::new(NodeId(0), 3)).unwrap();
    assert!(res.hits.is_empty());
    let res = fw.range(&ad, &RangeQuery::new(NodeId(0), Weight::new(100.0))).unwrap();
    assert!(res.hits.is_empty());
}

#[test]
fn out_of_bounds_query_node_errors() {
    let fw = build(simple::grid(4, 4, 1.0), 2, 1);
    let ad = AssociationDirectory::new(fw.hierarchy());
    assert!(fw.knn(&ad, &KnnQuery::new(NodeId(999), 1)).is_err());
}

#[test]
fn zero_radius_range_finds_only_colocated_objects() {
    let fw = build(simple::grid(6, 6, 1.0), 2, 2);
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let e = fw.network().edge_ids().next().unwrap();
    let (a, _) = fw.network().edge(e).endpoints();
    ad.insert(fw.network(), fw.hierarchy(), Object::new(ObjectId(1), e, 0.0, CategoryId(0)))
        .unwrap();
    let res = fw.range(&ad, &RangeQuery::new(a, Weight::ZERO)).unwrap();
    assert_eq!(res.hits.len(), 1);
    assert_eq!(res.hits[0].distance, Weight::ZERO);
}

// ---------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------

#[test]
fn weight_updates_keep_answers_correct() {
    let mut fw = build(simple::grid(10, 10, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 12, 1, 8);
    let mut rng = StdRng::seed_from_u64(21);
    let edges: Vec<_> = fw.network().edge_ids().collect();
    for step in 0..25 {
        let e = edges[rng.random_range(0..edges.len())];
        let w = Weight::new(rng.random_range(0.2..6.0));
        fw.set_edge_weight(e, w).unwrap();
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 3);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        assert_hits_equal(&got.hits, &want, &format!("after update {step}"));
    }
    fw.verify().unwrap();
}

#[test]
fn weight_update_propagation_stops_early() {
    let mut fw = build(simple::grid(16, 16, 1.0), 4, 3);
    // An edge deep inside a leaf Rnet, not on any shortcut: refreshing its
    // leaf must not propagate anywhere.
    let mut quiet = None;
    for e in fw.network().edge_ids() {
        let leaf = fw.hierarchy().leaf_of_edge(e);
        let (a, b) = fw.network().edge(e).endpoints();
        let covered = fw
            .hierarchy()
            .borders(leaf)
            .iter()
            .flat_map(|&bn| fw.shortcuts().from(leaf, bn))
            .any(|sc| sc.via.contains(&a) || sc.via.contains(&b) || sc.to == a || sc.to == b);
        if !covered
            && !fw.hierarchy().bordered_rnets(a).contains(&leaf)
            && !fw.hierarchy().bordered_rnets(b).contains(&leaf)
        {
            quiet = Some(e);
            break;
        }
    }
    if let Some(e) = quiet {
        // Large increase on an uncovered edge: leaf refresh detects no
        // change, propagation stops at level l.
        let outcome = fw.set_edge_weight(e, Weight::new(50.0)).unwrap();
        assert_eq!(outcome.rnets_refreshed, 1, "outcome: {outcome:?}");
        assert_eq!(outcome.rnets_changed, 0);
    }
    // A no-op update refreshes nothing at all.
    let e = fw.network().edge_ids().next().unwrap();
    let w = fw.network().weight(e, fw.metric());
    let outcome = fw.set_edge_weight(e, w).unwrap();
    assert_eq!(outcome.rnets_refreshed, 0);
}

#[test]
fn edge_deletion_and_restoration_keep_answers_correct() {
    let mut fw = build(simple::grid(9, 9, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 10, 1, 4);
    let mut rng = StdRng::seed_from_u64(31);
    let edges: Vec<_> = fw.network().edge_ids().collect();
    for step in 0..10 {
        // The paper's edge-deletion experiment: weight to infinity, then
        // restore — the graph stays structurally intact.
        let e = edges[rng.random_range(0..edges.len())];
        let original = fw.network().weight(e, fw.metric());
        fw.set_edge_weight(e, Weight::INFINITY).unwrap();
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 2);
        assert_hits_equal(
            &fw.knn(&ad, &q).unwrap().hits,
            &oracle_knn(&fw, &ad, &q),
            &format!("with edge {e} cut (step {step})"),
        );
        fw.set_edge_weight(e, original).unwrap();
        assert_hits_equal(
            &fw.knn(&ad, &q).unwrap().hits,
            &oracle_knn(&fw, &ad, &q),
            &format!("after restoring {e} (step {step})"),
        );
    }
    fw.verify().unwrap();
}

#[test]
fn structural_edge_addition_and_removal() {
    let mut fw = build(simple::grid(8, 8, 1.0), 2, 2);
    let ad = scatter_objects(&fw, 8, 1, 9);
    // Add a diagonal highway across the grid (case 2: endpoints in
    // different Rnets, promoting a border node).
    let w = Weight::new(0.5);
    let (e, outcome) = fw.add_edge(NodeId(0), NodeId(63), (w, w, Weight::ZERO)).unwrap();
    assert!(outcome.rnets_refreshed > 0);
    fw.verify().unwrap();
    let q = KnnQuery::new(NodeId(0), 3);
    assert_hits_equal(&fw.knn(&ad, &q).unwrap().hits, &oracle_knn(&fw, &ad, &q), "after add");
    // Remove it again (no objects on it, so this must succeed).
    let outcome = fw.remove_edge(e, &[&ad]).unwrap();
    assert!(outcome.rnets_refreshed > 0);
    fw.verify().unwrap();
    assert_hits_equal(&fw.knn(&ad, &q).unwrap().hits, &oracle_knn(&fw, &ad, &q), "after remove");
}

#[test]
fn removing_edge_with_objects_is_refused() {
    let mut fw = build(simple::grid(6, 6, 1.0), 2, 2);
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let e = fw.network().edge_ids().next().unwrap();
    ad.insert(fw.network(), fw.hierarchy(), Object::new(ObjectId(1), e, 0.3, CategoryId(0)))
        .unwrap();
    let err = fw.remove_edge(e, &[&ad]).unwrap_err();
    assert!(matches!(err, road_core::RoadError::EdgeHasObjects(_, 1)));
    // After relocating the object, removal succeeds.
    ad.remove(fw.network(), fw.hierarchy(), ObjectId(1)).unwrap();
    fw.remove_edge(e, &[&ad]).unwrap();
    fw.verify().unwrap();
}

#[test]
fn new_node_with_connecting_road() {
    let mut fw = build(simple::grid(7, 7, 1.0), 2, 2);
    let ad = scatter_objects(&fw, 6, 1, 13);
    let n = fw.add_node(road_network::Point::new(3.5, 3.5));
    let w = Weight::new(0.7);
    let (_, _) = fw.add_edge(n, NodeId(24), (w, w, Weight::ZERO)).unwrap();
    fw.verify().unwrap();
    // Queries from the new node work and agree with the oracle.
    let q = KnnQuery::new(n, 3);
    assert_hits_equal(&fw.knn(&ad, &q).unwrap().hits, &oracle_knn(&fw, &ad, &q), "from new node");
}

#[test]
fn random_maintenance_storm_stays_consistent() {
    let mut fw = build(simple::grid(8, 8, 1.0), 2, 2);
    let mut ad = scatter_objects(&fw, 10, 2, 77);
    let mut rng = StdRng::seed_from_u64(55);
    let mut next_obj = 1000u64;
    for step in 0..60 {
        match rng.random_range(0..5) {
            0 => {
                // weight change
                let edges: Vec<_> = fw.network().edge_ids().collect();
                let e = edges[rng.random_range(0..edges.len())];
                fw.set_edge_weight(e, Weight::new(rng.random_range(0.1..5.0))).unwrap();
            }
            1 => {
                // object insert
                let edges: Vec<_> = fw.network().edge_ids().collect();
                let e = edges[rng.random_range(0..edges.len())];
                let o = Object::new(
                    ObjectId(next_obj),
                    e,
                    rng.random_range(0.0..=1.0),
                    CategoryId(rng.random_range(0..2)),
                );
                next_obj += 1;
                ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
            }
            2 => {
                // object delete (if any)
                let id = ad.objects().next().map(|o| o.id);
                if let Some(id) = id {
                    ad.remove(fw.network(), fw.hierarchy(), id).unwrap();
                }
            }
            3 => {
                // structural add between random non-adjacent nodes
                let n = fw.network().num_nodes() as u32;
                let a = NodeId(rng.random_range(0..n));
                let b = NodeId(rng.random_range(0..n));
                if a != b && fw.network().edge_between(a, b).is_none() {
                    let w = Weight::new(rng.random_range(0.5..3.0));
                    fw.add_edge(a, b, (w, w, Weight::ZERO)).unwrap();
                }
            }
            _ => {
                // query + compare with oracle
                let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
                let q = KnnQuery::new(node, 3);
                assert_hits_equal(
                    &fw.knn(&ad, &q).unwrap().hits,
                    &oracle_knn(&fw, &ad, &q),
                    &format!("storm step {step}"),
                );
            }
        }
    }
    fw.verify().unwrap();
    ad.validate(fw.network(), fw.hierarchy()).unwrap();
}

#[test]
fn bounded_knn_combines_k_and_radius() {
    let fw = build(simple::grid(12, 12, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 20, 1, 6);
    for (k, cap) in [(3usize, 2.0f64), (5, 6.0), (20, 4.0), (2, 0.0)] {
        let q = KnnQuery::new(NodeId(66), k).within(Weight::new(cap));
        let got = fw.knn(&ad, &q).unwrap();
        let want = road_core::search::oracle_knn(&fw, &ad, &q);
        assert_hits_equal(&got.hits, &want, &format!("bounded k={k} cap={cap}"));
        assert!(got.hits.len() <= k);
        for h in &got.hits {
            assert!(h.distance <= Weight::new(cap));
        }
        // The bound must also cap the expansion itself (+1: the bounded
        // search settles the first node past the cap before breaking).
        let unbounded = fw.knn(&ad, &KnnQuery::new(NodeId(66), k)).unwrap();
        assert!(got.stats.nodes_settled <= unbounded.stats.nodes_settled + 1);
    }
}

#[test]
fn aggregate_knn_matches_brute_force() {
    use road_core::search::{Aggregate, AggregateKnnQuery};
    let fw = build(simple::grid(11, 11, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 15, 1, 12);
    let group = vec![NodeId(0), NodeId(60), NodeId(115)];
    for aggregate in [Aggregate::Sum, Aggregate::Max] {
        let q = AggregateKnnQuery::new(group.clone(), 4).with_aggregate(aggregate);
        let got = fw.aggregate_knn(&ad, &q).unwrap();
        // Brute force: per-object aggregate from plain Dijkstra runs.
        let mut dij = road_network::dijkstra::Dijkstra::for_network(fw.network());
        let mut best: Vec<(f64, u64)> = ad
            .objects()
            .map(|o| {
                let (a, b) = fw.network().edge(o.edge).endpoints();
                let mut agg: f64 = 0.0;
                for &qn in &group {
                    let da = dij
                        .one_to_one(fw.network(), fw.metric(), qn, a)
                        .map(|d| d + o.offset_from(fw.network(), fw.metric(), a));
                    let db = dij
                        .one_to_one(fw.network(), fw.metric(), qn, b)
                        .map(|d| d + o.offset_from(fw.network(), fw.metric(), b));
                    let d = match (da, db) {
                        (Some(x), Some(y)) => x.min(y).get(),
                        (Some(x), None) => x.get(),
                        (None, Some(y)) => y.get(),
                        (None, None) => f64::INFINITY,
                    };
                    agg = match aggregate {
                        Aggregate::Sum => agg + d,
                        Aggregate::Max => agg.max(d),
                    };
                }
                (agg, o.id.0)
            })
            .collect();
        best.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        for (hit, (want_d, want_o)) in got.iter().zip(&best) {
            assert_eq!(hit.object.0, *want_o, "{aggregate:?}");
            assert!(
                (hit.distance.get() - want_d).abs() < 1e-6,
                "{aggregate:?}: {} vs {}",
                hit.distance,
                want_d
            );
        }
        assert_eq!(got.len(), 4);
    }
    // Degenerate group.
    assert!(fw.aggregate_knn(&ad, &AggregateKnnQuery::new(vec![], 1)).is_err());
    // Single-member group equals plain kNN.
    let single = fw.aggregate_knn(&ad, &AggregateKnnQuery::new(vec![NodeId(7)], 3)).unwrap();
    let plain = fw.knn(&ad, &KnnQuery::new(NodeId(7), 3)).unwrap();
    for (a, b) in single.iter().zip(&plain.hits) {
        assert!(a.distance.approx_eq(b.distance));
    }
}

#[test]
fn search_stats_are_internally_consistent() {
    let fw = build(simple::grid(14, 14, 1.0), 4, 3);
    let ad = scatter_objects(&fw, 8, 2, 19);
    for k in [1usize, 3, 7] {
        let res = fw.knn(&ad, &KnnQuery::new(NodeId(97), k)).unwrap();
        let s = res.stats;
        // Every consulted abstract is either bypassed or descended into.
        assert_eq!(
            s.abstract_checks,
            s.rnets_bypassed + s.rnets_descended,
            "abstract accounting broken: {s:?}"
        );
        // Work happened and was recorded.
        assert!(s.nodes_settled >= 1);
        assert!(s.heap_pushes >= s.nodes_settled);
        assert!(s.shortcuts_taken == 0 || s.rnets_bypassed > 0);
    }
}

#[test]
fn equal_distance_ties_break_by_object_id_like_the_oracle() {
    // Three objects planted at network distance exactly 2.0 from the query
    // node — one strictly closer object fills the first slot, so the tie
    // straddles every k in 2..4. One tied object sits *at* a node
    // (fraction 0/1), which the old object-before-node heap ordering could
    // report ahead of a smaller-id object discovered through that node.
    // Engine, kNN oracle and range oracle must produce identical
    // *sequences*, not just multisets.
    let fw = build(simple::chain(21, 1.0), 2, 2);
    let g = fw.network();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edge = |a: u32, b: u32| g.edge_between(NodeId(a), NodeId(b)).unwrap();
    // Closest object, distance 0.5.
    ad.insert(g, fw.hierarchy(), Object::new(ObjectId(20), edge(10, 11), 0.5, CategoryId(0)))
        .unwrap();
    // Three objects tied at distance 2.0, adversarial id order: the
    // smallest id (3) lives at the node that settles *last* among the
    // distance-2 frontier.
    ad.insert(g, fw.hierarchy(), Object::new(ObjectId(9), edge(12, 13), 0.0, CategoryId(0)))
        .unwrap();
    ad.insert(g, fw.hierarchy(), Object::new(ObjectId(5), edge(11, 12), 1.0, CategoryId(0)))
        .unwrap();
    ad.insert(g, fw.hierarchy(), Object::new(ObjectId(3), edge(7, 8), 1.0, CategoryId(0))).unwrap();

    let source = NodeId(10);
    for k in 1..=4usize {
        let q = KnnQuery::new(source, k);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        let got_ids: Vec<u64> = got.hits.iter().map(|h| h.object.0).collect();
        let want_ids: Vec<u64> = want.iter().map(|h| h.object.0).collect();
        assert_eq!(got_ids, want_ids, "k={k}: engine and oracle disagree on tie order");
    }
    // Expected order is fully determined: distance, then object id.
    let got = fw.knn(&ad, &KnnQuery::new(source, 4)).unwrap();
    let ids: Vec<u64> = got.hits.iter().map(|h| h.object.0).collect();
    assert_eq!(ids, vec![20, 3, 5, 9]);

    // The range oracle and the engine's range search agree on the same
    // (distance, id) sequence, and the kNN oracle is its prefix.
    let rq = RangeQuery::new(source, Weight::new(2.0));
    let got_range = fw.range(&ad, &rq).unwrap();
    let want_range = oracle_range(&fw, &ad, &rq);
    let got_ids: Vec<u64> = got_range.hits.iter().map(|h| h.object.0).collect();
    let want_ids: Vec<u64> = want_range.iter().map(|h| h.object.0).collect();
    assert_eq!(got_ids, want_ids, "range tie order");
    let knn_ids: Vec<u64> =
        oracle_knn(&fw, &ad, &KnnQuery::new(source, 2)).iter().map(|h| h.object.0).collect();
    assert_eq!(knn_ids, want_ids[..2], "kNN oracle is a prefix of the range oracle");
}

#[test]
fn aggregate_knn_bounded_expansions_prune_and_agree() {
    use road_core::search::{Aggregate, AggregateKnnQuery};
    let fw = build(simple::grid(13, 13, 1.0), 4, 2);
    let ad = scatter_objects(&fw, 40, 1, 23);
    // A tight group: the k-th best aggregate is small, so the
    // triangle-inequality bound should confine members 2 and 3 to a
    // fraction of the component.
    let group = vec![NodeId(40), NodeId(41), NodeId(54)];
    for aggregate in [Aggregate::Sum, Aggregate::Max] {
        let q = AggregateKnnQuery::new(group.clone(), 3).with_aggregate(aggregate);
        let (got, stats) = fw.aggregate_knn_with_stats(&ad, &q).unwrap();

        // Reference: the unbounded per-member evaluation (the previous
        // implementation), combined the same way.
        let mut unbounded_settled = 0usize;
        let mut acc: std::collections::HashMap<u64, (Weight, usize)> = Default::default();
        for &m in &group {
            let res = fw.range(&ad, &RangeQuery::new(m, Weight::INFINITY)).unwrap();
            unbounded_settled += res.stats.nodes_settled;
            for hit in &res.hits {
                let entry = acc.entry(hit.object.0).or_insert((Weight::ZERO, 0));
                entry.0 = aggregate.combine(entry.0, hit.distance);
                entry.1 += 1;
            }
        }
        let mut want: Vec<(u64, Weight)> = acc
            .into_iter()
            .filter(|&(_, (_, seen))| seen == group.len())
            .map(|(o, (d, _))| (o, d))
            .collect();
        want.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(3);

        assert_eq!(got.len(), want.len(), "{aggregate:?}");
        for (hit, (o, d)) in got.iter().zip(&want) {
            assert_eq!(hit.object.0, *o, "{aggregate:?}");
            assert!(hit.distance.approx_eq(*d), "{aggregate:?}: {} vs {}", hit.distance, d);
        }
        // The point of the fix: the bounded evaluation must do strictly
        // less settling work than three unbounded component sweeps.
        assert!(
            stats.nodes_settled < unbounded_settled,
            "{aggregate:?}: pruning never engaged ({} vs {unbounded_settled} settled)",
            stats.nodes_settled
        );
    }
}

#[test]
fn equal_distance_ties_prefer_objects_over_nodes() {
    // An object exactly at a node (fraction 0) must be reported at the
    // distance of that node, and popping it may not depend on whether the
    // node is expanded first.
    let fw = build(simple::chain(10, 1.0), 2, 2);
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let e = fw.network().edge_between(NodeId(4), NodeId(5)).unwrap();
    let (a, _) = fw.network().edge(e).endpoints();
    ad.insert(fw.network(), fw.hierarchy(), Object::new(ObjectId(1), e, 0.0, CategoryId(0)))
        .unwrap();
    let res = fw.knn(&ad, &KnnQuery::new(NodeId(0), 1)).unwrap();
    assert_eq!(res.hits.len(), 1);
    let node_dist = res.distance_to_node(a).unwrap();
    assert!(res.hits[0].distance.approx_eq(node_dist));
}

#[test]
fn disconnected_component_objects_are_unreachable() {
    // Two grids glued into one id space with no connecting edge: objects
    // in the far component are invisible to queries from the near one.
    let mut b = road_network::graph::RoadNetwork::builder();
    for i in 0..4 {
        b.add_node(road_network::Point::new(i as f64, 0.0));
    }
    for i in 0..4 {
        b.add_node(road_network::Point::new(i as f64, 10.0));
    }
    for i in 0..3u32 {
        b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        b.add_edge(NodeId(i + 4), NodeId(i + 5), 1.0).unwrap();
    }
    let fw = build(b.build(), 2, 1);
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let far_edge = fw.network().edge_between(NodeId(4), NodeId(5)).unwrap();
    let near_edge = fw.network().edge_between(NodeId(0), NodeId(1)).unwrap();
    ad.insert(fw.network(), fw.hierarchy(), Object::new(ObjectId(1), far_edge, 0.5, CategoryId(0)))
        .unwrap();
    ad.insert(
        fw.network(),
        fw.hierarchy(),
        Object::new(ObjectId(2), near_edge, 0.5, CategoryId(0)),
    )
    .unwrap();
    let res = fw.knn(&ad, &KnnQuery::new(NodeId(0), 5)).unwrap();
    assert_eq!(res.hits.len(), 1, "only the same-component object is reachable");
    assert_eq!(res.hits[0].object, ObjectId(2));
    // Range across the gap likewise finds nothing extra.
    let res = fw.range(&ad, &RangeQuery::new(NodeId(0), Weight::new(1e6))).unwrap();
    assert_eq!(res.hits.len(), 1);
}

#[test]
fn point_to_point_edge_cases() {
    let fw = build(simple::grid(6, 6, 1.0), 2, 2);
    // Distance to self is zero with a trivial path.
    assert_eq!(fw.network_distance(NodeId(8), NodeId(8)).unwrap(), Some(Weight::ZERO));
    let p = fw.shortest_path(NodeId(8), NodeId(8)).unwrap().unwrap();
    assert!(p.is_empty());
    assert_eq!(p.source(), NodeId(8));
    // Adjacent nodes take the direct edge.
    let d = fw.network_distance(NodeId(0), NodeId(1)).unwrap().unwrap();
    assert_eq!(d, Weight::new(1.0));
    // Out-of-bounds errors cleanly.
    assert!(fw.network_distance(NodeId(999), NodeId(0)).is_err());
}

/// An edge between two *isolated* nodes carries no topological hint about
/// its Rnet, so the framework hosts it in the leaf geometrically nearest
/// the endpoints — not in an arbitrary first leaf.
#[test]
fn edge_between_isolated_nodes_joins_nearest_leaf() {
    let mut fw = build(simple::grid(8, 8, 1.0), 4, 1);
    // Two new intersections far beyond the grid's (7, 7) corner.
    let a = fw.add_node(road_network::Point::new(30.0, 30.0));
    let b = fw.add_node(road_network::Point::new(31.0, 30.0));
    let w = Weight::new(1.0);
    let (e, _) = fw.add_edge(a, b, (w, w, Weight::ZERO)).unwrap();

    let hier = fw.hierarchy();
    let chosen = hier.leaf_of_edge(e);
    assert!(chosen.is_valid());
    // The nearest existing structure is the corner node at (7, 7): the
    // chosen leaf must be one hosting an edge incident to that corner,
    // never a leaf from the far side of the grid.
    let corner = NodeId(63); // grid node at (7, 7)
    let corner_leaves: Vec<_> =
        fw.network().neighbors(corner).map(|(ce, _)| hier.leaf_of_edge(ce)).collect();
    assert!(
        corner_leaves.contains(&chosen),
        "edge hosted in {chosen:?}, expected one of the corner leaves {corner_leaves:?}"
    );
    // The repair left the overlay exact.
    fw.verify().unwrap();
}
