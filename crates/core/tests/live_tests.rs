//! Live-update serving tests: readers on published snapshots must always
//! agree with a brute-force oracle evaluated on *the snapshot they hold*
//! (no torn reads), held snapshots must stay immutable under later
//! publications, and the publish path must repair locally — refreshing
//! only affected Rnets and structurally sharing the rest — never falling
//! back to a full rebuild.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::live::LiveEngine;
use road_core::prelude::*;
use road_core::search::{oracle_knn, oracle_range};
use road_network::generator::simple;
use road_network::EdgeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn grid_engine(seed: u64, objects: u64) -> (LiveEngine, road_core::UpdateHandle) {
    let g = simple::grid(12, 12, 1.0);
    let fw = RoadFramework::builder(g).fanout(4).levels(2).build().unwrap();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..objects {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..3)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    LiveEngine::new(fw, ad)
}

fn assert_hits_match(got: &[SearchHit], want: &[SearchHit], ctx: &str) {
    let g: Vec<u64> = got.iter().map(|h| h.object.0).collect();
    let w: Vec<u64> = want.iter().map(|h| h.object.0).collect();
    assert_eq!(g, w, "{ctx}: objects differ");
    for (a, b) in got.iter().zip(want) {
        assert!(a.distance.approx_eq(b.distance), "{ctx}: {} vs {}", a.distance, b.distance);
    }
}

/// The headline consistency property: while a writer streams weight
/// updates, topology edits and object churn through published snapshots,
/// every reader's answer matches the brute-force Dijkstra oracle computed
/// on the same snapshot the reader holds.
#[test]
fn concurrent_readers_agree_with_oracle_on_their_snapshot() {
    let (live, mut writer) = grid_engine(42, 24);
    let num_nodes = live.snapshot().framework().network().num_nodes() as u32;
    let done = AtomicBool::new(false);
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Writer: 60 publish cycles mixing weight changes, object churn
        // and a topology edit, batching a few updates per publish.
        let worker = scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(4242);
            for round in 0u64..60 {
                for _ in 0..3 {
                    let edges: Vec<EdgeId> = writer.framework().network().edge_ids().collect();
                    let e = edges[rng.random_range(0..edges.len())];
                    let w = writer.framework().network().weight(e, WeightKind::Distance);
                    let factor = rng.random_range(0.25..4.0);
                    writer.set_edge_weight(e, Weight::new((w.get() * factor).max(0.05))).unwrap();
                }
                // Object churn: move one object somewhere else.
                let id = ObjectId(rng.random_range(0..24));
                let edges: Vec<EdgeId> = writer.framework().network().edge_ids().collect();
                let target = edges[rng.random_range(0..edges.len())];
                writer.move_object(id, target, 0.5).unwrap();
                // Occasional topology edit: add then remove a connector.
                if round % 20 == 19 {
                    let a = NodeId(rng.random_range(0..num_nodes));
                    let b = NodeId(rng.random_range(0..num_nodes));
                    if a != b && writer.framework().network().edge_between(a, b).is_none() {
                        let w = Weight::new(0.5);
                        let (e, _) = writer.add_edge(a, b, (w, w, Weight::ZERO)).unwrap();
                        writer.publish();
                        writer.remove_edge(e).unwrap();
                    }
                }
                writer.publish();
            }
            done.store(true, Ordering::Relaxed);
            writer
        });

        // Readers: grab a snapshot, answer a query mix on it, and compare
        // against the oracle evaluated on that same snapshot.
        for t in 0..3u64 {
            let live = live.clone();
            let done = &done;
            let checks = &checks;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t);
                let mut ws = SearchWorkspace::new();
                let mut hits = Vec::new();
                let mut rounds = 0u64;
                // Keep checking until the writer finished, then once more
                // on the final snapshot.
                loop {
                    let finished = done.load(Ordering::Relaxed);
                    let snap = live.snapshot();
                    for _ in 0..4 {
                        let node = NodeId(rng.random_range(0..num_nodes));
                        let q = KnnQuery::new(node, rng.random_range(1..5));
                        snap.knn_with(&q, &mut ws, &mut hits).unwrap();
                        let want = oracle_knn(snap.framework(), snap.directory(), &q);
                        assert_hits_match(
                            &hits,
                            &want,
                            &format!("snapshot v{} knn from {node}", snap.version()),
                        );
                        let r = RangeQuery::new(node, Weight::new(rng.random_range(1.0..5.0)));
                        snap.range_with(&r, &mut ws, &mut hits).unwrap();
                        let want = oracle_range(snap.framework(), snap.directory(), &r);
                        assert_hits_match(
                            &hits,
                            &want,
                            &format!("snapshot v{} range from {node}", snap.version()),
                        );
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                    rounds += 1;
                    if finished {
                        break;
                    }
                }
                assert!(rounds > 0);
            });
        }

        let writer = worker.join().expect("writer thread");
        // The writer's final working state must still verify against a
        // from-scratch rebuild (shortcuts exact after the whole stream).
        writer.framework().verify().unwrap();
        writer
            .directory()
            .validate(writer.framework().network(), writer.framework().hierarchy())
            .unwrap();
    });
    assert!(checks.load(Ordering::Relaxed) >= 24, "readers barely ran");
}

/// A held snapshot is immutable: publishing updates must not change the
/// answers (or the observable network) of a snapshot acquired earlier.
#[test]
fn held_snapshots_are_unaffected_by_later_publishes() {
    let (live, mut writer) = grid_engine(7, 12);
    let held = live.snapshot();
    let q = KnnQuery::new(NodeId(0), 4);
    let before = held.knn(&q).unwrap().hits;
    let weight_before = held.framework().network().weight(EdgeId(0), WeightKind::Distance);

    // Congest every edge heavily and churn the objects.
    let edges: Vec<EdgeId> = held.framework().network().edge_ids().collect();
    for &e in edges.iter().take(40) {
        writer.set_edge_weight(e, Weight::new(25.0)).unwrap();
    }
    writer.remove_object(ObjectId(0)).unwrap();
    writer.publish();

    // Old snapshot: identical answers, identical weights.
    assert_eq!(held.framework().network().weight(EdgeId(0), WeightKind::Distance), weight_before);
    assert_hits_match(&held.knn(&q).unwrap().hits, &before, "held snapshot");
    assert!(held.directory().object(ObjectId(0)).is_some());

    // New snapshot: sees the churn.
    let fresh = live.snapshot();
    assert!(fresh.version() > held.version());
    assert_eq!(
        fresh.framework().network().weight(EdgeId(0), WeightKind::Distance),
        Weight::new(25.0)
    );
    assert!(fresh.directory().object(ObjectId(0)).is_none());
    // And matches its own oracle.
    assert_hits_match(
        &fresh.knn(&q).unwrap().hits,
        &oracle_knn(fresh.framework(), fresh.directory(), &q),
        "fresh snapshot",
    );
}

/// Updates are invisible until `publish`, and `publish` with nothing
/// pending is a no-op.
#[test]
fn publication_is_explicit_and_batched() {
    let (live, mut writer) = grid_engine(3, 6);
    assert_eq!(live.version(), 0);
    assert_eq!(writer.publish(), 0, "clean publish is a no-op");

    let e = live.snapshot().framework().network().edge_ids().next().unwrap();
    writer.set_edge_weight(e, Weight::new(9.0)).unwrap();
    assert!(writer.has_pending());
    assert_eq!(live.version(), 0, "unpublished update leaked to readers");
    assert_eq!(
        live.snapshot().framework().network().weight(e, WeightKind::Distance),
        Weight::new(1.0)
    );

    let v = writer.publish();
    assert_eq!(v, 1);
    assert!(!writer.has_pending());
    assert_eq!(live.version(), 1);
    assert_eq!(
        live.snapshot().framework().network().weight(e, WeightKind::Distance),
        Weight::new(9.0)
    );
    // Reader handles reach the same deployment through the writer too.
    assert_eq!(writer.reader().version(), 1);
}

/// The publish path repairs locally: a weight update refreshes at most
/// one Rnet per level, and consecutive snapshots physically share every
/// unaffected Rnet's shortcut map (no deep copy, no full rebuild).
#[test]
fn publish_refreshes_only_affected_rnets_and_shares_the_rest() {
    let (live, mut writer) = grid_engine(11, 10);
    let before = live.snapshot();
    let hier_levels = before.framework().hierarchy().levels() as usize;
    let num_rnets = before.framework().hierarchy().num_rnets();

    let e = before.framework().network().edge_ids().next().unwrap();
    let outcome = writer.set_edge_weight(e, Weight::new(50.0)).unwrap();
    writer.publish();
    let after = live.snapshot();

    // Locality: the refresh walked one leaf-to-root chain at most.
    assert!(outcome.rnets_refreshed >= 1);
    assert!(
        outcome.rnets_refreshed <= hier_levels,
        "one weight change refreshed {} Rnets (levels = {hier_levels})",
        outcome.rnets_refreshed
    );

    // Structural sharing: every unrefreshed Rnet's map is the same
    // allocation in both snapshots.
    let shared = after.framework().shortcuts().shared_rnet_count(before.framework().shortcuts());
    assert!(
        shared >= num_rnets - outcome.rnets_refreshed,
        "only {shared}/{num_rnets} Rnets shared after refreshing {}",
        outcome.rnets_refreshed
    );
    assert!(shared < num_rnets, "the refreshed Rnet must have a new map");

    // Cumulative stats over a longer stream stay far below a rebuild.
    for (i, e) in before.framework().network().edge_ids().take(20).enumerate() {
        writer.set_edge_weight(e, Weight::new(2.0 + i as f64)).unwrap();
    }
    writer.publish();
    let stats = writer.stats();
    assert_eq!(stats.publishes, 2);
    assert_eq!(stats.updates, 21);
    let per_update = stats.outcome.rnets_refreshed as f64 / stats.updates as f64;
    assert!(
        per_update <= hier_levels as f64,
        "average {per_update:.2} Rnets refreshed per update — repairs are not local"
    );
    writer.framework().verify().unwrap();
}

/// Directory copy-on-write: network-side updates never copy the object
/// directory (snapshots share it), and object updates never copy the
/// network side.
#[test]
fn snapshots_share_untouched_components() {
    let (live, mut writer) = grid_engine(5, 8);
    let s0 = live.snapshot();

    // Weight-only publish: directories are the same Arc payload.
    let e = s0.framework().network().edge_ids().next().unwrap();
    writer.set_edge_weight(e, Weight::new(3.0)).unwrap();
    writer.publish();
    let s1 = live.snapshot();
    assert!(
        std::ptr::eq(s0.directory(), s1.directory()),
        "a network-side update must not copy the directory"
    );

    // Object-only publish: all shortcut maps stay shared.
    writer.insert_object(Object::new(ObjectId(900), e, 0.25, CategoryId(1))).unwrap();
    writer.publish();
    let s2 = live.snapshot();
    let num_rnets = s1.framework().hierarchy().num_rnets();
    assert_eq!(
        s2.framework().shortcuts().shared_rnet_count(s1.framework().shortcuts()),
        num_rnets,
        "an object-side update must not copy any shortcut data"
    );
    assert!(!std::ptr::eq(s1.directory(), s2.directory()));
    assert!(s2.directory().object(ObjectId(900)).is_some());
    assert!(s1.directory().object(ObjectId(900)).is_none());
}

/// `move_object` is atomic from the readers' perspective and rolls back
/// cleanly when the destination is invalid.
#[test]
fn move_object_is_atomic_and_rolls_back() {
    let (live, mut writer) = grid_engine(13, 4);
    let snap = live.snapshot();
    let edges: Vec<EdgeId> = snap.framework().network().edge_ids().collect();
    let target = edges[edges.len() / 2];

    writer.move_object(ObjectId(2), target, 0.75).unwrap();
    writer.publish();
    let moved = live.snapshot().directory().object(ObjectId(2)).cloned().unwrap();
    assert_eq!(moved.edge, target);
    assert_eq!(moved.fraction, 0.75);

    // Invalid destination: the object stays where it was.
    let err = writer.move_object(ObjectId(2), EdgeId(99999), 0.5);
    assert!(err.is_err());
    let still = writer.directory().object(ObjectId(2)).cloned().unwrap();
    assert_eq!(still.edge, target);
    writer
        .directory()
        .validate(writer.framework().network(), writer.framework().hierarchy())
        .unwrap();
}

/// Repair parity for the contraction-based builder: after a long mixed
/// churn stream (weight updates, connector edges added and removed,
/// object moves), the incrementally repaired shortcut store must be
/// **byte-identical** to a from-scratch `ShortcutStore::build` over the
/// final network — same serialized bytes, not just the same answers.
/// Weights are small integers so f64 arithmetic is exact and the
/// refresh path's no-op detection coincides with bitwise equality.
#[test]
fn contraction_refresh_equals_fresh_rebuild_after_mixed_churn() {
    use road_core::shortcut::ShortcutStore;

    let (_live, mut writer) = grid_engine(21, 16);
    let num_nodes = writer.framework().network().num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut added: Vec<EdgeId> = Vec::new();
    for round in 0..40u64 {
        let edges: Vec<EdgeId> = writer.framework().network().edge_ids().collect();
        for _ in 0..3 {
            let e = edges[rng.random_range(0..edges.len())];
            let w = Weight::new(rng.random_range(1..=16u32) as f64);
            writer.set_edge_weight(e, w).unwrap();
        }
        writer.move_object(ObjectId(rng.random_range(0..16)), edges[0], 0.25).unwrap();
        if round % 8 == 3 {
            let a = NodeId(rng.random_range(0..num_nodes));
            let b = NodeId(rng.random_range(0..num_nodes));
            if a != b && writer.framework().network().edge_between(a, b).is_none() {
                let w = Weight::new(2.0);
                let (e, _) = writer.add_edge(a, b, (w, w, Weight::ZERO)).unwrap();
                added.push(e);
            }
        }
        if round % 16 == 11 {
            if let Some(e) = added.pop() {
                writer.remove_edge(e).unwrap();
            }
        }
        writer.publish();
    }

    let fw = writer.framework();
    let fresh =
        ShortcutStore::build(fw.network(), fw.hierarchy(), fw.metric(), &Default::default());
    let mut repaired_bytes = Vec::new();
    fw.shortcuts().serialize_into(&mut repaired_bytes);
    let mut fresh_bytes = Vec::new();
    fresh.serialize_into(&mut fresh_bytes);
    assert_eq!(fw.shortcuts().num_shortcuts(), fresh.num_shortcuts());
    assert_eq!(
        repaired_bytes, fresh_bytes,
        "incrementally repaired store diverged from a from-scratch rebuild"
    );
}
