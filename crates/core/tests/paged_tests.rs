//! Oracle-agreement harness for disk-resident serving: [`PagedEngine`]
//! must answer **byte-for-byte** like the in-memory [`QueryEngine`] —
//! identical distances (exact f64 bits), identical object ids, identical
//! tie order — for every query in a randomized mix, at every buffer size
//! including a pathological 1-page pool, whether the pages were laid out
//! eagerly from a built framework or paged in lazily from a persisted
//! image, and whether the engine is queried from one thread or **shared
//! across many** (queries take `&self`). The expansion counters must
//! agree too: the paged engine runs the *same* search, it only pays page
//! I/O on top — and under concurrency every query's page deltas stay
//! exact (they sum to the pool's cumulative counters).

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_core::search::{Aggregate, AggregateKnnQuery};
use road_core::SearchStats;
use road_network::generator::simple;
use road_network::graph::RoadNetwork;

fn build_world(
    net: RoadNetwork,
    objects: usize,
    seed: u64,
) -> (RoadFramework, AssociationDirectory) {
    let fw = RoadFramework::builder(net).fanout(2).levels(2).build().unwrap();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edges: Vec<_> = fw.network().edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..objects {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i as u64),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..4)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    (fw, ad)
}

/// A randomized query mix: kNN (with filters and distance caps) and range
/// queries, deterministic in `seed`.
fn query_mix(num_nodes: u32, count: usize, seed: u64) -> (Vec<KnnQuery>, Vec<RangeQuery>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let mut knns = Vec::new();
    let mut ranges = Vec::new();
    for i in 0..count {
        let node = NodeId(rng.random_range(0..num_nodes));
        if i % 3 == 2 {
            let mut q = RangeQuery::new(node, Weight::new(rng.random_range(0.1..30.0)));
            if i % 2 == 0 {
                q = q.with_filter(ObjectFilter::Category(CategoryId(rng.random_range(0..5))));
            }
            ranges.push(q);
        } else {
            let mut q = KnnQuery::new(node, rng.random_range(1..9));
            match i % 4 {
                0 => q = q.with_filter(ObjectFilter::Category(CategoryId(rng.random_range(0..5)))),
                1 => {
                    q = q.with_filter(ObjectFilter::AnyOf(vec![
                        CategoryId(rng.random_range(0..3)),
                        CategoryId(rng.random_range(0..5)),
                    ]))
                }
                _ => {}
            }
            if i % 5 == 0 {
                q = q.within(Weight::new(rng.random_range(1.0..20.0)));
            }
            knns.push(q);
        }
    }
    (knns, ranges)
}

/// Expansion counters must match between memory and paged serving; only
/// the page-I/O fields (and workspace-recycling flag) may differ.
fn normalize(mut stats: SearchStats) -> SearchStats {
    stats.pages_read = 0;
    stats.page_faults = 0;
    stats.workspace_reused = false;
    stats
}

fn assert_engines_agree(
    engine: &QueryEngine,
    disk: &PagedEngine,
    knns: &[KnnQuery],
    ranges: &[RangeQuery],
    label: &str,
) {
    for (i, q) in knns.iter().enumerate() {
        let mem = engine.knn(q).unwrap();
        let paged = disk.knn(q).unwrap();
        assert_eq!(mem.hits, paged.hits, "{label}: kNN query #{i} hits diverged ({q:?})");
        assert_eq!(
            normalize(mem.stats),
            normalize(paged.stats),
            "{label}: kNN query #{i} took a different expansion ({q:?})"
        );
    }
    for (i, q) in ranges.iter().enumerate() {
        let mem = engine.range(q).unwrap();
        let paged = disk.range(q).unwrap();
        assert_eq!(mem.hits, paged.hits, "{label}: range query #{i} hits diverged ({q:?})");
        assert_eq!(
            normalize(mem.stats),
            normalize(paged.stats),
            "{label}: range query #{i} took a different expansion ({q:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: random framework + object set + query mix,
    /// paged results equal in-memory results across buffer sizes,
    /// including a 1-page pathological pool, for both the eager layout
    /// and the lazily-opened persisted image.
    #[test]
    fn paged_matches_memory_across_buffer_sizes(
        n in 16usize..70,
        extra in 0usize..25,
        objects in 0usize..22,
        seed in 0u64..1000,
    ) {
        let (fw, ad) = build_world(simple::random_connected(n, extra, seed), objects, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 15, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let image_bytes = fw.to_bytes();
        let objs: Vec<Object> = ad.objects().cloned().collect();

        for buffer_pages in [1usize, 3, 8, 64] {
            let opts = PagedOptions::with_buffer_pages(buffer_pages);
            let eager = PagedEngine::new(&fw, &ad, opts).unwrap();
            assert_engines_agree(
                &engine, &eager, &knns, &ranges,
                &format!("eager/buffer={buffer_pages}"),
            );

            let image = PagedImage::open(image_bytes.clone()).unwrap();
            let lazy = PagedEngine::open(image, objs.clone(), opts).unwrap();
            assert_engines_agree(
                &engine, &lazy, &knns, &ranges,
                &format!("lazy/buffer={buffer_pages}"),
            );
            // Lazy and eager engines converge on the same resident set.
            prop_assert!(lazy.rnets_loaded() <= eager.rnets_loaded());
        }
    }

    /// The PR-5 tentpole property: one shared engine (eager *and* lazily
    /// opened), hammered by 4 threads, answers every query in the mix
    /// byte-identically to the in-memory engine — and `aggregate_knn`
    /// (the new parity surface) agrees too.
    #[test]
    fn shared_engine_agrees_from_four_threads(
        n in 16usize..60,
        extra in 0usize..20,
        objects in 0usize..18,
        seed in 0u64..1000,
    ) {
        let (fw, ad) = build_world(simple::random_connected(n, extra, seed), objects, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 12, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let aggregates: Vec<AggregateKnnQuery> = (0..3)
            .map(|i| {
                let m = rng.random_range(1..4usize);
                let nodes = (0..m).map(|_| NodeId(rng.random_range(0..num_nodes))).collect();
                let agg = if i % 2 == 0 { Aggregate::Sum } else { Aggregate::Max };
                AggregateKnnQuery::new(nodes, rng.random_range(1..5)).with_aggregate(agg)
            })
            .collect();
        // Single-threaded expectations (already oracle-pinned elsewhere).
        let want_knn: Vec<_> = knns.iter().map(|q| engine.knn(q).unwrap().hits).collect();
        let want_range: Vec<_> = ranges.iter().map(|q| engine.range(q).unwrap().hits).collect();
        let want_agg: Vec<_> =
            aggregates.iter().map(|q| fw.aggregate_knn(&ad, q).unwrap()).collect();

        let objs: Vec<Object> = ad.objects().cloned().collect();
        let image = PagedImage::open(fw.to_bytes()).unwrap();
        let opts = PagedOptions::with_buffer_pages(16);
        let engines = [
            ("eager", PagedEngine::new(&fw, &ad, opts).unwrap()),
            ("lazy", PagedEngine::open(image, objs, opts).unwrap()),
        ];
        for (label, disk) in &engines {
            std::thread::scope(|scope| {
                for t in 0..4usize {
                    let disk = &disk;
                    let (knns, ranges, aggregates) = (&knns, &ranges, &aggregates);
                    let (want_knn, want_range, want_agg) = (&want_knn, &want_range, &want_agg);
                    scope.spawn(move || {
                        let mut ws = SearchWorkspace::new();
                        let mut hits = Vec::new();
                        // Each thread starts at a different offset so the
                        // stripes see genuinely interleaved traffic.
                        for round in 0..2 {
                            for i in 0..knns.len() {
                                let idx = (i + t * 3 + round) % knns.len();
                                disk.knn_with(&knns[idx], &mut ws, &mut hits).unwrap();
                                assert_eq!(
                                    hits, want_knn[idx],
                                    "{label}: thread {t} kNN #{idx} diverged"
                                );
                            }
                            for (idx, q) in ranges.iter().enumerate() {
                                disk.range_with(q, &mut ws, &mut hits).unwrap();
                                assert_eq!(
                                    hits, want_range[idx],
                                    "{label}: thread {t} range #{idx} diverged"
                                );
                            }
                            for (idx, q) in aggregates.iter().enumerate() {
                                let got = disk.aggregate_knn(q).unwrap();
                                assert_eq!(
                                    got, want_agg[idx],
                                    "{label}: thread {t} aggregate #{idx} diverged"
                                );
                            }
                        }
                    });
                }
            });
        }
    }
}

/// The same property at a scale CI only pays for in the `--include-ignored`
/// stress pass: a larger network, more objects, a longer query mix, and
/// the two extreme buffer sizes.
#[test]
#[ignore = "stress: larger agreement sweep, run via --include-ignored"]
fn stress_paged_agreement_large_network() {
    for seed in [7u64, 99, 4242] {
        let (fw, ad) = build_world(simple::random_connected(350, 140, seed), 60, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 60, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let objs: Vec<Object> = ad.objects().cloned().collect();
        for buffer_pages in [1usize, 50] {
            let opts = PagedOptions::with_buffer_pages(buffer_pages);
            let eager = PagedEngine::new(&fw, &ad, opts).unwrap();
            assert_engines_agree(
                &engine,
                &eager,
                &knns,
                &ranges,
                &format!("stress-eager/seed={seed}/buffer={buffer_pages}"),
            );
            let image = PagedImage::open(fw.to_bytes()).unwrap();
            let lazy = PagedEngine::open(image, objs.clone(), opts).unwrap();
            assert_engines_agree(
                &engine,
                &lazy,
                &knns,
                &ranges,
                &format!("stress-lazy/seed={seed}/buffer={buffer_pages}"),
            );
        }
    }
}

/// The concurrent stress suite the CI `--include-ignored` step runs: many
/// threads on one shared engine under the nastiest configurations —
/// tiny pools with **one page per stripe** (maximum eviction churn, every
/// read a likely fault) and lazily opened images whose Rnet sections
/// race to load — must stay byte-identical to the in-memory engine.
#[test]
#[ignore = "stress: concurrent paged serving sweep, run via --include-ignored"]
fn stress_concurrent_paged_tiny_pools() {
    const THREADS: usize = 8;
    for seed in [11u64, 222, 3333] {
        let (fw, ad) = build_world(simple::random_connected(180, 70, seed), 40, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 40, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let want_knn: Vec<_> = knns.iter().map(|q| engine.knn(q).unwrap().hits).collect();
        let want_range: Vec<_> = ranges.iter().map(|q| engine.range(q).unwrap().hits).collect();
        let objs: Vec<Object> = ad.objects().cloned().collect();
        let image_bytes = fw.to_bytes();
        // One page per stripe: capacity == stripes, so every stripe is a
        // single-frame LRU and concurrent faults hammer the store.
        for (pages, stripes) in [(4usize, 4usize), (8, 8), (50, 8)] {
            let opts = PagedOptions::with_buffer_pages(pages).with_stripes(stripes);
            let image = PagedImage::open(image_bytes.clone()).unwrap();
            let engines = [
                ("eager", PagedEngine::new(&fw, &ad, opts).unwrap()),
                ("lazy", PagedEngine::open(image, objs.clone(), opts).unwrap()),
            ];
            for (label, disk) in &engines {
                std::thread::scope(|scope| {
                    for t in 0..THREADS {
                        let disk = &disk;
                        let (knns, ranges) = (&knns, &ranges);
                        let (want_knn, want_range) = (&want_knn, &want_range);
                        scope.spawn(move || {
                            let mut ws = SearchWorkspace::new();
                            let mut hits = Vec::new();
                            for i in 0..knns.len() {
                                let idx = (i + t * 5) % knns.len();
                                disk.knn_with(&knns[idx], &mut ws, &mut hits).unwrap();
                                assert_eq!(
                                    hits, want_knn[idx],
                                    "{label}: seed {seed} pages {pages} thread {t} kNN #{idx}"
                                );
                            }
                            for (idx, q) in ranges.iter().enumerate() {
                                disk.range_with(q, &mut ws, &mut hits).unwrap();
                                assert_eq!(
                                    hits, want_range[idx],
                                    "{label}: seed {seed} pages {pages} thread {t} range #{idx}"
                                );
                            }
                        });
                    }
                });
            }
        }
    }
}

/// Exact accounting under concurrency: every query's `SearchStats` page
/// deltas come from its private tally, and the tallies of all threads sum
/// to the pool's cumulative `BufferStats` — no double counting, no lost
/// or cross-charged traffic.
#[test]
fn per_query_stats_sum_to_pool_counters_under_threads() {
    let (fw, ad) = build_world(simple::grid(10, 10, 1.0), 16, 9);
    let (knns, ranges) = query_mix(fw.network().num_nodes() as u32, 24, 9);
    let disk = PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(6)).unwrap();
    let zero = disk.buffer_stats();
    assert_eq!((zero.logical_reads, zero.page_faults), (0, 0), "build must reset counters");
    let per_thread: Vec<SearchStats> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4usize)
            .map(|t| {
                let disk = &disk;
                let (knns, ranges) = (&knns, &ranges);
                scope.spawn(move || {
                    let mut ws = SearchWorkspace::new();
                    let mut hits = Vec::new();
                    let mut total = SearchStats::default();
                    for i in 0..knns.len() {
                        let q = &knns[(i + t * 7) % knns.len()];
                        total.absorb(&disk.knn_with(q, &mut ws, &mut hits).unwrap());
                    }
                    for q in ranges.iter() {
                        total.absorb(&disk.range_with(q, &mut ws, &mut hits).unwrap());
                    }
                    total
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let reads: usize = per_thread.iter().map(|s| s.pages_read).sum();
    let faults: usize = per_thread.iter().map(|s| s.page_faults).sum();
    let pool = disk.buffer_stats();
    assert_eq!(reads as u64, pool.logical_reads, "per-query reads drifted from the pool");
    assert_eq!(faults as u64, pool.page_faults, "per-query faults drifted from the pool");
    assert!(reads > 0 && faults > 0, "workload must generate page traffic");
    // `reset_io_stats` zeroes the cumulative counters without touching
    // the cache, so a fresh accounting round starts clean and warm.
    disk.reset_io_stats();
    let st = disk.buffer_stats();
    assert_eq!((st.logical_reads, st.page_faults, st.write_backs), (0, 0, 0));
    assert_eq!(st.hit_rate(), 1.0, "hit rate must be defined at zero reads");
}

/// Workspace reuse composes with paged serving: one workspace carried
/// across queries against engines of different sizes answers like the
/// convenience API.
#[test]
fn paged_knn_with_reused_workspace() {
    let (fw_a, ad_a) = build_world(simple::grid(7, 7, 1.0), 9, 1);
    let (fw_b, ad_b) = build_world(simple::chain(9, 1.0), 3, 2);
    let disk_a = PagedEngine::new(&fw_a, &ad_a, PagedOptions::default()).unwrap();
    let disk_b = PagedEngine::new(&fw_b, &ad_b, PagedOptions::default()).unwrap();
    let mut ws = SearchWorkspace::new();
    let mut hits = Vec::new();
    for step in 0..12u32 {
        let (disk, num_nodes) = if step % 2 == 0 {
            (&disk_a, fw_a.network().num_nodes())
        } else {
            (&disk_b, fw_b.network().num_nodes())
        };
        let q = KnnQuery::new(NodeId(step % num_nodes as u32), 1 + (step as usize % 4));
        disk.knn_with(&q, &mut ws, &mut hits).unwrap();
        let fresh = disk.knn(&q).unwrap();
        assert_eq!(hits, fresh.hits, "reused workspace diverged at step {step}");
    }
    assert!(ws.reuse_count() >= 12);
}

/// The paged engine's batch entry points: same answers as the in-memory
/// batch (in query order, any thread count) and the same deterministic
/// lowest-query-index error contract.
#[test]
fn paged_batches_match_memory_and_report_lowest_error() {
    let (fw, ad) = build_world(simple::grid(9, 9, 1.0), 12, 3);
    let n = fw.network().num_nodes() as u32;
    let engine = QueryEngine::new(fw.clone(), ad.clone());
    let disk = PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(12)).unwrap();
    let (knns, ranges) = query_mix(n, 30, 3);
    for threads in [1usize, 3, 8] {
        assert_eq!(disk.batch_knn(&knns, threads).unwrap(), engine.batch_knn(&knns, 1).unwrap());
        assert_eq!(
            disk.batch_range(&ranges, threads).unwrap(),
            engine.batch_range(&ranges, 1).unwrap()
        );
    }
    // Error determinism (same contract as QueryEngine::batch_knn).
    let mut bad = knns.clone();
    let hi = bad.len() - 1;
    bad[hi] = KnnQuery::new(NodeId(n + 100), 1);
    bad[2] = KnnQuery::new(NodeId(n + 2), 1);
    for threads in [1usize, 4] {
        assert_eq!(
            disk.batch_knn(&bad, threads).unwrap_err(),
            road_core::RoadError::NodeOutOfBounds(NodeId(n + 2)),
        );
    }
}

/// Page faults cannot increase when the buffer grows (same layout, same
/// query stream) — the property `exp_disk` charts as its headline
/// figure. LRU's inclusion property holds per stripe, so the guarantee
/// requires the **same stripe count at every size** (a different count
/// re-partitions pages across stripes); the sweep pins one stripe, the
/// strict single-LRU regime, exactly like `exp_disk`'s sweep pins the
/// stripe count across its sizes.
#[test]
fn faults_decrease_monotonically_with_buffer_size() {
    let (fw, ad) = build_world(simple::grid(10, 10, 1.0), 14, 5);
    let (knns, ranges) = query_mix(fw.network().num_nodes() as u32, 20, 5);
    let mut last = u64::MAX;
    for buffer_pages in [1usize, 4, 16, 64, 256] {
        let opts = PagedOptions::with_buffer_pages(buffer_pages).with_stripes(1);
        let disk = PagedEngine::new(&fw, &ad, opts).unwrap();
        let mut faults = 0u64;
        for q in &knns {
            faults += disk.knn(q).unwrap().stats.page_faults as u64;
        }
        for q in &ranges {
            faults += disk.range(q).unwrap().stats.page_faults as u64;
        }
        assert!(
            faults <= last,
            "faults grew from {last} to {faults} when buffer grew to {buffer_pages} pages"
        );
        last = faults;
    }
}
