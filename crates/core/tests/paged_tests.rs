//! Oracle-agreement harness for disk-resident serving: [`PagedEngine`]
//! must answer **byte-for-byte** like the in-memory [`QueryEngine`] —
//! identical distances (exact f64 bits), identical object ids, identical
//! tie order — for every query in a randomized mix, at every buffer size
//! including a pathological 1-page pool, whether the pages were laid out
//! eagerly from a built framework or paged in lazily from a persisted
//! image. The expansion counters must agree too: the paged engine runs
//! the *same* search, it only pays page I/O on top.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_core::SearchStats;
use road_network::generator::simple;
use road_network::graph::RoadNetwork;

fn build_world(
    net: RoadNetwork,
    objects: usize,
    seed: u64,
) -> (RoadFramework, AssociationDirectory) {
    let fw = RoadFramework::builder(net).fanout(2).levels(2).build().unwrap();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edges: Vec<_> = fw.network().edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..objects {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i as u64),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..4)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    (fw, ad)
}

/// A randomized query mix: kNN (with filters and distance caps) and range
/// queries, deterministic in `seed`.
fn query_mix(num_nodes: u32, count: usize, seed: u64) -> (Vec<KnnQuery>, Vec<RangeQuery>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    let mut knns = Vec::new();
    let mut ranges = Vec::new();
    for i in 0..count {
        let node = NodeId(rng.random_range(0..num_nodes));
        if i % 3 == 2 {
            let mut q = RangeQuery::new(node, Weight::new(rng.random_range(0.1..30.0)));
            if i % 2 == 0 {
                q = q.with_filter(ObjectFilter::Category(CategoryId(rng.random_range(0..5))));
            }
            ranges.push(q);
        } else {
            let mut q = KnnQuery::new(node, rng.random_range(1..9));
            match i % 4 {
                0 => q = q.with_filter(ObjectFilter::Category(CategoryId(rng.random_range(0..5)))),
                1 => {
                    q = q.with_filter(ObjectFilter::AnyOf(vec![
                        CategoryId(rng.random_range(0..3)),
                        CategoryId(rng.random_range(0..5)),
                    ]))
                }
                _ => {}
            }
            if i % 5 == 0 {
                q = q.within(Weight::new(rng.random_range(1.0..20.0)));
            }
            knns.push(q);
        }
    }
    (knns, ranges)
}

/// Expansion counters must match between memory and paged serving; only
/// the page-I/O fields (and workspace-recycling flag) may differ.
fn normalize(mut stats: SearchStats) -> SearchStats {
    stats.pages_read = 0;
    stats.page_faults = 0;
    stats.workspace_reused = false;
    stats
}

fn assert_engines_agree(
    engine: &QueryEngine,
    disk: &mut PagedEngine,
    knns: &[KnnQuery],
    ranges: &[RangeQuery],
    label: &str,
) {
    for (i, q) in knns.iter().enumerate() {
        let mem = engine.knn(q).unwrap();
        let paged = disk.knn(q).unwrap();
        assert_eq!(mem.hits, paged.hits, "{label}: kNN query #{i} hits diverged ({q:?})");
        assert_eq!(
            normalize(mem.stats),
            normalize(paged.stats),
            "{label}: kNN query #{i} took a different expansion ({q:?})"
        );
    }
    for (i, q) in ranges.iter().enumerate() {
        let mem = engine.range(q).unwrap();
        let paged = disk.range(q).unwrap();
        assert_eq!(mem.hits, paged.hits, "{label}: range query #{i} hits diverged ({q:?})");
        assert_eq!(
            normalize(mem.stats),
            normalize(paged.stats),
            "{label}: range query #{i} took a different expansion ({q:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: random framework + object set + query mix,
    /// paged results equal in-memory results across buffer sizes,
    /// including a 1-page pathological pool, for both the eager layout
    /// and the lazily-opened persisted image.
    #[test]
    fn paged_matches_memory_across_buffer_sizes(
        n in 16usize..70,
        extra in 0usize..25,
        objects in 0usize..22,
        seed in 0u64..1000,
    ) {
        let (fw, ad) = build_world(simple::random_connected(n, extra, seed), objects, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 15, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let image_bytes = fw.to_bytes();
        let objs: Vec<Object> = ad.objects().cloned().collect();

        for buffer_pages in [1usize, 3, 8, 64] {
            let opts = PagedOptions::with_buffer_pages(buffer_pages);
            let mut eager = PagedEngine::new(&fw, &ad, opts).unwrap();
            assert_engines_agree(
                &engine, &mut eager, &knns, &ranges,
                &format!("eager/buffer={buffer_pages}"),
            );

            let image = PagedImage::open(image_bytes.clone()).unwrap();
            let mut lazy = PagedEngine::open(image, objs.clone(), opts).unwrap();
            assert_engines_agree(
                &engine, &mut lazy, &knns, &ranges,
                &format!("lazy/buffer={buffer_pages}"),
            );
            // Lazy and eager engines converge on the same resident set.
            prop_assert!(lazy.rnets_loaded() <= eager.rnets_loaded());
        }
    }
}

/// The same property at a scale CI only pays for in the `--include-ignored`
/// stress pass: a larger network, more objects, a longer query mix, and
/// the two extreme buffer sizes.
#[test]
#[ignore = "stress: larger agreement sweep, run via --include-ignored"]
fn stress_paged_agreement_large_network() {
    for seed in [7u64, 99, 4242] {
        let (fw, ad) = build_world(simple::random_connected(350, 140, seed), 60, seed);
        let num_nodes = fw.network().num_nodes() as u32;
        let (knns, ranges) = query_mix(num_nodes, 60, seed);
        let engine = QueryEngine::new(fw.clone(), ad.clone());
        let objs: Vec<Object> = ad.objects().cloned().collect();
        for buffer_pages in [1usize, 50] {
            let opts = PagedOptions::with_buffer_pages(buffer_pages);
            let mut eager = PagedEngine::new(&fw, &ad, opts).unwrap();
            assert_engines_agree(
                &engine,
                &mut eager,
                &knns,
                &ranges,
                &format!("stress-eager/seed={seed}/buffer={buffer_pages}"),
            );
            let image = PagedImage::open(fw.to_bytes()).unwrap();
            let mut lazy = PagedEngine::open(image, objs.clone(), opts).unwrap();
            assert_engines_agree(
                &engine,
                &mut lazy,
                &knns,
                &ranges,
                &format!("stress-lazy/seed={seed}/buffer={buffer_pages}"),
            );
        }
    }
}

/// Workspace reuse composes with paged serving: one workspace carried
/// across queries against engines of different sizes answers like the
/// convenience API.
#[test]
fn paged_knn_with_reused_workspace() {
    let (fw_a, ad_a) = build_world(simple::grid(7, 7, 1.0), 9, 1);
    let (fw_b, ad_b) = build_world(simple::chain(9, 1.0), 3, 2);
    let mut disk_a = PagedEngine::new(&fw_a, &ad_a, PagedOptions::default()).unwrap();
    let mut disk_b = PagedEngine::new(&fw_b, &ad_b, PagedOptions::default()).unwrap();
    let mut ws = SearchWorkspace::new();
    let mut hits = Vec::new();
    for step in 0..12u32 {
        let (disk, num_nodes) = if step % 2 == 0 {
            (&mut disk_a, fw_a.network().num_nodes())
        } else {
            (&mut disk_b, fw_b.network().num_nodes())
        };
        let q = KnnQuery::new(NodeId(step % num_nodes as u32), 1 + (step as usize % 4));
        disk.knn_with(&q, &mut ws, &mut hits).unwrap();
        let fresh = disk.knn(&q).unwrap();
        assert_eq!(hits, fresh.hits, "reused workspace diverged at step {step}");
    }
    assert!(ws.reuse_count() >= 12);
}

/// Page faults cannot increase when the buffer grows (same layout, same
/// query stream, LRU inclusion at these sizes) — the property `exp_disk`
/// charts as its headline figure.
#[test]
fn faults_decrease_monotonically_with_buffer_size() {
    let (fw, ad) = build_world(simple::grid(10, 10, 1.0), 14, 5);
    let (knns, ranges) = query_mix(fw.network().num_nodes() as u32, 20, 5);
    let mut last = u64::MAX;
    for buffer_pages in [1usize, 4, 16, 64, 256] {
        let mut disk =
            PagedEngine::new(&fw, &ad, PagedOptions::with_buffer_pages(buffer_pages)).unwrap();
        let mut faults = 0u64;
        for q in &knns {
            faults += disk.knn(q).unwrap().stats.page_faults as u64;
        }
        for q in &ranges {
            faults += disk.range(q).unwrap().stats.page_faults as u64;
        }
        assert!(
            faults <= last,
            "faults grew from {last} to {faults} when buffer grew to {buffer_pages} pages"
        );
        last = faults;
    }
}
